"""Exception hierarchy of the repro database system.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch a single base class.  The hierarchy mirrors the layered
architecture: SQL frontend errors, catalog errors, planning errors, Wasm
(compilation/validation/trap) errors, and engine errors.

Each class carries a ``retryable`` flag, the contract the fallback chain
in :mod:`repro.robustness.fallback` is built on:

* **retryable** — the failure is specific to one execution strategy
  (a trap in generated code, a tier compiler giving up, an engine running
  out of its memory budget); re-running the same query on a different
  engine can legitimately succeed.
* **not retryable** — the failure is a property of the query or the data
  (syntax errors, unknown columns, invalid configuration) or of the
  overall budget (a wall-clock timeout); every engine would fail the same
  way, or retrying would violate the budget that just fired.

See DESIGN.md ("Robustness & error taxonomy") for the full table.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""

    #: Whether a fallback chain may re-run the query on another engine
    #: after this error.  See the module docstring for the contract.
    retryable: bool = False


# --------------------------------------------------------------------------
# SQL frontend
# --------------------------------------------------------------------------

class SqlError(ReproError):
    """Base class for errors in the SQL frontend."""


class LexError(SqlError):
    """Raised when the tokenizer encounters malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (at line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser encounters a syntax error."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class AnalysisError(SqlError):
    """Raised by semantic analysis: unknown names, type mismatches, ..."""


# --------------------------------------------------------------------------
# Catalog / storage
# --------------------------------------------------------------------------

class CatalogError(ReproError):
    """Unknown or duplicate tables/columns, schema violations."""


class StorageError(ReproError):
    """Errors in the storage layer (layout, capacity, type mismatch)."""


class RewiringError(StorageError):
    """Errors in the rewired address space (overlap, out of window, ...).

    Retryable: rewiring is an execution strategy of the Wasm engine; an
    interpreter or Volcano run does not depend on the failed mapping.
    """

    retryable = True


# --------------------------------------------------------------------------
# Planning
# --------------------------------------------------------------------------

class PlanError(ReproError):
    """Errors while building or optimizing query plans."""


class UnsupportedFeatureError(PlanError):
    """A SQL feature that is recognized but not implemented by a backend.

    Retryable: raised per backend, so another engine in the fallback
    chain may well support the feature.
    """

    retryable = True


# --------------------------------------------------------------------------
# WebAssembly substrate
# --------------------------------------------------------------------------

class WasmError(ReproError):
    """Base class for errors in the WebAssembly substrate."""


class EncodeError(WasmError):
    """Raised when a module cannot be encoded to the binary format."""


class DecodeError(WasmError):
    """Raised when a binary module is malformed."""


class ValidationError(WasmError):
    """Raised when a module fails validation (type checking)."""


class LintError(ValidationError):
    """Raised under ``EngineConfig(lint="strict")`` when the module
    linter finds diagnostics (unreachable code, provably-trapping
    accesses, dead stores, ...).

    Like :class:`ValidationError` it is not retryable per engine — the
    generated module is the same on every tier — but callers can inspect
    ``diagnostics`` for the structured findings.
    """

    def __init__(self, diagnostics):
        self.diagnostics = list(diagnostics)
        summary = "\n".join(f"  {d}" for d in self.diagnostics)
        super().__init__(
            f"module failed lint with {len(self.diagnostics)} "
            f"diagnostic(s):\n{summary}"
        )


class Trap(WasmError):
    """A WebAssembly trap: execution aborted with a runtime error.

    Mirrors the traps of the Wasm spec: out-of-bounds memory access,
    integer divide by zero, unreachable, call-stack exhaustion, ...

    When the trap fires while the host drives a query, the Wasm engine
    annotates it with ``phase``, ``pipeline_index``, and ``morsel`` so
    that the failure can be located without a debugger.  Traps are
    retryable: the volcano engine raises an :class:`EngineError` for the
    same arithmetic fault, or succeeds when the trap was spurious
    (injected, or a miscompilation of one tier).
    """

    retryable = True

    def __init__(self, kind: str, message: str = ""):
        super().__init__(f"wasm trap: {kind}" + (f": {message}" if message else ""))
        self.kind = kind
        self.phase: str | None = None
        self.pipeline_index: int | None = None
        self.morsel: int | None = None


class CompilationError(WasmError):
    """Raised when a tier compiler cannot compile a function.

    Retryable: the adaptive engine pins the function to Liftoff when
    TurboFan fails; if the baseline tier itself fails, the fallback chain
    re-runs on the interpreter or a non-compiling engine.
    """

    retryable = True


class StencilError(CompilationError):
    """Raised when the tier-0 stencil assembler cannot assemble a function.

    Retryable like every compilation failure: the engine falls back to
    the Liftoff path for the affected function, so a query never fails
    because the cheapest tier declined it.
    """

    retryable = True


# --------------------------------------------------------------------------
# Engines
# --------------------------------------------------------------------------

class EngineError(ReproError):
    """Errors during query execution in any engine.

    Retryable: execution errors are engine-specific by definition.
    """

    retryable = True


class ConfigError(ReproError):
    """Invalid engine or robustness configuration (bad tiering mode,
    non-positive thresholds, malformed fallback chain, ...).

    Not retryable: the configuration is wrong for every engine.
    """


class ResourceExhausted(ReproError):
    """A per-query resource budget was exceeded.

    Carries the exhausted ``resource`` (``"wall_clock"`` or
    ``"memory_pages"``), the budget and observed usage, and — when raised
    while a query is running — the execution ``phase``, ``pipeline_index``
    and ``morsel`` at which the governor tripped.

    Retryability depends on the resource: blowing the *memory* budget is
    an artifact of one engine's data structures, so another engine may
    fit (``retryable`` is True for ``memory_pages``); a *wall-clock*
    timeout already consumed the query's time budget, so retrying on a
    (typically slower) fallback engine would only make it worse
    (``retryable`` is False for ``wall_clock``).
    """

    def __init__(self, resource: str, message: str = "", *,
                 limit: float | None = None, used: float | None = None,
                 phase: str | None = None, pipeline_index: int | None = None,
                 morsel: int | None = None):
        detail = message or f"{resource} budget exceeded"
        parts = [detail]
        if limit is not None:
            parts.append(f"limit={limit}")
        if used is not None:
            parts.append(f"used={used}")
        if phase is not None:
            parts.append(f"phase={phase}")
        if pipeline_index is not None:
            parts.append(f"pipeline={pipeline_index}")
        if morsel is not None:
            parts.append(f"morsel={morsel}")
        super().__init__(" ".join(parts))
        self.resource = resource
        self.limit = limit
        self.used = used
        self.phase = phase
        self.pipeline_index = pipeline_index
        self.morsel = morsel

    @property
    def retryable(self) -> bool:  # type: ignore[override]
        return self.resource != "wall_clock"


class ServiceError(ReproError):
    """Base class for errors raised by the concurrent query service."""


class SessionError(ServiceError):
    """Session-level misuse: unknown or duplicate prepared statements,
    statements that need a session issued without one, closed sessions.

    Not retryable: the request is wrong on every engine.
    """


class AdmissionError(ServiceError):
    """The scheduler refused to admit a query (queue full, per-session
    limit reached, or the query's deadline cannot survive the queue).
    Not retryable through the engine *fallback chain* — but the
    service-level :class:`~repro.robustness.resilience.RetryPolicy`
    may back off and resubmit, guided by ``retry_after``.

    Attributes:
        reason: structured shed reason (``"queue_full"``,
            ``"session_limit"``, ``"deadline"``, or ``"injected"``).
        retry_after: the scheduler's hint, in seconds, for when a
            resubmission is likely to be admitted (``None`` when the
            refusal is not load-related, e.g. a session limit).
    """

    def __init__(self, message: str, *, reason: str = "queue_full",
                 retry_after: float | None = None):
        if retry_after is not None:
            message = f"{message} (retry after {retry_after:.3f}s)"
        super().__init__(message)
        self.reason = reason
        self.retry_after = retry_after


class QueryCancelled(ServiceError):
    """A query was cooperatively cancelled at a morsel boundary.

    Raised by :meth:`~repro.robustness.resilience.CancelToken.
    raise_if_cancelled` — from the scheduler's turnstile, the admission
    queue, or the Wasm engine's morsel loop — when another session (or
    the disconnecting client itself) issued ``CANCEL <query_id>``.

    Not retryable: the cancellation was deliberate; re-running the
    query on a fallback engine would undo it.
    """

    def __init__(self, message: str = "query cancelled", *,
                 query_id: int | None = None, reason: str | None = None,
                 phase: str | None = None, pipeline_index: int | None = None,
                 morsel: int | None = None):
        parts = [message]
        if query_id is not None:
            parts.append(f"query_id={query_id}")
        if reason is not None and reason != "cancelled":
            parts.append(f"reason={reason}")
        if phase is not None:
            parts.append(f"phase={phase}")
        if pipeline_index is not None:
            parts.append(f"pipeline={pipeline_index}")
        if morsel is not None:
            parts.append(f"morsel={morsel}")
        super().__init__(" ".join(parts))
        self.query_id = query_id
        self.reason = reason
        self.phase = phase
        self.pipeline_index = pipeline_index
        self.morsel = morsel


class QueryError(ReproError):
    """A query failed on every engine the fallback chain tried.

    ``attempts`` is the ordered list of ``(engine_spec, error)`` pairs;
    ``__cause__`` chains to the last error, whose own ``__cause__`` (via
    the per-attempt errors) preserves every original traceback.

    Not retryable: it already *is* the outcome of the retry policy.
    """

    def __init__(self, message: str,
                 attempts: list[tuple[str, BaseException]] | None = None):
        attempts = attempts or []
        if attempts:
            trail = "; ".join(
                f"[{i + 1}] {spec}: {type(err).__name__}: {err}"
                for i, (spec, err) in enumerate(attempts)
            )
            message = f"{message} — attempts: {trail}"
        super().__init__(message)
        self.attempts = attempts

    @property
    def causes(self) -> list[BaseException]:
        return [err for _, err in self.attempts]


class WorkerError(ServiceError):
    """A morsel-worker task failed for a reason specific to the worker
    pool — the dispatch channel, the worker process, or the shared-
    memory attachment — not to the query itself.

    Retryable: the same task on a healthy worker (or the in-process
    fallback path) is expected to succeed.
    """

    retryable = True


class WorkerCrash(WorkerError):
    """A worker process died (or stopped responding) mid-task.

    The pool replaces the worker; the interrupted task surfaces as this
    structured, retryable error so a service-level
    :class:`~repro.robustness.resilience.RetryPolicy` can resubmit it.

    Attributes:
        worker_id: the pool slot whose process died.
        phase: ``"dispatch"`` (send failed), ``"result"`` (reply lost),
            or ``"timeout"`` (no reply within the task budget).
    """

    def __init__(self, message: str, *, worker_id: int | None = None,
                 phase: str = "result"):
        if worker_id is not None:
            message = f"{message} (worker {worker_id}, {phase})"
        super().__init__(message)
        self.worker_id = worker_id
        self.phase = phase
