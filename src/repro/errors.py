"""Exception hierarchy of the repro database system.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch a single base class.  The hierarchy mirrors the layered
architecture: SQL frontend errors, catalog errors, planning errors, Wasm
(compilation/validation/trap) errors, and engine errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by this library."""


# --------------------------------------------------------------------------
# SQL frontend
# --------------------------------------------------------------------------

class SqlError(ReproError):
    """Base class for errors in the SQL frontend."""


class LexError(SqlError):
    """Raised when the tokenizer encounters malformed input.

    Carries the 1-based ``line`` and ``column`` of the offending character.
    """

    def __init__(self, message: str, line: int, column: int):
        super().__init__(f"{message} (at line {line}, column {column})")
        self.line = line
        self.column = column


class ParseError(SqlError):
    """Raised when the parser encounters a syntax error."""

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line:
            message = f"{message} (at line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class AnalysisError(SqlError):
    """Raised by semantic analysis: unknown names, type mismatches, ..."""


# --------------------------------------------------------------------------
# Catalog / storage
# --------------------------------------------------------------------------

class CatalogError(ReproError):
    """Unknown or duplicate tables/columns, schema violations."""


class StorageError(ReproError):
    """Errors in the storage layer (layout, capacity, type mismatch)."""


class RewiringError(StorageError):
    """Errors in the rewired address space (overlap, out of window, ...)."""


# --------------------------------------------------------------------------
# Planning
# --------------------------------------------------------------------------

class PlanError(ReproError):
    """Errors while building or optimizing query plans."""


class UnsupportedFeatureError(PlanError):
    """A SQL feature that is recognized but not implemented by a backend."""


# --------------------------------------------------------------------------
# WebAssembly substrate
# --------------------------------------------------------------------------

class WasmError(ReproError):
    """Base class for errors in the WebAssembly substrate."""


class EncodeError(WasmError):
    """Raised when a module cannot be encoded to the binary format."""


class DecodeError(WasmError):
    """Raised when a binary module is malformed."""


class ValidationError(WasmError):
    """Raised when a module fails validation (type checking)."""


class Trap(WasmError):
    """A WebAssembly trap: execution aborted with a runtime error.

    Mirrors the traps of the Wasm spec: out-of-bounds memory access,
    integer divide by zero, unreachable, call-stack exhaustion, ...
    """

    def __init__(self, kind: str, message: str = ""):
        super().__init__(f"wasm trap: {kind}" + (f": {message}" if message else ""))
        self.kind = kind


class CompilationError(WasmError):
    """Raised when a tier compiler cannot compile a function."""


# --------------------------------------------------------------------------
# Engines
# --------------------------------------------------------------------------

class EngineError(ReproError):
    """Errors during query execution in any engine."""
