"""Driver-side parallel execution: partition, dispatch, merge, finalize.

The executor sits between the database/service layer and the
:class:`~repro.parallel.pool.WorkerPool`:

1. :func:`~repro.parallel.contract.plan_contract` decides the mode
   (``partitioned`` / ``whole`` / ``local``);
2. the catalog is published to shared memory (idempotent per catalog
   version — the attach spec rides on every task as the fence);
3. the worker plan is pickled once per plan and content-hashed — the
   hash keys the workers' executable caches, so identical statements
   hit warm compiled modules in every worker;
4. partitioned mode splits the contract's scan into even row ranges,
   one task per worker; whole mode ships one unpartitioned task;
5. partition results are merged at the storage level
   (:mod:`repro.parallel.merge`) and finalized exactly once.

The finished :class:`~repro.engines.base.ExecutionResult` carries a
``parallel`` dict (mode, partitions, per-worker morsel counts, warm
flags) that EXPLAIN ANALYZE and the tests read.

Anything the executor raises that is pool-related
(:class:`~repro.errors.WorkerError` and subclasses) is a signal to the
caller to degrade to in-process execution; task errors re-raised with
their original types are real query failures and propagate as such.
"""

from __future__ import annotations

import hashlib
import pickle

from repro.engines.base import QueryEngine, Stopwatch, Timings
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_span
from repro.parallel.contract import ParallelDecision, plan_contract
from repro.parallel.merge import merge_concat, merge_groups, merge_scalar
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import CatalogExporter

__all__ = ["ParallelExecutor", "parallel_explain_lines"]


def parallel_explain_lines(info: dict) -> list[str]:
    """EXPLAIN ANALYZE's rendering of a result's ``parallel`` dict:
    one header plus one line per worker task with its scan range,
    morsel count, and cache temperature."""
    lines = [
        f"parallel: mode={info['mode']} merge={info['merge']} "
        f"tasks={len(info['morsels'])} ({info['reason']})"
    ]
    partitions = info["partitions"]
    for i, morsels in enumerate(info["morsels"]):
        where = (f"rows [{partitions[i][0]}, {partitions[i][1]})"
                 if i < len(partitions) else "whole plan")
        temp = "warm" if info["warm"][i] else "cold"
        lines.append(
            f"  worker task {i}: {where}  morsels={morsels}  "
            f"partial_rows={info['rows_partial'][i]}  {temp}"
        )
    return lines


def _plan_payload(plan) -> bytes:
    """Pickle a worker plan; drop the analysis rider if it won't."""
    try:
        return pickle.dumps(plan)
    except Exception:
        analysis = plan.__dict__.pop("analysis", None)
        try:
            return pickle.dumps(plan)
        finally:
            if analysis is not None:
                plan.analysis = analysis


class ParallelExecutor:
    """Partitioned query execution over a pool of worker processes.

    Args:
        workers: pool size.
        fault_injector: threaded through to the pool's dispatch/result
            fault sites.
        task_timeout: pool-level wall-clock cap per dispatch when the
            query carries no deadline.
        min_partition_rows: a scan shorter than this per worker is
            split into fewer (larger) partitions.
    """

    def __init__(self, workers: int = 2, fault_injector=None,
                 task_timeout: float | None = None,
                 min_partition_rows: int = 1):
        self.workers = workers
        self.pool = WorkerPool(workers, fault_injector=fault_injector,
                               task_timeout=task_timeout)
        self.exporter = CatalogExporter()
        self.min_partition_rows = max(1, min_partition_rows)
        self._queries = get_registry().counter(
            "parallel_queries_total", "Queries dispatched to the pool"
        )

    # -- plumbing ----------------------------------------------------------

    @property
    def healthy(self) -> bool:
        return not self.pool.degraded

    def decide(self, plan) -> ParallelDecision:
        """Contract decision for ``plan``, with the pickled worker plan
        and its content hash cached on the decision (cache-friendly:
        the service stores the decision beside the plan-cache entry)."""
        decision = plan_contract(plan)
        if decision.mode != "local":
            payload = _plan_payload(decision.worker_plan)
            decision.plan_bytes = payload
            decision.fingerprint = hashlib.sha256(payload).hexdigest()
        return decision

    def _partitions(self, decision: ParallelDecision, catalog
                    ) -> list[tuple[int, int] | None]:
        if decision.mode == "whole":
            return [None]
        rows = catalog.get(decision.table_name).row_count
        parts = min(self.workers,
                    max(1, rows // self.min_partition_rows) or 1)
        return [
            (rows * i // parts, rows * (i + 1) // parts)
            for i in range(parts)
        ]

    # -- execution ---------------------------------------------------------

    def execute(self, plan, catalog, spec: str,
                decision: ParallelDecision | None = None,
                fp: str | None = None,
                params: list | None = None, deadline=None,
                cancel_token=None, trace=None, dispatcher=None):
        """Run ``plan`` on the pool; returns an ExecutionResult.

        ``fp`` is the caller's *stable* statement fingerprint (the plan
        cache key); it keys the workers' executable caches, so repeated
        statements hit warm compiled modules.  Without one, the pickled
        plan's content hash is used — always unique (generated function
        names embed object ids), i.e. always a cold compile.

        ``dispatcher`` overrides how tasks reach the workers (the
        service routes through its scheduler's dispatch accounting);
        defaults to the pool directly.

        Returns ``None`` when the decision is ``local`` — the caller
        executes in-process.  Raises :class:`WorkerError`/
        :class:`WorkerCrash` when the pool fails (degrade or retry
        upstream); task errors re-raise with their original types.
        """
        if decision is None:
            decision = self.decide(plan)
        if decision.mode == "local":
            return None
        catalog_spec = self.exporter.publish(catalog)
        ranges = self._partitions(decision, catalog)
        tasks = [
            {
                "kind": "execute",
                "fp": fp if fp is not None else decision.fingerprint,
                "spec": spec,
                "plan": decision.plan_bytes,
                "partition": (None if rng is None
                              else (decision.binding, rng[0], rng[1])),
                "params": params,
                "catalog_spec": catalog_spec,
            }
            for rng in ranges
        ]
        timings = Timings()
        with Stopwatch(timings, "execution"), \
                trace_span(trace, "parallel.dispatch", mode=decision.mode,
                           partitions=len(tasks), spec=spec):
            run = dispatcher if dispatcher is not None \
                else self.pool.run_tasks
            replies = run(
                tasks, deadline=deadline, cancel_token=cancel_token,
                trace=trace,
            )
            partials = [reply["rows"] for reply in replies]
            with trace_span(trace, "parallel.merge",
                            merge=decision.merge):
                if decision.merge == "concat":
                    merged = merge_concat(partials)
                elif decision.merge == "group":
                    merged = merge_groups(partials, decision.key_count,
                                          decision.agg_kinds)
                else:
                    merged = merge_scalar(partials, decision.agg_kinds)
                if decision.projection is not None:
                    merged = [
                        tuple(row[i] for i in decision.projection)
                        for row in merged
                    ]
        result = QueryEngine.finalize_rows(plan, merged)
        result.engine = spec
        result.timings = timings
        result.trace = trace
        result.parallel = {
            "mode": decision.mode,
            "merge": decision.merge,
            "reason": decision.reason,
            "partitions": [rng for rng in ranges if rng is not None],
            "morsels": [reply["morsels"] for reply in replies],
            "warm": [reply["warm"] for reply in replies],
            "rows_partial": [len(rows) for rows in partials],
            "stencil_cache": [reply.get("stencil_cache") for reply in replies],
        }
        self._queries.inc(mode=decision.mode)
        return result

    def close(self) -> None:
        self.pool.close()
        self.exporter.close()
