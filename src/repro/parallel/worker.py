"""Worker process: attach shared columns, compile once, execute morsels.

One worker is one OS process holding one single-threaded event loop
over a duplex pipe.  It receives *physical plans* (pickled by the
driver — workers never parse or plan, so driver and worker execute the
identical QEP), maps the driver's shared-memory column segments
zero-copy into local numpy arrays, and runs the plan through its own
:class:`~repro.engines.wasm_engine.WasmEngine` with the scan clamped
to the task's partition.

State kept across tasks:

* the attached catalog, fenced by version — a task carrying a newer
  catalog spec triggers detach/re-attach and drops every cached
  executable (exactly the driver-side plan cache's fencing rule);
* a small LRU of prepared executables keyed ``(fingerprint, spec)`` —
  a warm partition task skips translation and compilation entirely and
  goes through ``_reset_instance``, the same bit-identical reuse path
  the driver's plan cache exercises.

Results are *storage-level* rows (``raw_rows``); the driver merges
partitions and finalizes once.  Errors are marshalled by pickling the
exception when possible (then re-raised driver-side with full type
fidelity) and degraded to a :class:`~repro.errors.WorkerError` carrying
class name + message otherwise.

Python's ``resource_tracker`` is patched to *not* track attached
shared-memory segments: the tracker of a spawned child would otherwise
unlink segments it merely attached when the child exits (bpo-38119),
yanking live columns out from under the driver and its siblings.  The
driver is the sole owner of segment lifetime.
"""

from __future__ import annotations

import copy
import pickle

__all__ = ["worker_main"]

#: Prepared executables kept per worker (LRU).
CACHE_LIMIT = 32


def _untrack_shared_memory() -> None:
    """Keep the child's resource tracker away from attached segments."""
    from multiprocessing import resource_tracker

    original = resource_tracker.register

    def register(name, rtype):
        if rtype == "shared_memory":
            return
        original(name, rtype)

    resource_tracker.register = register


class _WorkerState:
    """Everything one worker process keeps between tasks."""

    def __init__(self, worker_id: int):
        from repro.db.database import Database

        self.worker_id = worker_id
        self.db = Database()        # engine registry; catalog replaced
        self.catalog = None
        self.version = None
        self.keep: list = []        # attached SharedMemory objects
        self.cache: dict = {}       # (fp, spec) -> (engine, executable, plan)

    def fence(self, catalog_spec: dict) -> None:
        """Re-attach when the task's catalog is newer than ours."""
        import gc

        from repro.parallel.shm import attach_catalog, detach_all

        if self.version == catalog_spec["version"]:
            return
        # drop every reference into the old mapping (cached executables,
        # the catalog's column arrays) so the segments close cleanly
        self.cache.clear()
        self.catalog = None
        self.db.catalog = None
        gc.collect()
        detach_all(self.keep)
        self.catalog = attach_catalog(catalog_spec, self.keep)
        self.version = catalog_spec["version"]
        self.db.catalog = self.catalog

    def detach(self) -> None:
        """Drop every reference into shared memory, then unmap it.

        Called on clean shutdown so the segments' ``__del__`` does not
        trip over still-exported numpy views (a noisy, harmless
        ``BufferError`` otherwise).
        """
        import gc

        from repro.parallel.shm import detach_all

        self.cache.clear()
        self.catalog = None
        self.db = None
        gc.collect()
        detach_all(self.keep)
        self.keep.clear()

    def executable_for(self, fp: str, spec: str, plan_bytes: bytes):
        """A cached (engine, executable, plan) entry, preparing on miss.

        The fingerprint is the driver's stable statement key; the
        catalog-version fence (which clears this cache) makes
        ``(fp, spec)`` unambiguous within one attached version, so a
        warm hit skips unpickling *and* compilation entirely.
        """
        key = (fp, spec)
        hit = self.cache.pop(key, None)
        if hit is not None:
            self.cache[key] = hit   # move to MRU position
            return hit, True
        plan = pickle.loads(plan_bytes)
        engine = copy.copy(self.db.resolve_engine(spec))
        engine.raw_rows = True
        executable = engine.prepare_executable(plan, self.catalog)
        entry = (engine, executable, plan)
        self.cache[key] = entry
        while len(self.cache) > CACHE_LIMIT:
            self.cache.pop(next(iter(self.cache)))
        return entry, False

    def run(self, task: dict) -> dict:
        self.fence(task["catalog_spec"])
        (engine, executable, cached_plan), warm = self.executable_for(
            task["fp"], task["spec"], task["plan"]
        )
        engine.partition = task.get("partition")
        try:
            result = engine.execute_prepared(
                executable, cached_plan, self.catalog,
                param_values=task.get("params"),
            )
        finally:
            engine.partition = None
        from repro.wasm.stencil.cache import get_stencil_cache

        return {
            "kind": "result",
            "ok": True,
            "rows": result.rows,
            "morsels": engine.last_morsels_total,
            "warm": warm,
            "timings": dict(result.timings.phases),
            # this worker process's shape-keyed stencil cache: a cold
            # executable for a familiar shape still reports cache hits
            "stencil_cache": get_stencil_cache().stats,
        }


def _marshal_error(err: BaseException) -> dict:
    try:
        payload = pickle.dumps(err)
        pickle.loads(payload)   # round-trip: some exceptions pickle
        return {"kind": "result", "ok": False, "error": payload}
    except Exception:
        return {
            "kind": "result", "ok": False, "error": None,
            "error_class": type(err).__name__,
            "error_message": str(err),
            "retryable": bool(getattr(err, "retryable", False)),
        }


def worker_main(conn, worker_id: int) -> None:
    """The worker process entry point (spawn target)."""
    _untrack_shared_memory()
    state = _WorkerState(worker_id)
    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            break
        kind = task.get("kind")
        if kind == "shutdown":
            state.detach()
            conn.send({"kind": "bye", "worker_id": worker_id})
            break
        if kind == "ping":
            conn.send({"kind": "pong", "worker_id": worker_id,
                       "version": state.version})
            continue
        if kind == "execute":
            try:
                reply = state.run(task)
            except BaseException as err:  # marshalled, never fatal here
                reply = _marshal_error(err)
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
            continue
        conn.send(_marshal_error(
            ValueError(f"unknown task kind {kind!r}")
        ))
    conn.close()
