"""Shared-memory column segments: publish once, map everywhere.

The driver owns every segment.  :class:`CatalogExporter.publish` copies
each column's storage array into a ``multiprocessing.shared_memory``
segment exactly once per catalog version; every worker process then
maps those segments *zero-copy* into its own
:class:`~repro.storage.rewiring.AddressSpace` (``np.frombuffer`` over
``shm.buf`` feeds the existing ``Mapping``/``remap`` machinery
unchanged) — the paper's rewiring story, extended across process
boundaries.  The one copy per version happens here, on publish; N
workers never copy again.

Lifecycle is reference-counted and version-fenced:

* a segment's refcount is the number of published catalog versions
  whose spec names it (plus a creation reference until first publish);
* a catalog version bump (DDL / INSERT / index creation) re-publishes:
  columns whose backing array is unchanged *reuse* their segment
  (incref), changed columns get a fresh segment, and the previous
  version's references are dropped — a segment is unlinked exactly
  once, when its last reference goes;
* workers never unlink; they attach read-only by name and re-attach
  when a task carries a newer version than the one they hold.

``SegmentRegistry`` records every create/unlink so the test suite can
assert the no-leak invariant (and a session fixture can fail loudly on
leftovers in ``/dev/shm``).
"""

from __future__ import annotations

import os
import secrets
import threading
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.errors import StorageError
from repro.observability.metrics import get_registry

__all__ = ["SegmentRegistry", "SharedSegment", "CatalogExporter",
           "attach_catalog", "detach_all", "segment_prefix"]

#: Every segment name this process creates starts with this prefix, so
#: tests (and operators) can attribute ``/dev/shm`` entries to us.
_PREFIX = "repro-shm"

#: Segments whose mapping could not be closed because a numpy view was
#: still exported.  Parking the object here keeps its ``__del__`` from
#: re-raising at GC time; the pages go back when the process exits.
_zombies: list = []


def segment_prefix() -> str:
    """The name prefix of every segment created by this process."""
    return f"{_PREFIX}-{os.getpid()}"


@dataclass
class SharedSegment:
    """One shared-memory segment plus its reference count."""

    name: str
    shm: shared_memory.SharedMemory
    nbytes: int
    refcount: int = 1
    unlinked: bool = False

    def incref(self) -> None:
        if self.unlinked:
            raise StorageError(f"segment {self.name!r} already unlinked")
        self.refcount += 1

    def decref(self) -> bool:
        """Drop one reference; unlink (exactly once) at zero.

        Returns True when this call performed the unlink.
        """
        if self.unlinked:
            raise StorageError(f"segment {self.name!r} already unlinked")
        self.refcount -= 1
        if self.refcount > 0:
            return False
        self.unlinked = True
        try:
            self.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - external cleanup
            pass
        try:
            self.shm.close()
        except BufferError:  # pragma: no cover - a view is still alive
            _zombies.append(self.shm)
        return True


class SegmentRegistry:
    """Creates, tracks, and reference-counts this process's segments.

    Thread-safe: the multi-threaded service publishes catalogs from
    concurrent query threads, so every mutation of the segment table
    (and the refcounts inside it) happens under one lock.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._segments: dict[str, SharedSegment] = {}
        self._created = 0
        self._unlinked = 0
        self._gauge = get_registry().gauge(
            "shm_segments_live", "Shared-memory segments currently linked"
        )

    # -- creation / attachment --------------------------------------------

    def create(self, payload: memoryview | bytes) -> SharedSegment:
        """Create a segment holding a copy of ``payload`` (refcount 1)."""
        nbytes = len(payload) if isinstance(payload, bytes) \
            else payload.nbytes
        name = f"{segment_prefix()}-{secrets.token_hex(4)}"
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=max(nbytes, 1)
        )
        if nbytes:
            shm.buf[:nbytes] = bytes(payload)
        segment = SharedSegment(name=name, shm=shm, nbytes=nbytes)
        with self._lock:
            self._segments[name] = segment
            self._created += 1
            self._gauge.set(len(self._segments))
        return segment

    def decref(self, name: str) -> None:
        with self._lock:
            segment = self._segments[name]
            if segment.decref():
                self._unlinked += 1
                del self._segments[name]
                self._gauge.set(len(self._segments))

    def incref(self, name: str) -> None:
        with self._lock:
            self._segments[name].incref()

    # -- introspection (tests, leak fixture) -------------------------------

    @property
    def live_count(self) -> int:
        with self._lock:
            return len(self._segments)

    @property
    def live_names(self) -> list[str]:
        with self._lock:
            return sorted(self._segments)

    @property
    def stats(self) -> dict:
        with self._lock:
            return {"created": self._created, "unlinked": self._unlinked,
                    "live": len(self._segments)}

    def refcount(self, name: str) -> int:
        with self._lock:
            return self._segments[name].refcount

    def close(self) -> None:
        """Unlink everything still linked (driver shutdown path)."""
        with self._lock:
            for name in list(self._segments):
                segment = self._segments.pop(name)
                segment.refcount = 1
                segment.decref()
                self._unlinked += 1
            self._gauge.set(0)


class CatalogExporter:
    """Publishes a :class:`~repro.catalog.catalog.Catalog` to shared
    memory and hands out attachment specs for worker processes.

    One exporter per driver database.  ``publish()`` is idempotent per
    catalog version; the current spec is a plain picklable dict small
    enough to ride on every task (workers use it to self-fence: a task
    carrying a newer version triggers re-attachment).  Concurrent query
    threads all call ``publish()``; a lock serializes them so exactly
    one thread exports each new version and the rest return its spec.
    """

    def __init__(self, registry: SegmentRegistry | None = None):
        self.registry = registry if registry is not None \
            else SegmentRegistry()
        self._lock = threading.Lock()
        self._version: int | None = None
        self._spec: dict | None = None
        #: (table, column) -> (backing array, segment name) of the
        #: current version, used to reuse segments for unchanged
        #: columns.  Holds the array object itself (a strong
        #: reference): identity is compared with ``is``, and keeping
        #: the array alive guarantees a freed array's address can never
        #: be recycled into a false "unchanged" match serving stale
        #: segment data.
        self._published: dict[tuple[str, str], tuple[np.ndarray, str]] = {}

    @property
    def version(self) -> int | None:
        return self._version

    @property
    def spec(self) -> dict | None:
        return self._spec

    def publish(self, catalog) -> dict:
        """Export ``catalog``'s current contents; return the attach spec.

        Unchanged columns (same backing array object) keep their
        segment; changed or new columns get fresh segments; segments
        referenced only by the previous version are unlinked here —
        exactly once, by refcount.
        """
        with self._lock:
            if self._version == catalog.version and self._spec is not None:
                return self._spec
            previous = self._published
            current: dict[tuple[str, str], tuple[np.ndarray, str]] = {}
            tables = []
            for table in catalog:
                tname = table.schema.name.lower()
                columns = []
                for column in table.columns:
                    key = (tname, column.name)
                    array = column.values
                    prev = previous.get(key)
                    if prev is not None and prev[0] is array:
                        name = prev[1]
                        self.registry.incref(name)
                    else:
                        segment = self.registry.create(
                            memoryview(array).cast("B") if array.size
                            else b""
                        )
                        name = segment.name
                    columns.append({
                        "name": column.name,
                        "dtype": array.dtype.str,
                        "rows": int(array.size),
                        "segment": name,
                    })
                    current[key] = (array, name)
                tables.append({
                    "name": tname,
                    "schema": table.schema,
                    "row_count": table.row_count,
                    "columns": columns,
                    "indexes": sorted(
                        (cname, index.name)
                        for cname, index in table.indexes.items()
                    ),
                })
            # drop the previous version's references (unlink-once fencing)
            for key, (_, name) in previous.items():
                self.registry.decref(name)
            self._published = current
            self._version = catalog.version
            self._spec = {"version": catalog.version, "tables": tables}
            return self._spec

    def close(self) -> None:
        """Drop the current version's references and unlink leftovers."""
        with self._lock:
            for _, name in self._published.values():
                try:
                    self.registry.decref(name)
                except (KeyError, StorageError):  # pragma: no cover
                    pass
            self._published = {}
            self._spec = None
            self._version = None
            self.registry.close()


def attach_catalog(spec: dict, keep: list | None = None):
    """Build a :class:`~repro.catalog.catalog.Catalog` from an attach
    spec, mapping every column zero-copy from its shared segment.

    Used by worker processes.  ``keep`` (when given) collects the
    attached ``SharedMemory`` objects — the caller must hold them alive
    as long as the catalog is in use and ``close()`` them on re-attach.
    Indexes are rebuilt locally (``argsort`` is deterministic, so worker
    indexes are identical to the driver's).
    """
    from repro.catalog.catalog import Catalog
    from repro.storage.table import Table

    catalog = Catalog()
    for tspec in spec["tables"]:
        arrays = {}
        for cspec in tspec["columns"]:
            dtype = np.dtype(cspec["dtype"])
            if cspec["rows"] == 0:
                arrays[cspec["name"]] = np.empty(0, dtype=dtype)
                continue
            shm = shared_memory.SharedMemory(name=cspec["segment"])
            if keep is not None:
                keep.append(shm)
            arrays[cspec["name"]] = np.frombuffer(
                shm.buf, dtype=dtype, count=cspec["rows"]
            )
        table = Table.from_arrays(tspec["schema"], arrays)
        for column_name, index_name in tspec["indexes"]:
            table.create_index(column_name, index_name)
        catalog.add(table)
    catalog.version = spec["version"]
    return catalog


def detach_all(keep: list) -> None:
    """Best-effort close of attached segments collected by
    :func:`attach_catalog`.

    A ``BufferError`` (a numpy view over ``shm.buf`` is still alive,
    e.g. inside a cached executable) leaves the mapping in place — the
    OS reclaims the pages when the process exits or the view drops.
    """
    for shm in keep:
        try:
            shm.close()
        except BufferError:
            _zombies.append(shm)
    keep.clear()
