"""Merge partition results at the storage level, engine-exactly.

Workers hand back *storage* rows (the values the compiled query wrote
into its result window, before ``from_storage`` conversion): Python
ints for i32/i64 fields, floats for f64, raw bytes for strings.  The
driver merges those and finalizes **once** — this matters because an
empty partition's aggregate row carries the engine's fold identities
(e.g. ``MIN(date)`` = ``INT32_MAX``), which must be *combined away*
rather than converted (``date.fromordinal(2**31-1)`` would blow up).

All combining reproduces what the engine itself would have computed
over the unpartitioned input:

* SUM / COUNT add with i64 wraparound — two partials of ``2**63 - 1``
  merge to ``-2`` exactly as the Wasm i64 adder would;
* MIN / MAX compare storage values (ints compare as ints, f64 partials
  as floats) with the engine's own strict-comparison select, so a NaN
  partial is never selected — exactly as the engine's branch-free
  fold skips NaN candidates;
* group identity is the tuple of *packed* key bytes, so ``-0.0`` and
  ``0.0`` group exactly like the engine's hash table (bit equality);
* merged groups are emitted in sorted packed-key order — the
  deterministic normalization the differential suite sorts the oracle
  by too.

Aggregate identities (what an empty partition contributes):
COUNT -> 0, SUM -> 0, MIN -> type max, MAX -> type min — all neutral
under the combiners above, so empty partitions vanish from the merge.
"""

from __future__ import annotations

import struct

from repro.errors import EngineError

__all__ = ["merge_concat", "merge_groups", "merge_scalar", "pack_key"]

_I64_MASK = (1 << 64) - 1
_I64_SIGN = 1 << 63


def _wrap64(a: int, b: int) -> int:
    """i64 addition with wraparound, matching the engine's adder."""
    return ((a + b + _I64_SIGN) & _I64_MASK) - _I64_SIGN


def pack_key(values) -> bytes:
    """Canonical bytes for a tuple of storage key values.

    Floats pack as their IEEE bits (bit equality, like the engine's
    hash table), ints as fixed-width two's complement, strings as their
    raw storage bytes.
    """
    parts = []
    for v in values:
        if isinstance(v, bool):
            parts.append(b"b" + struct.pack("<b", v))
        elif isinstance(v, int):
            parts.append(b"i" + struct.pack("<q", v))
        elif isinstance(v, float):
            parts.append(b"f" + struct.pack("<d", v))
        elif isinstance(v, (bytes, bytearray, memoryview)):
            raw = bytes(v)
            parts.append(b"s" + struct.pack("<I", len(raw)) + raw)
        else:  # pragma: no cover - no other storage value kinds exist
            raise EngineError(
                f"cannot pack merge key value of type {type(v).__name__}"
            )
    return b"".join(parts)


def merge_concat(partials: list[list[tuple]]) -> list[tuple]:
    """Concatenate partition outputs in partition-index order.

    Partition i covers scan rows strictly before partition i+1's, and
    every operator between the scan and the result is streaming, so
    this *is* the sequential scan order.
    """
    merged: list[tuple] = []
    for rows in partials:
        merged.extend(rows)
    return merged


def _combine(kind: str, a, b):
    if kind in ("SUM", "COUNT"):
        if isinstance(a, float):  # pragma: no cover - contract blocks it
            raise EngineError("float SUM reached the merge step")
        return _wrap64(a, b)
    # MIN / MAX mirror the engine's branch-free select, which folds a
    # candidate v into the accumulator via a *strict* comparison
    # (acc = v if v < acc else acc): a NaN candidate is never selected
    # because every comparison with NaN is false.  Engine partials are
    # therefore never NaN (the fold seeds from a non-NaN identity); if
    # a raw NaN partial seeds the accumulator anyway, replace it, so
    # the merge stays partition-count and -order invariant: the result
    # is the min/max over non-NaN partials, NaN only if all are.
    if kind == "MIN":
        if a != a:
            return b
        return b if b < a else a
    if kind == "MAX":
        if a != a:
            return b
        return b if b > a else a
    raise EngineError(f"cannot merge {kind} aggregate")


def merge_groups(partials: list[list[tuple]], key_count: int,
                 agg_kinds: list[str]) -> list[tuple]:
    """Combine per-partition group rows key-by-key.

    Rows are ``(key..., agg...)`` storage tuples; the merged rows come
    out sorted by packed key bytes (deterministic across runs and
    worker counts).
    """
    groups: dict[bytes, list] = {}
    for rows in partials:
        for row in rows:
            key = pack_key(row[:key_count])
            acc = groups.get(key)
            if acc is None:
                groups[key] = list(row)
                continue
            for i, kind in enumerate(agg_kinds):
                j = key_count + i
                acc[j] = _combine(kind, acc[j], row[j])
    return [tuple(groups[key]) for key in sorted(groups)]


def merge_scalar(partials: list[list[tuple]],
                 agg_kinds: list[str]) -> list[tuple]:
    """Combine per-partition scalar-aggregate rows (one row each)."""
    acc = None
    for rows in partials:
        if len(rows) != 1:
            raise EngineError(
                f"scalar partition returned {len(rows)} rows, expected 1"
            )
        row = rows[0]
        if acc is None:
            acc = list(row)
            continue
        for i, kind in enumerate(agg_kinds):
            acc[i] = _combine(kind, acc[i], row[i])
    if acc is None:  # pragma: no cover - at least one partition always
        raise EngineError("scalar merge received no partitions")
    return [tuple(acc)]
