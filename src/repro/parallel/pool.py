"""The persistent, self-healing worker-process pool.

Workers are spawned (not forked — the service is multi-threaded, and a
forked child inheriting lock state mid-flight is a deadlock lottery) and
live for the pool's lifetime, keeping their attached segments and
prepared-executable caches warm across queries.

Dispatch model: :meth:`WorkerPool.run_tasks` takes one query's task
list, grabs whatever workers are idle *right now* — blocking (in
cancel-aware slices) only until the first worker frees up, so two
queries each wanting every worker can never deadlock — and deals the
tasks round-robin over the grabbed set.  Each worker processes its
tasks sequentially off its pipe.

Failure policy, uniformly "kill + respawn + structured error":

* a worker that dies or stops responding mid-task becomes a
  :class:`~repro.errors.WorkerCrash` (retryable — the service's
  RetryPolicy re-runs the query against the healed pool);
* on any abort (crash, deadline, cancellation) every grabbed worker
  with replies still owed is killed and respawned rather than drained —
  releasing a worker with unread replies in its pipe would corrupt the
  next query's protocol;
* repeated spawn failures flip :attr:`degraded`; the executor then
  falls back to in-process execution and the service keeps serving.

The ``worker.dispatch`` / ``worker.result`` fault-injection sites fire
(per task) immediately before a send and after a receive, so the chaos
suite can script crashes at both protocol edges.
"""

from __future__ import annotations

import multiprocessing
import pickle
import select
import threading

from repro.errors import ResourceExhausted, WorkerCrash, WorkerError
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_event

__all__ = ["WorkerPool"]

#: Seconds between poll slices while waiting on workers (each slice
#: re-checks the deadline and the cancel token).
_POLL_SLICE = 0.02

#: Consecutive spawn failures before the pool declares itself degraded.
_SPAWN_FAILURE_LIMIT = 3


class _WorkerHandle:
    """Driver-side end of one worker process."""

    __slots__ = ("process", "conn", "worker_id", "tasks_done")

    def __init__(self, process, conn, worker_id: int):
        self.process = process
        self.conn = conn
        self.worker_id = worker_id
        self.tasks_done = 0

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        try:
            self.process.kill()
            self.process.join(timeout=5)
        except (OSError, ValueError):  # pragma: no cover - already gone
            pass
        try:
            self.conn.close()
        except OSError:  # pragma: no cover
            pass


class WorkerPool:
    """A fixed-size pool of persistent worker processes.

    Args:
        workers: pool size (processes).
        fault_injector: optional
            :class:`~repro.robustness.FaultInjector` checked at the
            ``worker.dispatch`` / ``worker.result`` sites.
        task_timeout: per-``run_tasks`` wall-clock cap in seconds when
            the caller provides no deadline; ``None`` waits forever.
    """

    def __init__(self, workers: int = 2, fault_injector=None,
                 task_timeout: float | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.size = workers
        self.fault_injector = fault_injector
        self.task_timeout = task_timeout
        self._ctx = multiprocessing.get_context("spawn")
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        self._idle: list[_WorkerHandle] = []
        self._live = 0            # workers existing (idle or grabbed)
        self._next_id = 0
        self._started = False
        self._closed = False
        self._spawn_failures = 0
        self.degraded = False
        registry = get_registry()
        self._tasks_total = registry.counter(
            "worker_tasks_total", "Tasks dispatched to pool workers"
        )
        self._crashes_total = registry.counter(
            "worker_crashes_total", "Worker processes lost mid-task"
        )
        self._respawns_total = registry.counter(
            "worker_respawns_total", "Worker processes respawned"
        )
        self._pool_gauge = registry.gauge(
            "worker_pool_size", "Live worker processes"
        )

    # -- lifecycle ---------------------------------------------------------

    def _spawn(self) -> _WorkerHandle | None:
        """One new worker, or None (and maybe ``degraded``) on failure."""
        from repro.parallel.worker import worker_main

        try:
            parent, child = self._ctx.Pipe(duplex=True)
            worker_id = self._next_id
            self._next_id += 1
            process = self._ctx.Process(
                target=worker_main, args=(child, worker_id),
                daemon=True, name=f"repro-worker-{worker_id}",
            )
            process.start()
            child.close()
        except (OSError, ValueError) as err:
            self._spawn_failures += 1
            if self._spawn_failures >= _SPAWN_FAILURE_LIMIT:
                self.degraded = True
            trace_event(None, "worker.spawn_failed", error=str(err))
            return None
        self._spawn_failures = 0
        self._live += 1
        self._pool_gauge.set(self._live)
        return _WorkerHandle(process, parent, worker_id)

    def start(self) -> None:
        """Spawn the workers (idempotent; lazy callers welcome)."""
        with self._cond:
            if self._started or self._closed:
                return
            self._started = True
            for _ in range(self.size):
                handle = self._spawn()
                if handle is not None:
                    self._idle.append(handle)
            if not self._idle:
                self.degraded = True
            self._cond.notify_all()

    @property
    def healthy(self) -> bool:
        return self._started and not self._closed and not self.degraded

    def ping(self, timeout: float = 10.0) -> int:
        """Round-trip every currently idle worker; returns how many
        answered.

        The pinged workers are *acquired* (removed from the idle set)
        for the duration, so a concurrent ``run_tasks`` can never
        interleave task frames with ping/pong on the same pipe.  A
        worker that fails its ping is replaced rather than released —
        its pipe may still owe a pong.
        """
        self.start()
        answered = 0
        with self._cond:
            handles = list(self._idle)
            self._idle.clear()
        for handle in handles:
            ok = False
            try:
                handle.conn.send({"kind": "ping"})
                if handle.conn.poll(timeout):
                    ok = handle.conn.recv().get("kind") == "pong"
            except (OSError, EOFError, BrokenPipeError):
                ok = False
            if ok:
                answered += 1
                self._release(handle)
            else:
                self._replace(handle, "ping")
        return answered

    def close(self) -> None:
        """Shut every worker down; the pool is unusable afterwards."""
        with self._cond:
            if self._closed:
                return
            self._closed = True
            handles = list(self._idle)
            self._idle.clear()
            self._cond.notify_all()
        for handle in handles:
            try:
                handle.conn.send({"kind": "shutdown"})
            except (OSError, BrokenPipeError):
                pass
        for handle in handles:
            handle.process.join(timeout=2)
            if handle.alive:
                handle.kill()
            else:
                try:
                    handle.conn.close()
                except OSError:  # pragma: no cover
                    pass
        with self._cond:
            self._live = 0
            self._pool_gauge.set(0)

    # -- acquisition -------------------------------------------------------

    def _acquire(self, want: int, deadline, cancel_token
                 ) -> list[_WorkerHandle]:
        """Grab 1..want idle workers; block only for the first one."""
        self.start()
        with self._cond:
            while True:
                if self._closed or self.degraded:
                    raise WorkerError("worker pool is not available")
                if self._idle:
                    take = min(want, len(self._idle))
                    grabbed = self._idle[:take]
                    del self._idle[:take]
                    return grabbed
                if cancel_token is not None:
                    cancel_token.raise_if_cancelled(phase="parallel")
                if deadline is not None and deadline.expired:
                    raise ResourceExhausted(
                        "wall_clock",
                        "deadline expired waiting for a pool worker",
                        phase="parallel",
                    )
                self._cond.wait(timeout=_POLL_SLICE)

    def _release(self, handle: _WorkerHandle) -> None:
        with self._cond:
            if self._closed:
                handle.kill()
                return
            self._idle.append(handle)
            self._cond.notify_all()

    def _replace(self, handle: _WorkerHandle, reason: str,
                 trace=None) -> None:
        """Kill a worker and put a fresh one in the idle set."""
        handle.kill()
        self._crashes_total.inc(reason=reason)
        trace_event(trace, "worker.crash", worker=handle.worker_id,
                    reason=reason)
        with self._cond:
            self._live -= 1
            self._pool_gauge.set(self._live)
            if self._closed:
                return
            replacement = self._spawn()
            if replacement is not None:
                self._respawns_total.inc()
                self._idle.append(replacement)
                self._cond.notify_all()

    # -- dispatch ----------------------------------------------------------

    def run_tasks(self, tasks: list[dict], deadline=None,
                  cancel_token=None, trace=None) -> list[dict]:
        """Execute ``tasks`` across idle workers; replies in task order.

        Raises the first task error (unpickled with type fidelity when
        possible), :class:`WorkerCrash` for lost workers, the caller's
        cancellation, or a wall-clock :class:`ResourceExhausted`.
        """
        if not tasks:
            return []
        if deadline is None and self.task_timeout is not None:
            from repro.robustness.resilience import Deadline
            deadline = Deadline(self.task_timeout)
        handles = self._acquire(len(tasks), deadline, cancel_token)
        injector = self.fault_injector
        replies: list = [None] * len(tasks)
        # deal tasks round-robin; each worker runs its share in order
        share: dict[int, list[int]] = {i: [] for i in range(len(handles))}
        for index in range(len(tasks)):
            share[index % len(handles)].append(index)
        owed: dict[int, list[int]] = {}
        error: BaseException | None = None
        try:
            for slot, handle in enumerate(handles):
                owed[slot] = list(share[slot])
                for index in share[slot]:
                    if injector is not None:
                        injector.check("worker.dispatch")
                    self._send(handle, tasks[index], deadline,
                               cancel_token)
                    self._tasks_total.inc()
            for slot, handle in enumerate(handles):
                for index in share[slot]:
                    reply = self._recv(handle, deadline, cancel_token)
                    if injector is not None:
                        injector.check("worker.result")
                    owed[slot].remove(index)
                    handle.tasks_done += 1
                    if not reply.get("ok", False):
                        if error is None:
                            error = _unmarshal_error(reply)
                        continue
                    replies[index] = reply
        except BaseException as err:
            error = err
            raise
        finally:
            for slot, handle in enumerate(handles):
                if owed.get(slot):
                    # replies still owed: never release a dirty pipe
                    reason = ("crash"
                              if isinstance(error, WorkerCrash)
                              else "abandoned")
                    self._replace(handle, reason, trace=trace)
                else:
                    self._release(handle)
        if error is not None:
            raise error
        return replies

    def _send(self, handle: _WorkerHandle, task: dict, deadline,
              cancel_token) -> None:
        """One task frame onto one worker, in cancel-aware slices.

        ``conn.send`` blocks when the worker has wedged with a full
        pipe buffer, so wait for writability first — the same deadline
        and cancellation checks the recv path makes.  (Writability
        means room for *some* bytes, not necessarily the whole frame;
        a pathological worker can still stall a huge payload, but a
        wedged-from-the-start worker now surfaces as a structured
        error instead of a hang.)
        """
        while True:
            try:
                _, writable, _ = select.select(
                    [], [handle.conn], [], _POLL_SLICE
                )
            except (OSError, ValueError) as err:
                raise WorkerCrash(
                    f"dispatch failed: {err}",
                    worker_id=handle.worker_id, phase="dispatch",
                ) from err
            if writable:
                try:
                    handle.conn.send(task)
                except (OSError, BrokenPipeError, ValueError) as err:
                    raise WorkerCrash(
                        f"dispatch failed: {err}",
                        worker_id=handle.worker_id, phase="dispatch",
                    ) from err
                return
            if not handle.alive:
                raise WorkerCrash(
                    "worker process exited before dispatch",
                    worker_id=handle.worker_id, phase="dispatch",
                )
            if cancel_token is not None:
                cancel_token.raise_if_cancelled(phase="parallel")
            if deadline is not None and deadline.expired:
                raise ResourceExhausted(
                    "wall_clock",
                    "deadline expired dispatching to a worker",
                    phase="parallel",
                )

    def _recv(self, handle: _WorkerHandle, deadline, cancel_token) -> dict:
        """One reply off one worker, in cancel-aware slices."""
        while True:
            try:
                if handle.conn.poll(_POLL_SLICE):
                    return handle.conn.recv()
            except (EOFError, OSError) as err:
                raise WorkerCrash(
                    f"worker died mid-task: {err or 'connection lost'}",
                    worker_id=handle.worker_id, phase="result",
                ) from err
            if not handle.alive:
                raise WorkerCrash(
                    "worker process exited mid-task",
                    worker_id=handle.worker_id, phase="result",
                )
            if cancel_token is not None:
                cancel_token.raise_if_cancelled(phase="parallel")
            if deadline is not None and deadline.expired:
                raise ResourceExhausted(
                    "wall_clock", "deadline expired waiting for a worker",
                    phase="parallel",
                )


def _unmarshal_error(reply: dict) -> BaseException:
    """Rebuild a worker-reported task error driver-side."""
    payload = reply.get("error")
    if payload is not None:
        try:
            return pickle.loads(payload)
        except Exception:  # pragma: no cover - defensive
            pass
    err = WorkerError(
        f"worker task failed: {reply.get('error_class', 'Error')}: "
        f"{reply.get('error_message', 'unknown')}"
    )
    err.retryable = bool(reply.get("retryable", False))
    return err
