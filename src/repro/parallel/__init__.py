"""Multi-core morsel execution over shared-memory columns.

The paper's memory-rewiring design (Section 6.1) keeps every column in
one flat host allocation precisely so an engine can alias it into a
32-bit address space without copying.  This package pushes the same idea
across *process* boundaries: columns are published once into
``multiprocessing.shared_memory`` segments, a pool of persistent worker
processes maps them zero-copy into their own
:class:`~repro.storage.rewiring.AddressSpace` (the existing
``Mapping``/``remap`` machinery, unchanged), and queries execute as
partitioned morsel-range tasks with a merge/finalize step on the
driver — sidestepping the GIL that caps the single-process service.

Modules:

* :mod:`repro.parallel.shm` — reference-counted segment registry and
  the catalog exporter (publish / attach / unlink-once fencing);
* :mod:`repro.parallel.contract` — the parallel-safety contract: which
  plans may be partitioned, over which scan, merged how;
* :mod:`repro.parallel.merge` — storage-level partition merging
  (concat in partition order; group/scalar aggregate combining with
  engine-exact i64 wraparound);
* :mod:`repro.parallel.worker` — the worker process main loop
  (attach, compile-and-cache, execute morsel ranges);
* :mod:`repro.parallel.pool` — the persistent, self-healing pool;
* :mod:`repro.parallel.executor` — the driver-side facade that
  partitions, dispatches, merges, and degrades to in-process
  execution when the pool is gone.
"""

from repro.parallel.contract import ParallelDecision, plan_contract
from repro.parallel.executor import ParallelExecutor
from repro.parallel.pool import WorkerPool
from repro.parallel.shm import CatalogExporter, SegmentRegistry

__all__ = [
    "CatalogExporter",
    "ParallelDecision",
    "ParallelExecutor",
    "SegmentRegistry",
    "WorkerPool",
    "plan_contract",
]
