"""The parallel-safety contract: which plans may be partitioned, how.

Workers execute the *complete* compiled query, with exactly one
pipeline's :class:`~repro.plan.physical.SeqScan` clamped to a row range
(the partition).  Non-partitioned pipelines — join builds, constant
subplans — run redundantly in every worker, which is always correct
(the build side sees all rows regardless of how the probe side is
split).  The driver then merges the partitions' *storage-level* rows:

``concat``
    The final pipeline streams straight from the partitioned scan
    (filters, projections, probed joins in between are all
    tuple-at-a-time).  Concatenating partition outputs in partition
    order reproduces the sequential scan order byte-identically.

``group`` / ``scalar``
    The final pipeline iterates a :class:`HashGroupBy` /
    :class:`ScalarAggregate` whose *input* pipeline is partitioned.
    Each worker produces partial groups; the driver combines them
    key-by-key with engine-exact arithmetic (see
    :mod:`repro.parallel.merge`) and finalizes once.

Everything the contract cannot *prove* safe degrades to ``whole`` —
ship the untouched query to a single worker (still off the driver's
GIL, trivially bit-identical) — or ``local`` (not worth dispatching at
all, e.g. folded-empty plans).

Safety rules enforced here, each with a recorded reason:

* partitioned scans must be ``SeqScan`` (an ``IndexSeek`` range is not
  a row range);
* aggregate merging requires associative, engine-exact combination:
  COUNT and integer/decimal SUM (i64 wraparound), MIN/MAX over
  non-string types.  AVG and float SUM are rejected — float addition
  is not associative, and byte-identical results are the contract;
* nothing may post-process the merge boundary except a pure
  slot-projection (a ``HAVING`` filter over partial groups, a Sort, or
  a Limit between partitions would observe partial state);
* the slot-projection is stripped from the plan workers run, so the
  driver merges *full* breaker rows (keys + every aggregate) — merging
  projected rows would conflate distinct groups whose keys were
  projected away.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.plan import physical as P
from repro.plan.exprs import Slot
from repro.plan.pipeline import dissect_into_pipelines

__all__ = ["ParallelDecision", "plan_contract"]

#: Aggregate kinds the driver can combine exactly; see merge.py.
_MERGEABLE_KINDS = ("COUNT", "SUM", "MIN", "MAX")


@dataclass
class ParallelDecision:
    """How (whether) a physical plan executes across workers.

    Attributes:
        mode: ``"partitioned"`` (split one scan, merge partials),
            ``"whole"`` (one worker runs the query untouched), or
            ``"local"`` (do not dispatch).
        reason: why this mode was chosen (surfaced in EXPLAIN).
        table_name / binding: the partitioned scan, when partitioned.
        merge: ``"concat"`` | ``"group"`` | ``"scalar"``.
        key_count: leading merged-row fields that are group keys.
        agg_kinds: aggregate kind per trailing merged-row field.
        agg_float: whether each aggregate's storage value is a float
            (min/max via float compare, never summed).
        projection: slot indexes the driver applies after merging, or
            ``None`` when the plan's own output is the merge layout.
        worker_plan: the plan workers execute — the original root, or
            the root with a trailing pure slot-projection stripped.
    """

    mode: str
    reason: str
    table_name: str | None = None
    binding: str | None = None
    merge: str = "concat"
    key_count: int = 0
    agg_kinds: list[str] = field(default_factory=list)
    agg_float: list[bool] = field(default_factory=list)
    projection: list[int] | None = None
    worker_plan: P.PhysicalOperator | None = None
    #: Filled by the executor: pickled worker plan + its content hash
    #: (the hash keys worker-side executable caches).
    plan_bytes: bytes | None = None
    fingerprint: str | None = None

    @property
    def partitioned(self) -> bool:
        return self.mode == "partitioned"


def _local(reason: str) -> ParallelDecision:
    return ParallelDecision(mode="local", reason=reason)


def _whole(reason: str) -> ParallelDecision:
    return ParallelDecision(mode="whole", reason=reason)


def _slot_projection(op: P.Project) -> list[int] | None:
    """The slot mapping of a pure projection, or None if impure."""
    slots = []
    for expr in op.exprs:
        if not isinstance(expr, Slot):
            return None
        slots.append(expr.index)
    return slots


def _aggregate_safety(aggregates) -> str | None:
    """Why these aggregates cannot be merged, or None if they can."""
    for agg in aggregates:
        if agg.kind not in _MERGEABLE_KINDS:
            return f"{agg.kind} is not partition-mergeable"
        if agg.kind == "SUM" and agg.ty.is_floating:
            return "float SUM is not associative"
        if agg.kind in ("MIN", "MAX") and agg.ty.is_string:
            return f"string {agg.kind} merge unsupported"
    return None


def plan_contract(plan: P.PhysicalOperator) -> ParallelDecision:
    """Decide how ``plan`` may execute across worker processes."""
    if isinstance(plan, P.EmptyResult):
        return _local("plan folded to empty result")

    pipelines = dissect_into_pipelines(plan)
    if not pipelines:
        return _local("no pipelines")
    final = pipelines[-1]
    if final.sink is not None:  # pragma: no cover - dissection invariant
        decision = _whole("final pipeline has a sink")
    else:
        breaker = final.source
        if isinstance(breaker, (P.HashGroupBy, P.ScalarAggregate)):
            decision = _aggregate_contract(plan, pipelines, final, breaker)
        elif isinstance(breaker, P.Sort):
            decision = _whole("Sort requires a global order")
        else:
            decision = _concat_contract(plan, final)
    if decision.mode == "whole":
        decision.worker_plan = plan  # ship the query untouched
    return decision


def _concat_contract(plan, final) -> ParallelDecision:
    if not isinstance(final.source, P.SeqScan):
        return _whole(
            f"final pipeline streams from "
            f"{type(final.source).__name__}, not a SeqScan"
        )
    for op in final.operators:
        if isinstance(op, (P.Limit, P.Sort)):
            return _whole(
                f"{type(op).__name__} cannot span partitions"
            )
    scan = final.source
    return ParallelDecision(
        mode="partitioned",
        reason=f"concat-merge over scan of {scan.table_name}",
        table_name=scan.table_name,
        binding=scan.binding,
        merge="concat",
        worker_plan=plan,
    )


def _aggregate_contract(plan, pipelines, final, breaker) -> ParallelDecision:
    why = _aggregate_safety(breaker.aggregates)
    if why is not None:
        return _whole(why)

    # Nothing but a pure slot-projection may sit between the breaker
    # and the result: a HAVING filter, Sort, or Limit here would see
    # *partial* groups.
    projection = None
    if len(final.operators) == 1 and isinstance(final.operators[0],
                                                P.Project):
        projection = _slot_projection(final.operators[0])
        if projection is None:
            return _whole("result projection computes over groups")
    elif final.operators:
        kinds = ", ".join(type(op).__name__ for op in final.operators)
        return _whole(f"{kinds} between aggregation and result")

    # The pipeline that fills the breaker is the one we partition.
    feeding = [p for p in pipelines if p.sink is breaker]
    if len(feeding) != 1:  # pragma: no cover - dissection invariant
        return _whole("ambiguous aggregation input pipeline")
    if not isinstance(feeding[0].source, P.SeqScan):
        return _whole(
            f"aggregation input streams from "
            f"{type(feeding[0].source).__name__}, not a SeqScan"
        )
    for op in feeding[0].operators:
        if isinstance(op, (P.Limit, P.Sort)):
            return _whole(
                f"{type(op).__name__} below aggregation cannot "
                f"span partitions"
            )
    scan = feeding[0].source

    if isinstance(breaker, P.HashGroupBy):
        merge = "group"
        key_count = len(breaker.keys)
    else:
        merge = "scalar"
        key_count = 0
    # Workers run the plan rooted at the breaker: the driver needs the
    # full key+aggregate rows to merge, and applies `projection` after.
    worker_plan = breaker if projection is not None else plan
    return ParallelDecision(
        mode="partitioned",
        reason=f"{merge}-merge over scan of {scan.table_name}",
        table_name=scan.table_name,
        binding=scan.binding,
        merge=merge,
        key_count=key_count,
        agg_kinds=[agg.kind for agg in breaker.aggregates],
        agg_float=[agg.ty.is_floating for agg in breaker.aggregates],
        projection=projection,
        worker_plan=worker_plan,
    )
