"""Per-query resource budgets: wall-clock time and linear-memory pages.

Real V8 contains both of these guards: an interrupt check at loop back
edges (``--wasm-max-mem-pages`` style limits, stack guards, termination
requests) and a hard cap on how far ``memory.grow`` may take a module.
Our reproduction gets the equivalent by construction: the host drives
queries **morsel-wise**, so every morsel boundary is a natural interrupt
check, and every page the module acquires goes through the rewired
:class:`~repro.storage.rewiring.AddressSpace`, a single choke point.

The :class:`ResourceGovernor` exploits exactly those two choke points:

* :meth:`check` is called by the Wasm engine at each morsel boundary
  (and between pipelines) with the current execution position; it raises
  :class:`~repro.errors.ResourceExhausted` with full phase context when
  the wall-clock budget is blown.
* :meth:`charge_pages` is called by ``AddressSpace._reserve`` (and hence
  by ``LinearMemory.grow``, ``alloc``, and ``map_buffer``) before pages
  are handed out; it raises when the peak-page budget would be exceeded.

A governor is cheap enough to create per query; both budgets are
optional, and a governor with neither budget never raises.
"""

from __future__ import annotations

import time

from repro.errors import ConfigError, ResourceExhausted
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_event

__all__ = ["ResourceGovernor"]


class ResourceGovernor:
    """Enforces one query's budgets at morsel and allocation boundaries.

    Args:
        timeout_seconds: wall-clock budget for the whole query (compile
            plus execution), or ``None`` for unlimited.
        max_memory_pages: peak 64 KiB pages the query's address space may
            hold (tables, constants, heap, results — everything the query
            maps or grows), or ``None`` for unlimited.
    """

    def __init__(self, timeout_seconds: float | None = None,
                 max_memory_pages: int | None = None,
                 deadline=None):
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ConfigError("timeout_seconds must be positive")
        if max_memory_pages is not None and max_memory_pages <= 0:
            raise ConfigError("max_memory_pages must be positive")
        self.timeout_seconds = timeout_seconds
        self.max_memory_pages = max_memory_pages
        #: Optional :class:`~repro.robustness.resilience.Deadline` the
        #: query has carried since admission.  The governor honors the
        #: *earlier* of its own ``timeout_seconds`` and this deadline,
        #: which is how queue wait debits the same budget execution does.
        self.deadline = deadline
        self.pages_charged = 0
        self.peak_pages = 0
        #: Current query phase; the engine updates it as the query moves
        #: through translation/compilation/execution so that allocation
        #: sites (which don't know the phase) still report it.
        self.phase = "setup"
        #: Optional :class:`~repro.observability.QueryTrace`; budget
        #: checks are recorded only when a budget is actually configured,
        #: so un-budgeted queries keep clean traces.
        self.trace = None
        self._deadline: float | None = None
        self._started_at: float | None = None

    # -- lifecycle ---------------------------------------------------------------

    def start(self) -> "ResourceGovernor":
        """Arm the wall clock; called once when query processing begins."""
        self._started_at = time.perf_counter()
        if self.timeout_seconds is not None:
            self._deadline = self._started_at + self.timeout_seconds
        return self

    @property
    def elapsed_seconds(self) -> float:
        if self._started_at is None:
            return 0.0
        return time.perf_counter() - self._started_at

    # -- wall clock --------------------------------------------------------------

    def check(self, phase: str | None = None,
              pipeline_index: int | None = None,
              morsel: int | None = None) -> None:
        """Raise :class:`ResourceExhausted` if the deadline has passed."""
        if self._deadline is None and self.deadline is None:
            return
        trace_event(self.trace, "governor.check",
                    phase=phase if phase is not None else self.phase,
                    pipeline=pipeline_index, morsel=morsel)
        get_registry().counter(
            "governor_checks_total", "Budget checks at morsel boundaries"
        ).inc()
        own_expired = (self._deadline is not None
                       and time.perf_counter() >= self._deadline)
        shared_expired = self.deadline is not None and self.deadline.expired
        if not own_expired and not shared_expired:
            return
        limit = self.timeout_seconds
        if own_expired is False and shared_expired:
            limit = self.deadline.timeout_seconds
        trace_event(self.trace, "governor.exhausted", resource="wall_clock",
                    phase=phase if phase is not None else self.phase,
                    pipeline=pipeline_index, morsel=morsel)
        get_registry().counter(
            "governor_exhausted_total", "Budget exhaustions, by resource"
        ).inc(resource="wall_clock")
        raise ResourceExhausted(
            "wall_clock",
            "query exceeded its wall-clock budget"
            + (" (deadline carried from admission)" if shared_expired
               and not own_expired else ""),
            limit=limit,
            used=round(self.elapsed_seconds, 4),
            phase=phase if phase is not None else self.phase,
            pipeline_index=pipeline_index,
            morsel=morsel,
        )

    # -- memory ------------------------------------------------------------------

    def ensure_pages(self, npages: int,
                     phase: str | None = None) -> None:
        """Raise if charging ``npages`` would exceed the budget.

        Non-mutating: lets allocation sites refuse an oversized request
        *before* committing resources (e.g. before ``alloc`` constructs
        its backing buffer), without double-charging when the reservation
        later goes through :meth:`charge_pages`.
        """
        total = self.pages_charged + npages
        if self.max_memory_pages is not None and total > self.max_memory_pages:
            trace_event(self.trace, "governor.exhausted",
                        resource="memory_pages",
                        phase=phase if phase is not None else self.phase,
                        requested=npages, limit=self.max_memory_pages)
            get_registry().counter(
                "governor_exhausted_total",
                "Budget exhaustions, by resource",
            ).inc(resource="memory_pages")
            raise ResourceExhausted(
                "memory_pages",
                f"allocating {npages} pages would exceed the budget",
                limit=self.max_memory_pages,
                used=total,
                phase=phase if phase is not None else self.phase,
            )

    def charge_pages(self, npages: int,
                     phase: str | None = None) -> None:
        """Account ``npages`` newly reserved pages against the budget.

        Called *before* the reservation takes effect so that a denied
        allocation leaves the address space untouched.  Mappings are
        never recycled within a query (the space is torn down whole), so
        the running total is also the peak.
        """
        self.ensure_pages(npages, phase)
        self.pages_charged += npages
        self.peak_pages = max(self.peak_pages, self.pages_charged)
