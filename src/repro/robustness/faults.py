"""Deterministic fault injection for the execution stack.

Robustness claims are only as good as their tests, and the interesting
failures — TurboFan rejecting a hot function mid-query, ``memory.grow``
failing under pressure, a trap at morsel 4711 — are practically
impossible to provoke organically at test scale.  The
:class:`FaultInjector` makes them reproducible: named *sites* in the
engine call :meth:`check`, and a seeded per-site RNG decides whether the
site raises the exact exception class the real failure would raise.

Sites (see :data:`FAULT_SITES`):

========================  ====================================================
``turbofan.compile``      the optimizing tier fails (tier-up or enforced
                          compilation) — raises ``CompilationError``
``liftoff.compile``       the baseline tier fails at instantiation —
                          raises ``CompilationError``
``stencil.assemble``      the tier-0 stencil assembly declines — raises
                          ``CompilationError`` (the engine falls back
                          to the Liftoff path)
``memory.grow``           the module's ``memory.grow`` is denied — raises
                          ``ResourceExhausted("memory_pages")``
``rewire.chunk``          re-wiring the next chunk of a windowed table
                          fails — raises ``RewiringError``
``trap.morsel``           a trap fires at a morsel boundary — raises
                          ``Trap("out of bounds memory access")``
``admission``             the service refuses admission — raises
                          ``AdmissionError`` with a retry-after hint
``cache.lookup``          the plan-cache lookup fails transiently —
                          raises ``EngineError`` (retryable)
``socket.write``          the TCP front end's reply write fails —
                          raises ``BrokenPipeError`` (connection drop)
``worker.dispatch``       sending a task to a pool worker fails (the
                          worker died between queries) — raises
                          ``WorkerCrash(phase="dispatch")``
``worker.result``         a pool worker is lost after its result was
                          read off the pipe — raises
                          ``WorkerCrash(phase="result")``
========================  ====================================================

Determinism: decisions depend only on ``(seed, site, per-site trial
number)``.  Two runs with the same seed and the same call sequence inject
the same faults, which is what lets the chaos suite assert *results*
rather than merely "it didn't crash".
"""

from __future__ import annotations

import random

from repro.errors import (
    AdmissionError,
    CompilationError,
    ConfigError,
    EngineError,
    ResourceExhausted,
    RewiringError,
    Trap,
    WorkerCrash,
)
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_event

__all__ = ["ENGINE_FAULT_SITES", "FAULT_SITES", "PARALLEL_FAULT_SITES",
           "SERVICE_FAULT_SITES", "FaultInjector"]


def _compile_fault(site: str) -> CompilationError:
    tier = site.split(".")[0]
    return CompilationError(f"injected fault: {tier} compilation failed")


def _grow_fault(site: str) -> ResourceExhausted:
    return ResourceExhausted(
        "memory_pages", "injected fault: memory.grow denied"
    )


def _rewire_fault(site: str) -> RewiringError:
    return RewiringError("injected fault: rewire_next_chunk failed")


def _trap_fault(site: str) -> Trap:
    return Trap("out of bounds memory access", "injected fault at morsel")


def _admission_fault(site: str) -> AdmissionError:
    return AdmissionError("injected fault: admission refused",
                          reason="injected", retry_after=0.005)


def _cache_fault(site: str) -> EngineError:
    return EngineError("injected fault: plan-cache lookup failed")


def _socket_fault(site: str) -> BrokenPipeError:
    return BrokenPipeError("injected fault: socket write failed")


def _worker_fault(site: str) -> WorkerCrash:
    phase = site.split(".")[1]
    return WorkerCrash(f"injected fault: worker lost at {phase}",
                       phase=phase)


#: Sites instrumented inside the execution engine (reachable from
#: ``Database.execute``); the engine-level chaos sweep iterates these.
ENGINE_FAULT_SITES = {
    "turbofan.compile": _compile_fault,
    "liftoff.compile": _compile_fault,
    "stencil.assemble": _compile_fault,
    "memory.grow": _grow_fault,
    "rewire.chunk": _rewire_fault,
    "trap.morsel": _trap_fault,
}

#: Sites instrumented in the query service and its TCP front end
#: (reachable only through ``QueryService``); the multi-client chaos
#: scenario exercises these.
SERVICE_FAULT_SITES = {
    "admission": _admission_fault,
    "cache.lookup": _cache_fault,
    "socket.write": _socket_fault,
}

#: Sites instrumented around the worker-process pool's pipe protocol
#: (reachable when a query is dispatched in parallel); the worker-fault
#: chaos suite exercises these.
PARALLEL_FAULT_SITES = {
    "worker.dispatch": _worker_fault,
    "worker.result": _worker_fault,
}

#: site name -> factory building the exception that site raises when hit.
FAULT_SITES = {**ENGINE_FAULT_SITES, **SERVICE_FAULT_SITES,
               **PARALLEL_FAULT_SITES}


class FaultInjector:
    """Seeded, per-site fault injection.

    Args:
        seed: master seed; every decision derives from it.
        rates: mapping of site name to fire probability in ``[0, 1]``.
            Sites not listed never fire.  A rate of ``1.0`` fires on
            every trial (subject to ``max_fires``).
        max_fires: cap on how often each listed site may fire (``None``
            for unlimited).  ``max_fires=1`` models a transient fault
            that the retry policy should absorb.
    """

    def __init__(self, seed: int = 0,
                 rates: dict[str, float] | None = None,
                 max_fires: int | None = None):
        rates = dict(rates or {})
        for site, rate in rates.items():
            if site not in FAULT_SITES:
                raise ConfigError(
                    f"unknown fault site {site!r}; "
                    f"have {sorted(FAULT_SITES)}"
                )
            if not (0.0 <= rate <= 1.0):
                raise ConfigError(
                    f"fault rate for {site!r} must be in [0, 1], got {rate}"
                )
        self.seed = seed
        self.rates = rates
        self.max_fires = max_fires
        self.trials: dict[str, int] = {}
        self.fired: dict[str, int] = {}
        #: Optional :class:`~repro.observability.QueryTrace`; every
        #: injected fault is recorded as a ``fault.injected`` event so
        #: chaos runs are auditable post-hoc.
        self.trace = None
        self._rngs = {
            site: random.Random(f"{seed}:{site}") for site in rates
        }

    @classmethod
    def always(cls, *sites: str, seed: int = 0,
               max_fires: int | None = None) -> "FaultInjector":
        """An injector that fires deterministically at the given sites."""
        return cls(seed=seed, rates={s: 1.0 for s in sites},
                   max_fires=max_fires)

    # -- the site API ------------------------------------------------------------

    def check(self, site: str) -> None:
        """Called by instrumented code; raises the site's fault or returns.

        Unlisted sites return immediately, so threading an injector
        through the engine costs one dict lookup per site visit.
        """
        rate = self.rates.get(site)
        if rate is None:
            return
        self.trials[site] = self.trials.get(site, 0) + 1
        if self.max_fires is not None \
                and self.fired.get(site, 0) >= self.max_fires:
            return
        if rate < 1.0 and self._rngs[site].random() >= rate:
            return
        self.fired[site] = self.fired.get(site, 0) + 1
        trace_event(self.trace, "fault.injected", site=site,
                    trial=self.trials[site], fired=self.fired[site])
        get_registry().counter(
            "faults_injected_total", "Faults injected, by site"
        ).inc(site=site)
        raise FAULT_SITES[site](site)

    @property
    def total_fired(self) -> int:
        return sum(self.fired.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FaultInjector(seed={self.seed}, rates={self.rates}, "
                f"fired={self.fired})")
