"""Graceful degradation: re-run a failed query on the next engine.

The paper's architecture already *contains* a degradation ladder — the
same physical plan executes on the adaptive Wasm engine, on the Wasm
reference interpreter, and on the Volcano engine, in strictly decreasing
order of sophistication and strictly increasing order of simplicity (and
hence trustworthiness).  The fallback chain makes that ladder an explicit
policy: when an attempt fails with a *retryable* error (see
:mod:`repro.errors`), the query transparently re-runs on the next rung.

An engine spec is an engine name with an optional bracketed variant:
``"wasm"``, ``"wasm[interpreter]"`` (the Wasm engine forced to the
reference interpreter — no compilation at all), ``"volcano"``.  The
default chain is ``wasm → wasm[interpreter] → volcano``.

Outcome contract of :func:`execute_with_fallback`:

* first success wins; failed earlier attempts are reported on the result
  (``ExecutionResult.fallback_attempts``) — degradation is observable,
  never silent;
* a failure on a chain of one (no fallback configured) re-raises the
  original exception unchanged — exactly the pre-robustness behavior;
* a non-retryable error stops the chain immediately;
* when more than one attempt failed, the caller gets one structured
  :class:`~repro.errors.QueryError` carrying the full
  ``(engine_spec, error)`` attempt trail, chained (``__cause__``) to the
  last underlying error.
"""

from __future__ import annotations

import re

from repro.errors import ConfigError, QueryError, ReproError
from repro.observability.metrics import get_registry

__all__ = [
    "DEFAULT_CHAIN",
    "FallbackPolicy",
    "execute_with_fallback",
    "parse_engine_spec",
]

#: The default degradation ladder of the paper's architecture.
DEFAULT_CHAIN = ("wasm[adaptive_stencil]", "wasm[interpreter]", "volcano")

_SPEC_RE = re.compile(r"^(?P<name>[a-z_][a-z0-9_]*)"
                      r"(\[(?P<option>[a-z0-9_]+)\])?$")


def parse_engine_spec(spec: str) -> tuple[str, str | None]:
    """``"wasm[interpreter]"`` -> ``("wasm", "interpreter")``."""
    match = _SPEC_RE.match(spec)
    if match is None:
        raise ConfigError(f"malformed engine spec {spec!r}")
    return match.group("name"), match.group("option")


class FallbackPolicy:
    """An ordered chain of engine specs plus a retry budget.

    Args:
        chain: engine specs tried in order.  The primary engine of a
            query is always attempted first; chain entries equal to it
            are not attempted twice.
        max_attempts: upper bound on attempts per query (primary
            included); ``None`` means the chain length is the bound.
    """

    def __init__(self, chain: tuple[str, ...] | list[str] = DEFAULT_CHAIN,
                 max_attempts: int | None = None):
        chain = tuple(chain)
        if not chain:
            raise ConfigError("fallback chain must not be empty")
        for spec in chain:
            parse_engine_spec(spec)
        if max_attempts is not None and max_attempts < 1:
            raise ConfigError(
                f"max_attempts must be >= 1, got {max_attempts}"
            )
        self.chain = chain
        self.max_attempts = max_attempts

    def attempts_for(self, primary: str) -> list[str]:
        """The ordered engine specs to try for a query on ``primary``."""
        parse_engine_spec(primary)
        specs = [primary] + [s for s in self.chain if s != primary]
        if self.max_attempts is not None:
            specs = specs[: self.max_attempts]
        return specs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FallbackPolicy(chain={self.chain!r}, "
                f"max_attempts={self.max_attempts})")


def execute_with_fallback(specs: list[str], run_one):
    """Try ``run_one(spec)`` for each spec until one succeeds.

    Returns ``(result, failures)`` where ``failures`` is the list of
    ``(spec, error)`` pairs that preceded the success.  Raises per the
    outcome contract in the module docstring.
    """
    if not specs:
        raise ConfigError("no engines to attempt")
    attempts_counter = get_registry().counter(
        "fallback_attempts_total", "Engine attempts, by spec and outcome"
    )
    failures: list[tuple[str, ReproError]] = []
    for i, spec in enumerate(specs):
        try:
            result = run_one(spec)
            attempts_counter.inc(engine=spec, outcome="ok")
            if failures:
                get_registry().counter(
                    "fallback_degraded_queries_total",
                    "Queries answered by a fallback engine",
                ).inc()
            return result, failures
        except ReproError as err:
            attempts_counter.inc(engine=spec, outcome="error")
            failures.append((spec, err))
            if i + 1 < len(specs) and err.retryable:
                continue
            if len(failures) == 1:
                raise  # no fallback was attempted: surface the original
            if not err.retryable:
                message = ("query aborted by a non-retryable error "
                           "after fallback")
            else:
                message = "query failed on every engine of the chain"
            raise QueryError(message, attempts=failures) from err
    raise AssertionError("unreachable")  # pragma: no cover
