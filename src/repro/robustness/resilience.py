"""Service-level resilience primitives: one budget from admission to
the last morsel.

The paper's morsel-wise execution gives the host a preemption point
after every ``pipeline_i(begin, end)`` call; PR 1 used it for resource
budgets and PR 4 for fair scheduling.  This module closes the loop at
the *service* level with four cooperating primitives:

* :class:`Deadline` — one monotonic expiry carried by a query from
  admission to the last morsel.  Session ``statement_timeout``, a
  client-supplied per-query timeout, and the scheduler's admission wait
  all debit the same budget (queue time is not free), and the same
  object seeds the :class:`~repro.robustness.governor.ResourceGovernor`
  wall-clock check.
* :class:`CancelToken` — cooperative cancellation, checked at the same
  morsel-boundary gate the scheduler and governor use.  ``CANCEL
  <query_id>`` from another session flips the token; the running query
  aborts within one morsel with a structured
  :class:`~repro.errors.QueryCancelled`.
* :class:`RetryPolicy` — deterministic (seeded) exponential backoff
  with jitter for *retryable* taxonomy errors and shed admissions,
  never sleeping past the deadline.
* :class:`CircuitBreaker` / :class:`TierBreakerBoard` — per-fingerprint
  breakers over TurboFan bailouts: a fingerprint whose compilations
  repeatedly bail stops attempting the expensive tier for a cool-down,
  then half-opens with a single probe.

Everything here is deterministic under injected clocks and seeds, so
the chaos suite can assert transitions, not just survival.
"""

from __future__ import annotations

import random
import threading
import time

from repro.errors import AdmissionError, ConfigError, QueryCancelled, ReproError
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_event

__all__ = [
    "BreakerOpen",
    "CancelToken",
    "CircuitBreaker",
    "Deadline",
    "RetryPolicy",
    "TierBreakerBoard",
]


class Deadline:
    """A monotonic expiry shared by every stage of one query.

    Args:
        timeout_seconds: budget from *now*; ``None`` means unlimited
            (the deadline never expires).
        clock: zero-argument monotonic clock; defaults to
            :func:`time.perf_counter`.  Everyone holding this deadline
            reads the same clock, so admission wait, governor checks,
            and retry sleeps all debit one budget.
    """

    __slots__ = ("timeout_seconds", "expires_at", "_clock")

    def __init__(self, timeout_seconds: float | None = None, *, clock=None):
        if timeout_seconds is not None and timeout_seconds <= 0:
            raise ConfigError("deadline timeout_seconds must be positive")
        self._clock = clock if clock is not None else time.perf_counter
        self.timeout_seconds = timeout_seconds
        self.expires_at = (None if timeout_seconds is None
                           else self._clock() + timeout_seconds)

    @classmethod
    def never(cls, *, clock=None) -> "Deadline":
        """A deadline that never expires (unlimited budget)."""
        return cls(None, clock=clock)

    def remaining(self) -> float | None:
        """Seconds left, clamped at 0.0; ``None`` for unlimited."""
        if self.expires_at is None:
            return None
        return max(0.0, self.expires_at - self._clock())

    @property
    def expired(self) -> bool:
        return (self.expires_at is not None
                and self._clock() >= self.expires_at)

    def clamp(self, seconds: float) -> float:
        """``seconds`` capped to what is left of the budget."""
        left = self.remaining()
        return seconds if left is None else min(seconds, left)

    def tighten(self, timeout_seconds: float | None) -> "Deadline":
        """The earlier of this deadline and ``now + timeout_seconds``.

        Used to combine a session ``statement_timeout`` with a stricter
        per-query timeout; the shared clock is preserved.
        """
        if timeout_seconds is None:
            return self
        other = Deadline(timeout_seconds, clock=self._clock)
        if self.expires_at is None or other.expires_at < self.expires_at:
            return other
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        left = self.remaining()
        return (f"Deadline(unlimited)" if left is None
                else f"Deadline(remaining={left:.4f}s)")


class CancelToken:
    """A thread-safe one-shot cancellation flag.

    The canceller (another session, the TCP front end on disconnect,
    an operator script) calls :meth:`cancel`; the running query calls
    :meth:`raise_if_cancelled` at every morsel boundary — the same gate
    the governor and the fair scheduler already use — and aborts with a
    structured :class:`~repro.errors.QueryCancelled` within one morsel.

    ``on_cancel`` callbacks let blocking waiters (a query parked in the
    scheduler's turnstile or the admission queue) be woken immediately
    instead of at their next poll.
    """

    __slots__ = ("_lock", "_cancelled", "reason", "query_id", "_callbacks")

    def __init__(self, query_id: int | None = None):
        self._lock = threading.Lock()
        self._cancelled = False
        self.reason: str | None = None
        self.query_id = query_id
        self._callbacks: list = []

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    def cancel(self, reason: str = "cancelled") -> bool:
        """Flip the token; returns True on the first (effective) call."""
        with self._lock:
            if self._cancelled:
                return False
            self._cancelled = True
            self.reason = reason
            callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback()
        return True

    def on_cancel(self, callback) -> None:
        """Run ``callback`` when the token is cancelled (immediately if
        it already is).  Callbacks fire exactly once, without the lock
        held."""
        with self._lock:
            if not self._cancelled:
                self._callbacks.append(callback)
                return
        callback()

    def raise_if_cancelled(self, *, phase: str | None = None,
                           pipeline_index: int | None = None,
                           morsel: int | None = None) -> None:
        """Abort the caller with :class:`QueryCancelled` if cancelled."""
        if self._cancelled:
            raise QueryCancelled(
                reason=self.reason, query_id=self.query_id, phase=phase,
                pipeline_index=pipeline_index, morsel=morsel,
            )


class RetryPolicy:
    """Deterministic service-level retries: seeded backoff plus jitter.

    A retry is attempted only when the error is *retryable* per the
    taxonomy in :mod:`repro.errors` — or is an
    :class:`~repro.errors.AdmissionError`, which is exactly the "back
    off and resubmit" contract shedding advertises — and only when the
    backoff sleep still fits inside the query's :class:`Deadline`.
    Delays depend on ``(seed, key, attempt)`` alone, so two runs with
    the same seed retry at the same instants.

    Args:
        max_attempts: total tries per query (first attempt included).
        base_delay: backoff before the first retry, in seconds.
        multiplier: exponential growth factor per retry.
        jitter: fraction of the delay randomized away (``0.5`` means the
            actual delay is uniform in ``[0.5 * d, d]``).
        seed: master seed for the jitter stream.
        sleep: injectable sleep function (tests pass a recorder).
    """

    def __init__(self, max_attempts: int = 3, base_delay: float = 0.01,
                 multiplier: float = 2.0, jitter: float = 0.5,
                 seed: int = 0, sleep=time.sleep):
        if max_attempts < 1:
            raise ConfigError("max_attempts must be >= 1")
        if base_delay < 0 or multiplier < 1 or not (0.0 <= jitter <= 1.0):
            raise ConfigError(
                "base_delay must be >= 0, multiplier >= 1, jitter in [0, 1]"
            )
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.multiplier = multiplier
        self.jitter = jitter
        self.seed = seed
        self._sleep = sleep

    @staticmethod
    def is_retryable(error: BaseException) -> bool:
        """The service-level retry contract (see class docstring)."""
        if isinstance(error, AdmissionError):
            return True
        return bool(getattr(error, "retryable", False))

    def delay(self, key: str, attempt: int) -> float:
        """The deterministic backoff before retry number ``attempt``."""
        raw = self.base_delay * (self.multiplier ** attempt)
        if self.jitter == 0.0:
            return raw
        rng = random.Random(f"{self.seed}:{key}:{attempt}")
        return raw * (1.0 - self.jitter * rng.random())

    def run(self, attempt_fn, deadline: Deadline | None = None,
            key: str = "", trace=None):
        """Call ``attempt_fn()`` until success or the policy gives up.

        Re-raises the last error when attempts are exhausted, the error
        is not retryable, or the deadline cannot absorb the backoff.
        ``AdmissionError.retry_after`` hints raise the backoff floor.
        """
        retries = get_registry().counter(
            "service_retries_total", "Service-level query retries, by error"
        )
        for attempt in range(self.max_attempts):
            try:
                return attempt_fn()
            except ReproError as err:
                if attempt + 1 >= self.max_attempts \
                        or not self.is_retryable(err):
                    raise
                pause = self.delay(key, attempt)
                hint = getattr(err, "retry_after", None)
                if hint is not None:
                    pause = max(pause, hint)
                if deadline is not None:
                    left = deadline.remaining()
                    if left is not None and pause >= left:
                        raise  # the backoff would outlive the budget
                trace_event(trace, "retry.backoff", attempt=attempt + 1,
                            delay=round(pause, 6),
                            error=type(err).__name__)
                retries.inc(error=type(err).__name__)
                if pause > 0:
                    self._sleep(pause)
        raise AssertionError("unreachable")  # pragma: no cover


class BreakerOpen(Exception):
    """Internal sentinel — never raised to callers; breakers *degrade*
    rather than refuse (the query still runs, on the cheap tier)."""


class CircuitBreaker:
    """A three-state breaker: ``closed -> open -> half_open -> closed``.

    ``closed``
        failures accumulate; reaching ``failure_threshold`` opens the
        breaker.  Successes do *not* reset the count — the failures
        being guarded (TurboFan bailouts) occur once per compilation
        episode and are interleaved with cheap successful runs, so a
        consecutive-failure reset would never trip.
    ``open``
        :meth:`allow` answers False for ``cooldown_seconds``; the
        caller degrades (pins the cheap tier) instead of paying the
        failure again.
    ``half_open``
        after the cool-down one probe is let through; its success
        closes the breaker (and clears the count), its failure re-opens
        it for another full cool-down.

    Thread-safe; the clock is injectable for deterministic tests.
    """

    CLOSED, OPEN, HALF_OPEN = "closed", "open", "half_open"

    def __init__(self, failure_threshold: int = 2,
                 cooldown_seconds: float = 30.0, *, clock=None,
                 on_transition=None):
        if failure_threshold < 1:
            raise ConfigError("failure_threshold must be >= 1")
        if cooldown_seconds <= 0:
            raise ConfigError("cooldown_seconds must be positive")
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock if clock is not None else time.perf_counter
        self._on_transition = on_transition
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._opened_at: float | None = None
        self._probe_in_flight = False

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def failures(self) -> int:
        with self._lock:
            return self._failures

    def _transition(self, new_state: str) -> None:
        old, self._state = self._state, new_state
        if old != new_state and self._on_transition is not None:
            self._on_transition(old, new_state)

    def _maybe_half_open(self) -> None:
        if (self._state == self.OPEN
                and self._clock() - self._opened_at
                >= self.cooldown_seconds):
            self._transition(self.HALF_OPEN)
            self._probe_in_flight = False

    def allow(self) -> bool:
        """May the guarded (expensive) path be attempted right now?

        In ``half_open`` exactly one caller gets True (the probe);
        everyone else keeps degrading until the probe resolves.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == self.CLOSED:
                return True
            if self._state == self.HALF_OPEN and not self._probe_in_flight:
                self._probe_in_flight = True
                return True
            return False

    def record_failure(self, count: int = 1) -> None:
        """One failing episode of the guarded path."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.HALF_OPEN:
                self._probe_in_flight = False
                self._opened_at = self._clock()
                self._transition(self.OPEN)
                return
            self._failures += count
            if (self._state == self.CLOSED
                    and self._failures >= self.failure_threshold):
                self._opened_at = self._clock()
                self._transition(self.OPEN)

    def record_success(self) -> None:
        """A successful episode; closes the breaker after a good probe."""
        with self._lock:
            self._maybe_half_open()
            if self._state == self.HALF_OPEN:
                self._probe_in_flight = False
                self._failures = 0
                self._transition(self.CLOSED)


class TierBreakerBoard:
    """Per-fingerprint circuit breakers over TurboFan bailouts.

    The plan cache consults the board before compiling a fingerprint:
    while that fingerprint's breaker is open, compilation is pinned to
    the degraded tier (Liftoff, no tier-up attempts) so the query stops
    paying the bailout on every fresh compilation episode — the
    persistent-regression case the JIT empirical study documents.

    Transitions are published as ``breaker.{open,half_open,close}``
    trace-style metrics (``breaker_transitions_total``); the service
    additionally records per-query ``breaker.*`` trace events.
    """

    def __init__(self, failure_threshold: int = 2,
                 cooldown_seconds: float = 30.0, *, clock=None):
        self.failure_threshold = failure_threshold
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._lock = threading.Lock()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._transitions = get_registry().counter(
            "breaker_transitions_total",
            "Tier circuit-breaker transitions, by new state",
        )

    def _breaker(self, fingerprint: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(fingerprint)
            if breaker is None:
                breaker = CircuitBreaker(
                    self.failure_threshold, self.cooldown_seconds,
                    clock=self._clock,
                    on_transition=lambda old, new:
                        self._transitions.inc(state=new),
                )
                self._breakers[fingerprint] = breaker
            return breaker

    def allow_tier_up(self, fingerprint: str) -> bool:
        """False while the fingerprint should stay on the cheap tier."""
        return self._breaker(fingerprint).allow()

    def record(self, fingerprint: str, bailouts: int) -> None:
        """Outcome of one compilation episode: ``bailouts`` new TurboFan
        failures (0 means the episode was clean)."""
        breaker = self._breaker(fingerprint)
        if bailouts > 0:
            breaker.record_failure(bailouts)
        else:
            breaker.record_success()

    def state(self, fingerprint: str) -> str:
        return self._breaker(fingerprint).state

    def states(self) -> dict[str, str]:
        """Snapshot of every tracked fingerprint's breaker state."""
        with self._lock:
            items = list(self._breakers.items())
        return {fp: b.state for fp, b in items}
