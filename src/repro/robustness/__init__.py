"""Execution guardrails: budgets, graceful degradation, fault injection.

Three cooperating layers keep a query from taking the system down:

* :mod:`repro.robustness.governor` — per-query resource budgets
  (wall-clock, linear-memory pages), enforced at morsel boundaries and
  in the rewired address space,
* :mod:`repro.robustness.fallback` — the degradation ladder: a failed
  attempt re-runs on the next engine of a configurable chain
  (``wasm → wasm[interpreter] → volcano`` by default),
* :mod:`repro.robustness.faults` — deterministic, seeded fault injection
  at named engine sites, so the chaos suite can prove that every
  injected failure still yields a correct query result.
"""

from repro.robustness.fallback import (
    DEFAULT_CHAIN,
    FallbackPolicy,
    execute_with_fallback,
    parse_engine_spec,
)
from repro.robustness.faults import (
    ENGINE_FAULT_SITES,
    FAULT_SITES,
    PARALLEL_FAULT_SITES,
    SERVICE_FAULT_SITES,
    FaultInjector,
)
from repro.robustness.governor import ResourceGovernor
from repro.robustness.resilience import (
    CancelToken,
    CircuitBreaker,
    Deadline,
    RetryPolicy,
    TierBreakerBoard,
)

__all__ = [
    "CancelToken",
    "CircuitBreaker",
    "DEFAULT_CHAIN",
    "Deadline",
    "ENGINE_FAULT_SITES",
    "FAULT_SITES",
    "FallbackPolicy",
    "FaultInjector",
    "ResourceGovernor",
    "RetryPolicy",
    "PARALLEL_FAULT_SITES",
    "SERVICE_FAULT_SITES",
    "TierBreakerBoard",
    "execute_with_fallback",
    "parse_engine_spec",
]
