"""The Volcano engine: tuple-at-a-time iterators (PostgreSQL's model).

Each physical operator becomes an iterator implementing the classic
``open/next/close`` interface [Graefe 94]; every tuple flows through one
virtual ``next()`` call per operator, and predicates/projections are
evaluated by the expression interpreter.  This is the paper's
PostgreSQL baseline: simple, portable, and paying the full per-tuple
interpretation overhead that the compiling engines eliminate.

Cost accounting: one ``virtual_call`` per ``next()`` invocation, one
``interp_dispatch`` per expression IR node evaluated, and bulk memory
events for scans and hash tables.
"""

from __future__ import annotations

from repro.catalog.catalog import Catalog
from repro.costmodel import Profile
from repro.engines import aggstate
from repro.engines.base import ExecutionResult, QueryEngine, Stopwatch, Timings
from repro.engines.eval import evaluate
from repro.errors import EngineError
from repro.observability.trace import trace_span
from repro.plan import physical as P

__all__ = ["VolcanoEngine"]


class _Iterator:
    """Base iterator: counts virtual calls when profiling."""

    def __init__(self, profile: Profile | None):
        self.profile = profile

    def open(self) -> None:
        pass

    def __iter__(self):
        return self

    def __next__(self):  # pragma: no cover - subclasses implement
        raise NotImplementedError

    def _tick(self) -> None:
        if self.profile is not None:
            self.profile.virtual_calls += 1


class _ScanIterator(_Iterator):
    def __init__(self, op: P.SeqScan, table, profile):
        super().__init__(profile)
        self.op = op
        self.table = table
        self._row = 0
        self._count = table.row_count
        # .tolist() converts to plain Python values once, up front
        self._columns = [
            table.column(name).values.tolist() for name in op.columns
        ]
        if profile is not None and self._count:
            for name in op.columns:
                profile.memory_bulk(
                    f"scan:{op.binding}:{name}",
                    accesses=self._count,
                    sequential=self._count,
                    footprint=int(table.column(name).nbytes),
                )

    def __next__(self):
        self._tick()
        if self._row >= self._count:
            raise StopIteration
        i = self._row
        self._row += 1
        return tuple(col[i] for col in self._columns)


class _IndexSeekIterator(_Iterator):
    """Range scan through an ordered index: positions resolve once at
    open(); rows come back in key order (random access by row id)."""

    def __init__(self, op: P.IndexSeek, table, profile):
        super().__init__(profile)
        self.op = op
        index = table.index_on(op.key_column)
        self._lo, self._hi = index.positions(
            op.low, op.high, op.low_strict, op.high_strict
        )
        self._row_ids = index.row_ids
        self._pos = self._lo
        self._columns = [
            table.column(name).values.tolist() for name in op.columns
        ]
        if profile is not None and self._hi > self._lo:
            rows = self._hi - self._lo
            profile.memory_bulk(
                f"idxseek:{op.binding}", accesses=rows, sequential=0,
                footprint=max(sum(table.column(n).nbytes
                                  for n in op.columns), 1),
            )

    def __next__(self):
        self._tick()
        if self._pos >= self._hi:
            raise StopIteration
        row_id = int(self._row_ids[self._pos])
        self._pos += 1
        return tuple(col[row_id] for col in self._columns)


class _FilterIterator(_Iterator):
    def __init__(self, op: P.Filter, child: _Iterator, profile):
        super().__init__(profile)
        self.predicate = op.predicate
        self.child = child

    def open(self):
        self.child.open()

    def __next__(self):
        self._tick()
        for row in self.child:
            if evaluate(self.predicate, row, self.profile):
                return row
        raise StopIteration


class _ProjectIterator(_Iterator):
    def __init__(self, op: P.Project, child: _Iterator, profile):
        super().__init__(profile)
        self.exprs = op.exprs
        self.child = child

    def open(self):
        self.child.open()

    def __next__(self):
        self._tick()
        row = next(self.child)
        return tuple(evaluate(e, row, self.profile) for e in self.exprs)


class _HashJoinIterator(_Iterator):
    def __init__(self, op: P.HashJoin, build: _Iterator, probe: _Iterator,
                 profile):
        super().__init__(profile)
        self.op = op
        self.build_child = build
        self.probe_child = probe
        self.table: dict | None = None
        self._matches: list = []
        self._probe_row = None

    def open(self):
        self.build_child.open()
        self.probe_child.open()
        self.table = {}
        rows = 0
        for row in self.build_child:
            key = tuple(
                evaluate(k, row, self.profile) for k in self.op.build_keys
            )
            self.table.setdefault(key, []).append(row)
            rows += 1
        if self.profile is not None and rows:
            row_size = sum(c.ty.size for c in self.op.build.output) + 16
            self.profile.memory_bulk(
                f"join-build:{id(self.op)}", accesses=rows, sequential=0,
                footprint=max(rows * row_size, 1),
            )

    def __next__(self):
        self._tick()
        while True:
            if self._matches:
                build_row = self._matches.pop()
                combined = build_row + self._probe_row
                if self.op.residual is None or evaluate(
                    self.op.residual, combined, self.profile
                ):
                    return combined
                continue
            self._probe_row = next(self.probe_child)
            key = tuple(
                evaluate(k, self._probe_row, self.profile)
                for k in self.op.probe_keys
            )
            if self.profile is not None:
                self.profile.memory_bulk(
                    f"join-probe:{id(self.op)}", accesses=1, sequential=0,
                    footprint=max(len(self.table or {}) * 32, 1),
                )
            self._matches = list(self.table.get(key, ()))


class _NestedLoopIterator(_Iterator):
    def __init__(self, op: P.NestedLoopJoin, left: _Iterator,
                 right: _Iterator, profile):
        super().__init__(profile)
        self.op = op
        self.left_child = left
        self.right_child = right
        self.left_rows: list = []
        self._index = 0
        self._right_row = None

    def open(self):
        self.left_child.open()
        self.right_child.open()
        self.left_rows = list(self.left_child)
        self._index = len(self.left_rows)  # force first right fetch

    def __next__(self):
        self._tick()
        while True:
            if self._index < len(self.left_rows):
                combined = self.left_rows[self._index] + self._right_row
                self._index += 1
                if self.op.predicate is None or evaluate(
                    self.op.predicate, combined, self.profile
                ):
                    return combined
                continue
            self._right_row = next(self.right_child)
            self._index = 0


class _HashGroupByIterator(_Iterator):
    def __init__(self, op: P.HashGroupBy, child: _Iterator, profile):
        super().__init__(profile)
        self.op = op
        self.child = child
        self._groups = None
        self._output = None

    def open(self):
        self.child.open()
        groups: dict[tuple, list] = {}
        rows = 0
        for row in self.child:
            key = tuple(
                evaluate(k, row, self.profile) for k in self.op.keys
            )
            states = groups.get(key)
            if states is None:
                states = groups[key] = aggstate.new_states(self.op.aggregates)
            values = [
                evaluate(agg.arg, row, self.profile)
                if agg.arg is not None else None
                for agg in self.op.aggregates
            ]
            aggstate.update_states(states, self.op.aggregates, values)
            rows += 1
        if self.profile is not None and rows:
            row_size = 16 + sum(k.ty.size for k in self.op.keys) \
                + 8 * len(self.op.aggregates)
            self.profile.memory_bulk(
                f"group:{id(self.op)}", accesses=rows, sequential=0,
                footprint=max(len(groups) * row_size, 1),
            )
        self._groups = groups
        self._output = iter(groups.items())

    def __next__(self):
        self._tick()
        key, states = next(self._output)
        finals = aggstate.finalize_states(states, self.op.aggregates)
        return key + tuple(finals)


class _ScalarAggregateIterator(_Iterator):
    def __init__(self, op: P.ScalarAggregate, child: _Iterator, profile):
        super().__init__(profile)
        self.op = op
        self.child = child
        self._done = False

    def open(self):
        self.child.open()

    def __next__(self):
        self._tick()
        if self._done:
            raise StopIteration
        self._done = True
        states = aggstate.new_states(self.op.aggregates)
        for row in self.child:
            values = [
                evaluate(agg.arg, row, self.profile)
                if agg.arg is not None else None
                for agg in self.op.aggregates
            ]
            aggstate.update_states(states, self.op.aggregates, values)
        return tuple(aggstate.finalize_states(states, self.op.aggregates))


class _SortIterator(_Iterator):
    def __init__(self, op: P.Sort, child: _Iterator, profile):
        super().__init__(profile)
        self.op = op
        self.child = child
        self._output = None

    def open(self):
        self.child.open()
        rows = list(self.child)
        # stable multi-key sort: apply keys right-to-left
        for key_expr, descending in reversed(self.op.order):
            rows.sort(
                key=lambda row: evaluate(key_expr, row, self.profile),
                reverse=descending,
            )
        if self.profile is not None and rows:
            import math

            n = len(rows)
            self.profile.add("sort_comparisons", n * math.log2(max(n, 2)))
        self._output = iter(rows)

    def __next__(self):
        self._tick()
        return next(self._output)


class _LimitIterator(_Iterator):
    def __init__(self, op: P.Limit, child: _Iterator, profile):
        super().__init__(profile)
        self.limit = op.limit
        self.offset = op.offset
        self.child = child
        self._emitted = 0
        self._skipped = 0

    def open(self):
        self.child.open()

    def __next__(self):
        self._tick()
        while self._skipped < self.offset:
            next(self.child)
            self._skipped += 1
        if self.limit is not None and self._emitted >= self.limit:
            raise StopIteration
        self._emitted += 1
        return next(self.child)


class VolcanoEngine(QueryEngine):
    """Tuple-at-a-time execution (the PostgreSQL baseline)."""

    name = "volcano"

    def execute(self, plan: P.PhysicalOperator, catalog: Catalog,
                profile: Profile | None = None,
                trace=None) -> ExecutionResult:
        if isinstance(plan, P.EmptyResult):
            return self.execute_folded(plan, profile, trace)
        timings = Timings()
        with Stopwatch(timings, "translation"), \
                trace_span(trace, "translation", engine=self.name):
            root = self._build(plan, catalog, profile)
        with Stopwatch(timings, "execution"), \
                trace_span(trace, "execution", engine=self.name):
            root.open()
            rows = list(root)
        result = self.finalize_rows(plan, rows)
        result.engine = self.name
        result.timings = timings
        result.profile = profile
        result.trace = trace
        return result

    def _build(self, op: P.PhysicalOperator, catalog: Catalog,
               profile) -> _Iterator:
        if isinstance(op, P.SeqScan):
            return _ScanIterator(op, catalog.get(op.table_name), profile)
        if isinstance(op, P.IndexSeek):
            return _IndexSeekIterator(op, catalog.get(op.table_name),
                                      profile)
        if isinstance(op, P.Filter):
            return _FilterIterator(
                op, self._build(op.child, catalog, profile), profile
            )
        if isinstance(op, P.Project):
            return _ProjectIterator(
                op, self._build(op.child, catalog, profile), profile
            )
        if isinstance(op, P.HashJoin):
            return _HashJoinIterator(
                op,
                self._build(op.build, catalog, profile),
                self._build(op.probe, catalog, profile),
                profile,
            )
        if isinstance(op, P.NestedLoopJoin):
            return _NestedLoopIterator(
                op,
                self._build(op.left, catalog, profile),
                self._build(op.right, catalog, profile),
                profile,
            )
        if isinstance(op, P.HashGroupBy):
            return _HashGroupByIterator(
                op, self._build(op.child, catalog, profile), profile
            )
        if isinstance(op, P.ScalarAggregate):
            return _ScalarAggregateIterator(
                op, self._build(op.child, catalog, profile), profile
            )
        if isinstance(op, P.Sort):
            return _SortIterator(
                op, self._build(op.child, catalog, profile), profile
            )
        if isinstance(op, P.Limit):
            return _LimitIterator(
                op, self._build(op.child, catalog, profile), profile
            )
        raise EngineError(f"volcano cannot execute {type(op).__name__}")
