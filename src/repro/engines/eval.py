"""Tuple-at-a-time evaluation of the lowered expression IR.

Used by the Volcano engine (its expression interpreter) and anywhere a
single tuple must be evaluated in Python.  Semantics deliberately match
the Wasm backend: truncating integer division, scaled-integer decimals,
byte-wise string comparison, day-number dates.
"""

from __future__ import annotations

import re

from repro.engines.datecalc import civil_from_days
from repro.errors import EngineError
from repro.plan import exprs as E

__all__ = ["evaluate", "like_matches", "sql_like_regex", "compare_values"]


def sql_like_regex(pattern: str) -> re.Pattern:
    """Compile a SQL LIKE pattern (``%``/``_``) into a regex."""
    out = []
    for ch in pattern:
        if ch == "%":
            out.append(".*")
        elif ch == "_":
            out.append(".")
        else:
            out.append(re.escape(ch))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


def _text(value) -> bytes:
    if isinstance(value, bytes):
        return value.rstrip(b"\x00")
    return bytes(value).rstrip(b"\x00")


def like_matches(kind: str, value: bytes, pattern) -> bool:
    text = _text(value)
    if kind == "exact":
        return text == pattern
    if kind == "prefix":
        return text.startswith(pattern)
    if kind == "suffix":
        return text.endswith(pattern)
    if kind == "contains":
        return pattern in text
    return bool(sql_like_regex(pattern).match(text.decode("utf-8", "replace")))


_CMP = {
    "=": lambda a, b: a == b,
    "<>": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def compare_values(op: str, a, b) -> bool:
    if isinstance(a, (bytes, bytearray)) or isinstance(b, (bytes, bytearray)):
        a = _text(a)
        b = _text(b)
    return _CMP[op](a, b)


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise EngineError("integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def _int_rem(a: int, b: int) -> int:
    if b == 0:
        raise EngineError("integer division by zero")
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def evaluate(expr: E.LExpr, row: tuple, profile=None):
    """Evaluate ``expr`` against one input tuple (storage-level values)."""
    if profile is not None:
        profile.interp_dispatch += 1

    if isinstance(expr, E.Slot):
        return row[expr.index]
    if isinstance(expr, E.Const):
        return expr.value
    if isinstance(expr, E.Param):
        if expr.value is None:
            raise EngineError(f"parameter ${expr.index} is unbound")
        return expr.value
    if isinstance(expr, E.Arith):
        a = evaluate(expr.left, row, profile)
        b = evaluate(expr.right, row, profile)
        op = expr.op
        if op == "+":
            return a + b
        if op == "-":
            return a - b
        if op == "*":
            return a * b
        if op == "/":
            if expr.ty.is_floating:
                if b == 0.0:
                    return float("inf") if a > 0 else (
                        float("-inf") if a < 0 else float("nan")
                    )
                return a / b
            return _int_div(a, b)
        if op == "%":
            return _int_rem(a, b)
        raise EngineError(f"unknown arithmetic op {op!r}")
    if isinstance(expr, E.Compare):
        a = evaluate(expr.left, row, profile)
        b = evaluate(expr.right, row, profile)
        return compare_values(expr.op, a, b)
    if isinstance(expr, E.Logic):
        a = evaluate(expr.left, row, profile)
        if expr.op == "AND":
            return bool(a) and bool(evaluate(expr.right, row, profile))
        return bool(a) or bool(evaluate(expr.right, row, profile))
    if isinstance(expr, E.Not):
        return not evaluate(expr.operand, row, profile)
    if isinstance(expr, E.Neg):
        return -evaluate(expr.operand, row, profile)
    if isinstance(expr, E.Promote):
        value = evaluate(expr.operand, row, profile)
        if expr.ty.is_floating:
            return float(value)
        return int(value)
    if isinstance(expr, E.Case):
        for cond, result in expr.whens:
            if evaluate(cond, row, profile):
                return evaluate(result, row, profile)
        return evaluate(expr.else_, row, profile)
    if isinstance(expr, E.Like):
        value = evaluate(expr.operand, row, profile)
        matched = like_matches(expr.kind, value, expr.pattern)
        return (not matched) if expr.negated else matched
    if isinstance(expr, E.Extract):
        days = evaluate(expr.operand, row, profile)
        year, month, day = civil_from_days(int(days))
        return {"YEAR": year, "MONTH": month, "DAY": day}[expr.part]
    raise EngineError(f"cannot evaluate {type(expr).__name__}")
