"""O0 and O2 compilation of HIR to Python (the H2/H3 paths).

* **O0** lowers each HIR instruction directly, after the mandatory
  linear-scan register-allocation pass every machine-code backend needs
  (LLVM's ``-O0`` still selects instructions and allocates registers).
* **O2** first runs the optimization pipeline — constant propagation,
  copy propagation, local common-subexpression elimination, dead code
  elimination, a second round of constant propagation (LLVM's pipelines
  iterate), register allocation — and verifies the IR between phases.
  Optimized code runs faster; compilation costs considerably more,
  which is exactly HyPer's trade-off in Figure 10.

Generated functions have the signature ``f(begin, end)`` (pipeline
parameters) and close over ``_cols``, ``_lib``, ``_res`` and the
semantic helpers via their exec namespace.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engines.datecalc import civil_from_days
from repro.engines.eval import like_matches
from repro.engines.hyper import hir
from repro.errors import CompilationError
from repro.pyast import checked_parse

__all__ = ["compile_o0", "compile_o2", "CompiledHir"]

_BIN_TEMPLATE = {
    "+": "{a} + {b}",
    "-": "{a} - {b}",
    "*": "{a} * {b}",
    "%": "_irem({a}, {b})",
    "==": "({a} == {b}) * 1",
    "!=": "({a} != {b}) * 1",
    "<": "({a} < {b}) * 1",
    "<=": "({a} <= {b}) * 1",
    ">": "({a} > {b}) * 1",
    ">=": "({a} >= {b}) * 1",
    "&": "{a} & {b}",
    "|": "{a} | {b}",
}


@dataclass
class CompiledHir:
    """One compiled pipeline function."""

    name: str
    tier: str
    source: str
    code: object

    def bind(self, columns, library, results, profile=None):
        namespace = {
            "_cols": columns,
            "_lib": library,
            "_res": results,
            "_idiv": hir.int_div,
            "_irem": hir.int_rem,
            "_fdiv": hir.float_div,
            "_like": like_matches,
            "_civil": civil_from_days,
            "_P": profile,
        }
        exec(self.code, namespace)
        fn = namespace[self.name]
        fn.tier = self.tier
        return fn


class _Emitter:
    def __init__(self):
        self.lines: list[str] = []
        self.indent = 1

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)


# ---------------------------------------------------------------------------
# register allocation (shared mandatory backend pass)
# ---------------------------------------------------------------------------

def linear_scan_allocate(func: hir.HirFunction) -> dict[int, int]:
    """Linear-scan register allocation: compute live ranges over a
    linearization of the body and assign virtual registers to a compact
    set of slots.  The *mapping* is what the generated code uses; the
    pass's purpose here is the honest compile-time work plus smaller
    generated frames."""
    order: list[tuple] = []

    def linearize(body):
        for instr in body:
            if instr[0] == "loop":
                start = len(order)
                linearize(instr[1])
                # registers used in a loop live across the whole loop
                for pos in range(start, len(order)):
                    order.append(order[pos])
            elif instr[0] == "if":
                order.append(("use", instr[1]))
                linearize(instr[2])
                linearize(instr[3])
            else:
                order.append(instr)

    linearize(func.body)
    first: dict[int, int] = {}
    last: dict[int, int] = {}

    def touch(reg, position):
        first.setdefault(reg, position)
        last[reg] = position

    for position, instr in enumerate(order):
        for reg in _registers_of(instr):
            touch(reg, position)
    for p in range(func.n_params):
        touch(p, 0)

    # classic linear scan over [first, last] intervals
    intervals = sorted(first, key=lambda r: first[r])
    free: list[int] = []
    active: list[tuple[int, int]] = []  # (end, slot)
    mapping: dict[int, int] = {}
    next_slot = 0
    for reg in intervals:
        start = first[reg]
        active = [(end, slot) for end, slot in active
                  if end >= start or free.append(slot)]
        if reg < func.n_params:
            mapping[reg] = reg  # parameters keep their slots
            continue
        if free:
            slot = free.pop()
        else:
            slot = max(next_slot, func.n_params)
            next_slot = slot + 1
        mapping[reg] = slot
        active.append((last[reg], slot))
    return mapping


def _registers_of(instr) -> list[int]:
    op = instr[0]
    if op == "bin":
        return [instr[2], instr[3], instr[4]]
    if op in ("mov", "neg", "not", "len", "cast_int", "cast_float"):
        return [instr[1], instr[2]]
    if op == "const":
        return [instr[1]]
    if op == "loadcol":
        return [instr[1], instr[3]]
    if op == "call":
        regs = list(instr[3])
        if instr[1] is not None:
            regs.append(instr[1])
        return regs
    if op == "getitem":
        return [instr[1], instr[2], instr[3]]
    if op == "setitem":
        return [instr[1], instr[3]]
    if op == "result":
        return list(instr[1])
    if op == "like":
        return [instr[1], instr[2]]
    if op == "extract":
        return [instr[1], instr[2]]
    if op == "use":
        return [instr[1]]
    return []


# ---------------------------------------------------------------------------
# optimization passes (the O2 pipeline)
# ---------------------------------------------------------------------------

def _map_body(body, fn):
    out = []
    for instr in body:
        if instr[0] == "loop":
            out.append(("loop", _map_body(instr[1], fn)))
        elif instr[0] == "if":
            out.append(("if", instr[1], _map_body(instr[2], fn),
                        _map_body(instr[3], fn)))
        else:
            replacement = fn(instr)
            if replacement is not None:
                out.append(replacement)
    return out


def constant_propagation(body: list) -> list:
    """Forward constants through straight-line regions (conservatively
    reset at control flow)."""
    def walk(body):
        known: dict[int, object] = {}
        out = []
        for instr in body:
            op = instr[0]
            if op == "loop":
                known.clear()
                out.append(("loop", walk(instr[1])))
                known.clear()
                continue
            if op == "if":
                known.clear()
                out.append(("if", instr[1], walk(instr[2]), walk(instr[3])))
                continue
            if op == "const":
                known[instr[1]] = instr[2]
                out.append(instr)
                continue
            if op == "mov" and instr[2] in known:
                known[instr[1]] = known[instr[2]]
                out.append(("const", instr[1], known[instr[1]]))
                continue
            if op == "bin":
                _, kind, dst, a, b, ty = instr
                if a in known and b in known and kind in _FOLDABLE:
                    try:
                        value = _FOLDABLE[kind](known[a], known[b], ty)
                        known[dst] = value
                        out.append(("const", dst, value))
                        continue
                    except Exception:
                        pass
                known.pop(dst, None)
                out.append(instr)
                continue
            for reg in _written_by(instr):
                known.pop(reg, None)
            out.append(instr)
        return out

    return walk(body)


_FOLDABLE = {
    "+": lambda a, b, t: a + b,
    "-": lambda a, b, t: a - b,
    "*": lambda a, b, t: a * b,
    "==": lambda a, b, t: (a == b) * 1,
    "!=": lambda a, b, t: (a != b) * 1,
    "<": lambda a, b, t: (a < b) * 1,
    "<=": lambda a, b, t: (a <= b) * 1,
    ">": lambda a, b, t: (a > b) * 1,
    ">=": lambda a, b, t: (a >= b) * 1,
    "&": lambda a, b, t: a & b,
    "|": lambda a, b, t: a | b,
}


def _written_by(instr) -> list[int]:
    op = instr[0]
    if op == "bin":
        return [instr[2]]
    if op in ("const", "mov", "neg", "not", "len", "loadcol",
              "getitem", "like", "extract", "cast_int", "cast_float"):
        return [instr[1]]
    if op == "call" and instr[1] is not None:
        return [instr[1]]
    return []


def copy_propagation(body: list) -> list:
    """Replace uses of ``mov`` copies within straight-line regions."""
    def walk(body):
        alias: dict[int, int] = {}
        out = []

        def resolve(reg):
            while reg in alias:
                reg = alias[reg]
            return reg

        for instr in body:
            op = instr[0]
            if op in ("loop", "if"):
                alias.clear()
                if op == "loop":
                    out.append(("loop", walk(instr[1])))
                else:
                    out.append(("if", instr[1], walk(instr[2]),
                                walk(instr[3])))
                continue
            instr = _substitute_uses(instr, resolve)
            written = _written_by(instr)
            for reg in written:
                alias.pop(reg, None)
                stale = [k for k, v in alias.items() if v == reg]
                for k in stale:
                    del alias[k]
            if op == "mov":
                alias[instr[1]] = instr[2]
            out.append(instr)
        return out

    return walk(body)


def _substitute_uses(instr, resolve):
    op = instr[0]
    if op == "bin":
        return (op, instr[1], instr[2], resolve(instr[3]),
                resolve(instr[4]), instr[5])
    if op in ("mov", "neg", "not", "len", "cast_int", "cast_float"):
        return (op, instr[1], resolve(instr[2]))
    if op == "loadcol":
        return (op, instr[1], instr[2], resolve(instr[3]))
    if op == "call":
        return (op, instr[1], instr[2], [resolve(r) for r in instr[3]])
    if op == "getitem":
        return (op, instr[1], resolve(instr[2]), resolve(instr[3]))
    if op == "setitem":
        return (op, resolve(instr[1]), instr[2], resolve(instr[3]))
    if op == "result":
        return (op, [resolve(r) for r in instr[1]])
    if op == "like":
        return (op, instr[1], resolve(instr[2]), instr[3], instr[4], instr[5])
    if op == "extract":
        return (op, instr[1], resolve(instr[2]), instr[3])
    if op == "if":
        return instr
    return instr


def dead_code_elimination(func: hir.HirFunction, body: list) -> list:
    """Drop pure instructions whose destination is never read."""
    used: set[int] = set()

    def collect(body):
        for instr in body:
            op = instr[0]
            if op == "loop":
                collect(instr[1])
            elif op == "if":
                used.add(instr[1])
                collect(instr[2])
                collect(instr[3])
            else:
                writes = set(_written_by(instr))
                for reg in _registers_of(instr):
                    if reg not in writes or op in ("setitem",):
                        used.add(reg)
                # conservatively: all non-dst registers count as reads
                for reg in _read_by(instr):
                    used.add(reg)

    collect(body)

    _PURE = {"const", "mov", "bin", "neg", "not", "len", "getitem",
             "cast_int", "cast_float", "extract"}

    def sweep(instr):
        if instr[0] in _PURE:
            dsts = _written_by(instr)
            if dsts and all(d not in used for d in dsts):
                return None
        return instr

    return _map_body(body, sweep)


def _read_by(instr) -> list[int]:
    writes = set(_written_by(instr))
    return [r for r in _registers_of(instr) if r not in writes]


def common_subexpressions(body: list) -> list:
    """Local CSE on pure binary operations within straight-line regions."""
    def walk(body):
        available: dict[tuple, int] = {}
        out = []
        for instr in body:
            op = instr[0]
            if op == "loop":
                available.clear()
                out.append(("loop", walk(instr[1])))
                continue
            if op == "if":
                available.clear()
                out.append(("if", instr[1], walk(instr[2]), walk(instr[3])))
                continue
            if op == "bin":
                key = (instr[1], instr[3], instr[4], instr[5])
                prior = available.get(key)
                if prior is not None and prior != instr[2]:
                    out.append(("mov", instr[2], prior))
                    available = {
                        k: v for k, v in available.items() if v != instr[2]
                    }
                    continue
                available = {
                    k: v for k, v in available.items()
                    if v != instr[2] and instr[2] not in (k[1], k[2])
                }
                available[key] = instr[2]
                out.append(instr)
                continue
            for reg in _written_by(instr):
                available = {
                    k: v for k, v in available.items()
                    if v != reg and reg not in (k[1], k[2])
                }
            out.append(instr)
        return out

    return walk(body)


# ---------------------------------------------------------------------------
# Python emission
# ---------------------------------------------------------------------------

def _emit_python(func: hir.HirFunction, body: list, mapping: dict[int, int],
                 tier: str, instrumented: bool) -> CompiledHir:
    em = _Emitter()

    def reg(r):
        return f"r{mapping.get(r, r)}"

    params = ", ".join(reg(i) for i in range(func.n_params))
    name = f"hf_{func.name}"
    header = f"def {name}({params}):"
    pending = [0]

    def flush():
        if instrumented and pending[0]:
            em.emit(f"_P.instructions += {pending[0]}")
            pending[0] = 0

    def emit_body(body, depth):
        for instr in body:
            op = instr[0]
            if instrumented:
                pending[0] += 1
            if op == "loop":
                flush()
                em.emit("while True:")
                em.indent += 1
                emit_body(instr[1], depth + 1)
                flush()
                em.indent -= 1
            elif op == "if":
                flush()
                if instrumented:
                    # HyPer's optimizing codegen emits branch-free
                    # (predicated) selection code — the paper's reading of
                    # its flat Figure-6 curves — so conditionals cost two
                    # extra instructions instead of a predictable branch.
                    em.emit("_P.instructions += 2")
                em.emit(f"if {reg(instr[1])}:")
                em.indent += 1
                emit_body(instr[2], depth)
                flush()
                if not instr[2]:
                    em.emit("pass")
                em.indent -= 1
                if instr[3]:
                    em.emit("else:")
                    em.indent += 1
                    emit_body(instr[3], depth)
                    flush()
                    em.indent -= 1
            elif op == "break":
                flush()
                if instr[1] != 0:
                    raise CompilationError(
                        "HIR generation must not produce multi-level breaks"
                    )
                em.emit("break")
            elif op == "continue":
                flush()
                if instr[1] != 0:
                    raise CompilationError(
                        "HIR generation must not produce multi-level continues"
                    )
                em.emit("continue")
            elif op == "ret":
                flush()
                em.emit("return")
            elif op == "bin":
                _, kind, dst, a, b, ty = instr
                if kind == "/":
                    expr = (f"_fdiv({reg(a)}, {reg(b)})" if ty == "f64"
                            else f"_idiv({reg(a)}, {reg(b)})")
                else:
                    expr = _BIN_TEMPLATE[kind].format(a=reg(a), b=reg(b))
                em.emit(f"{reg(dst)} = {expr}")
            elif op == "const":
                em.emit(f"{reg(instr[1])} = {instr[2]!r}")
            elif op == "mov":
                em.emit(f"{reg(instr[1])} = {reg(instr[2])}")
            elif op == "loadcol":
                em.emit(
                    f"{reg(instr[1])} = _cols[{instr[2]}][{reg(instr[3])}]"
                )
            elif op == "call":
                args = ", ".join(reg(r) for r in instr[3])
                target = f"_lib.{instr[2]}({args})"
                if instrumented:
                    em.emit("_P.calls += 1")
                if instr[1] is not None:
                    em.emit(f"{reg(instr[1])} = {target}")
                else:
                    em.emit(target)
            elif op == "getitem":
                em.emit(
                    f"{reg(instr[1])} = {reg(instr[2])}[{reg(instr[3])}]"
                )
            elif op == "setitem":
                em.emit(f"{reg(instr[1])}[{instr[2]}] = {reg(instr[3])}")
            elif op == "len":
                em.emit(f"{reg(instr[1])} = len({reg(instr[2])})")
            elif op == "result":
                row = ", ".join(reg(r) for r in instr[1])
                em.emit(f"_res.append(({row},))")
            elif op == "neg":
                em.emit(f"{reg(instr[1])} = -{reg(instr[2])}")
            elif op == "not":
                em.emit(f"{reg(instr[1])} = 0 if {reg(instr[2])} else 1")
            elif op == "like":
                _, dst, a, kind, pattern, negated = instr
                expr = f"_like({kind!r}, {reg(a)}, {pattern!r})"
                if negated:
                    expr = f"(not {expr}) * 1"
                else:
                    expr = f"({expr}) * 1"
                em.emit(f"{reg(dst)} = {expr}")
            elif op == "extract":
                index = {"YEAR": 0, "MONTH": 1, "DAY": 2}[instr[3]]
                em.emit(
                    f"{reg(instr[1])} = _civil({reg(instr[2])})[{index}]"
                )
            elif op == "cast_int":
                em.emit(f"{reg(instr[1])} = int({reg(instr[2])})")
            elif op == "cast_float":
                em.emit(f"{reg(instr[1])} = float({reg(instr[2])})")
            else:  # pragma: no cover - exhaustive
                raise CompilationError(f"cannot emit HIR op {op!r}")

    emit_body(body, 0)
    flush()
    if not em.lines:
        em.emit("pass")
    source = header + "\n" + "\n".join(em.lines) + "\n"
    try:
        code = compile(source, f"<{tier}:{func.name}>", "exec")
    except SyntaxError as exc:  # pragma: no cover - compiler bug guard
        raise CompilationError(f"{tier} emitted bad code: {exc}\n{source}")
    return CompiledHir(name, tier, source, code)


def compile_o0(func: hir.HirFunction, instrumented: bool = False) -> CompiledHir:
    """H2: direct code generation (register allocation only)."""
    mapping = linear_scan_allocate(func)
    return _emit_python(func, func.body, mapping, "O0", instrumented)


def instruction_selection(body: list) -> list[tuple]:
    """Lower HIR to a pseudo machine IR (two-address form with explicit
    moves), the way an LLVM backend's instruction selector does.

    The selected form is *analyzed* (it feeds the scheduler) but the
    final emission still goes through :func:`_emit_python`; the pass
    exists because a machine-code backend cannot skip it, and its cost is
    part of the O2 pipeline the paper measures against.
    """
    selected: list[tuple] = []

    def lower(body):
        for instr in body:
            op = instr[0]
            if op == "loop":
                selected.append(("label",))
                lower(instr[1])
                selected.append(("jump",))
            elif op == "if":
                selected.append(("test", instr[1]))
                lower(instr[2])
                lower(instr[3])
            elif op == "bin":
                # three-address -> two-address: mov dst, a; op dst, b
                selected.append(("mach_mov", instr[2], instr[3]))
                selected.append(("mach_op", instr[1], instr[2], instr[4]))
            elif op == "call":
                for i, arg in enumerate(instr[3]):
                    selected.append(("mach_argmov", i, arg))
                selected.append(("mach_call", instr[2]))
                if instr[1] is not None:
                    selected.append(("mach_mov", instr[1], -1))
            else:
                selected.append(("mach_misc",) + tuple(
                    r for r in _registers_of(instr)
                ))

    lower(body)
    return selected


def list_schedule(selected: list[tuple]) -> int:
    """List scheduling over the selected instructions: compute dependence
    heights register-wise and return the critical-path length.  Pure
    analysis (our 'machine' is Python), but the backend work is real and
    is exactly what makes LLVM-style O2 pipelines slow."""
    ready_at: dict[int, int] = {}
    critical = 0
    for instr in selected:
        regs = [r for r in instr[1:] if isinstance(r, int) and r >= 0]
        start = max((ready_at.get(r, 0) for r in regs), default=0)
        finish = start + 1
        for r in regs[:1]:
            ready_at[r] = finish
        critical = max(critical, finish)
    return critical


def compile_o2(func: hir.HirFunction, instrumented: bool = False) -> CompiledHir:
    """H3: the full optimization pipeline, then code generation.

    Modeled on LLVM's O2: the scalar pass pipeline runs in *iterations*
    (LLVM pipelines revisit functions), followed by the mandatory backend
    phases — instruction selection, list scheduling, register allocation.
    This is still far cheaper than real LLVM (we run ~20 pass
    applications, LLVM runs ~90 heavier ones over SSA), so the paper's
    compile-time *ratios* are a lower bound here; the direction holds.
    """
    body = func.body
    for _iteration in range(3):
        body = constant_propagation(body)
        _verify(func, body)
        body = copy_propagation(body)
        _verify(func, body)
        body = common_subexpressions(body)
        _verify(func, body)
        body = dead_code_elimination(func, body)
        _verify(func, body)
    # backend phases: ISel + scheduling + register allocation
    selected = instruction_selection(body)
    list_schedule(selected)
    mapping = linear_scan_allocate(
        hir.HirFunction(func.name, func.n_params, func.n_registers, body)
    )
    compiled = _emit_python(func, body, mapping, "O2", instrumented)
    checked_parse(compiled.source)  # final verification pass
    return compiled


def _verify(func: hir.HirFunction, body: list) -> None:
    """IR sanity between passes: every read register is in range."""
    def check(body):
        for instr in body:
            if instr[0] == "loop":
                check(instr[1])
            elif instr[0] == "if":
                check(instr[2])
                check(instr[3])
            else:
                for r in _registers_of(instr):
                    if not (0 <= r < func.n_registers):
                        raise CompilationError(
                            f"pass broke {func.name}: register {r}"
                        )

    check(body)
