"""HIR: the HyPer engine's LLVM-like register IR, and its bytecode.

The paper's HyPer baseline (Figure 2a, first column) translates the QEP
into LLVM IR; from there three paths exist — a *bytecode generator* +
interpreter (H1), direct non-optimizing machine-code generation (H2,
"O0"), and the full optimization pipeline (H3, "O2").  HIR plays the
LLVM-IR role here:

* an infinite set of typed virtual **registers**,
* three-address instructions (no operand stack),
* structured control regions (``loop`` / ``if`` / ``break`` /
  ``continue``) that flatten to a jump-based **bytecode** for the
  interpreter and compile to Python for O0/O2,
* ``call`` instructions into the **pre-compiled runtime library**
  (hash tables, sort — the type-agnostic interface whose per-element
  call costs the paper analyzes in Listing 3 and Section 5.1).

Instruction tuples::

    ("const",  dst, value)
    ("mov",    dst, src)
    ("bin",    op, dst, a, b, kind)      # + - * / % == != < <= > >= & |
    ("neg",    dst, a) / ("not", dst, a)
    ("loadcol", dst, col_id, row_reg)    # base-table column access
    ("call",   dst_or_None, name, [args])# runtime library call
    ("getitem", dst, seq, index) / ("setitem", seq, index, value)
    ("len",    dst, seq)
    ("like",   dst, a, kind, pattern, negated)
    ("extract", dst, a, part)
    ("result", [regs])                   # emit one output row
    ("loop",   [body]) / ("if", cond, [then], [else])
    ("break", depth) / ("continue", depth)
    ("ret",)
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.datecalc import civil_from_days
from repro.engines.eval import like_matches
from repro.errors import EngineError

__all__ = ["HirFunction", "flatten_to_bytecode", "BytecodeInterpreter",
           "int_div", "int_rem", "float_div"]


def int_div(a, b):
    if b == 0:
        raise EngineError("integer division by zero")
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def int_rem(a, b):
    if b == 0:
        raise EngineError("integer division by zero")
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def float_div(a, b):
    if b == 0.0:
        if a == 0.0:
            return float("nan")
        return float("inf") if a > 0 else float("-inf")
    return a / b


@dataclass
class HirFunction:
    """One pipeline's code: parameters are registers 0..n_params-1."""

    name: str
    n_params: int
    n_registers: int
    body: list = field(default_factory=list)

    def instruction_count(self) -> int:
        def count(body):
            total = 0
            for instr in body:
                total += 1
                if instr[0] == "loop":
                    total += count(instr[1])
                elif instr[0] == "if":
                    total += count(instr[2]) + count(instr[3])
            return total

        return count(self.body)


# ---------------------------------------------------------------------------
# Bytecode: flat, jump-based (the H1 path's interpreter format)
# ---------------------------------------------------------------------------

def flatten_to_bytecode(func: HirFunction) -> list:
    """Structured HIR -> flat bytecode with ``jmp``/``jz`` instructions."""
    code: list = []
    # (loop_start_pc, [break_patch_positions]) per open loop
    loop_stack: list[tuple[int, list[int]]] = []

    def emit_body(body):
        for instr in body:
            kind = instr[0]
            if kind == "loop":
                start = len(code)
                patches: list[int] = []
                loop_stack.append((start, patches))
                emit_body(instr[1])
                code.append(("jmp", start))
                loop_stack.pop()
                end = len(code)
                for pos in patches:
                    code[pos] = (code[pos][0], end)
            elif kind == "if":
                code.append(("jz", instr[1], -1))
                jz_pos = len(code) - 1
                emit_body(instr[2])
                if instr[3]:
                    code.append(("jmp", -1))
                    jmp_pos = len(code) - 1
                    code[jz_pos] = ("jz", instr[1], len(code))
                    emit_body(instr[3])
                    code[jmp_pos] = ("jmp", len(code))
                else:
                    code[jz_pos] = ("jz", instr[1], len(code))
            elif kind == "break":
                start, patches = loop_stack[-1 - instr[1]]
                code.append(("jmp", -1))
                patches.append(len(code) - 1)
            elif kind == "continue":
                start, _ = loop_stack[-1 - instr[1]]
                code.append(("jmp", start))
            else:
                code.append(instr)

    emit_body(func.body)
    code.append(("ret",))
    return code


class BytecodeInterpreter:
    """The H1 path: interpret flattened bytecode, one dispatch per op.

    ``columns`` maps col_id -> Python list; ``library`` provides the
    pre-compiled runtime (hash tables, sort); ``results`` collects output
    rows.  Profiling counts one ``interp_dispatch`` per executed op.
    """

    def __init__(self, columns, library, results, profile=None):
        self.columns = columns
        self.library = library
        self.results = results
        self.profile = profile

    def run(self, bytecode: list, n_registers: int, args: tuple) -> None:
        regs = [None] * n_registers
        regs[: len(args)] = args
        columns = self.columns
        library = self.library
        profile = self.profile
        pc = 0
        dispatched = 0
        while True:
            instr = bytecode[pc]
            pc += 1
            dispatched += 1
            op = instr[0]
            if op == "bin":
                _, kind, dst, a, b, ty = instr
                va, vb = regs[a], regs[b]
                if kind == "+":
                    regs[dst] = va + vb
                elif kind == "-":
                    regs[dst] = va - vb
                elif kind == "*":
                    regs[dst] = va * vb
                elif kind == "/":
                    regs[dst] = float_div(va, vb) if ty == "f64" \
                        else int_div(va, vb)
                elif kind == "%":
                    regs[dst] = int_rem(va, vb)
                elif kind == "==":
                    regs[dst] = 1 if va == vb else 0
                elif kind == "!=":
                    regs[dst] = 1 if va != vb else 0
                elif kind == "<":
                    regs[dst] = 1 if va < vb else 0
                elif kind == "<=":
                    regs[dst] = 1 if va <= vb else 0
                elif kind == ">":
                    regs[dst] = 1 if va > vb else 0
                elif kind == ">=":
                    regs[dst] = 1 if va >= vb else 0
                elif kind == "&":
                    regs[dst] = va & vb
                else:
                    regs[dst] = va | vb
            elif op == "loadcol":
                regs[instr[1]] = columns[instr[2]][regs[instr[3]]]
            elif op == "const":
                regs[instr[1]] = instr[2]
            elif op == "mov":
                regs[instr[1]] = regs[instr[2]]
            elif op == "jz":
                if not regs[instr[1]]:
                    pc = instr[2]
            elif op == "jmp":
                pc = instr[1]
            elif op == "getitem":
                regs[instr[1]] = regs[instr[2]][regs[instr[3]]]
            elif op == "setitem":
                regs[instr[1]][instr[2]] = regs[instr[3]]
            elif op == "len":
                regs[instr[1]] = len(regs[instr[2]])
            elif op == "call":
                _, dst, name, arg_regs = instr
                value = getattr(library, name)(
                    *[regs[r] for r in arg_regs]
                )
                if dst is not None:
                    regs[dst] = value
            elif op == "result":
                self.results.append(tuple(regs[r] for r in instr[1]))
            elif op == "neg":
                regs[instr[1]] = -regs[instr[2]]
            elif op == "not":
                regs[instr[1]] = 0 if regs[instr[2]] else 1
            elif op == "like":
                _, dst, a, kind, pattern, negated = instr
                matched = like_matches(kind, regs[a], pattern)
                regs[dst] = int(matched != negated)
            elif op == "extract":
                year, month, day = civil_from_days(int(regs[instr[2]]))
                regs[instr[1]] = {"YEAR": year, "MONTH": month,
                                  "DAY": day}[instr[3]]
            elif op == "cast_int":
                regs[instr[1]] = int(regs[instr[2]])
            elif op == "cast_float":
                regs[instr[1]] = float(regs[instr[2]])
            elif op == "ret":
                if profile is not None:
                    profile.interp_dispatch += dispatched
                return
            else:  # pragma: no cover - exhaustive
                raise EngineError(f"unknown bytecode op {op!r}")
