"""Data-centric translation of physical plans to HIR (HyPer's compiler).

Mirrors the Wasm backend's pipeline-wise code generation, with the
crucial architectural difference the paper analyzes (Listing 3, Section
5.1): complex operators use the **pre-compiled runtime library** through
a type-agnostic interface — one ``call`` per hash-table insert, probe,
and sort comparison — instead of generating specialized inline code.
Scalar expressions, filters, and aggregate arithmetic compile inline,
as HyPer's data-centric codegen does.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engines.hyper.hir import HirFunction
from repro.errors import PlanError
from repro.plan import exprs as E
from repro.plan import physical as P
from repro.plan.pipeline import Pipeline, dissect_into_pipelines

__all__ = ["HirProgram", "HirPipeline", "generate_hir"]


@dataclass
class HirPipeline:
    function: HirFunction
    source_kind: str     # "scan" | "indexseek" | "group" | "scalar" | "sort"
    source_name: str     # binding or structure id
    sort_before: int | None = None   # sort id to run first
    is_final: bool = False
    limit_id: int | None = None
    limit_total: int | None = None
    # index seek bounds: (key_column, low, high, low_strict, high_strict)
    seek: tuple | None = None


@dataclass
class HirProgram:
    """Everything the HyPer engine needs to run one query."""

    pipelines: list[HirPipeline]
    columns: list[tuple[str, str]]          # col_id -> (binding, column)
    structures: list[tuple[str, dict]]      # id -> (kind, config)
    output_types: list = field(default_factory=list)


class _FunctionBuilder:
    """Emission helper for one HIR function."""

    def __init__(self, name: str, n_params: int):
        self.name = name
        self.n_params = n_params
        self.n_registers = n_params
        self.body: list = []
        self._stack = [self.body]

    def reg(self) -> int:
        index = self.n_registers
        self.n_registers += 1
        return index

    def emit(self, *instr) -> None:
        self._stack[-1].append(tuple(instr))

    def const(self, value) -> int:
        dst = self.reg()
        self.emit("const", dst, value)
        return dst

    def binop(self, kind: str, a: int, b: int, ty: str = "i64") -> int:
        dst = self.reg()
        self.emit("bin", kind, dst, a, b, ty)
        return dst

    def call(self, name: str, args: list[int], want_result=True):
        dst = self.reg() if want_result else None
        self.emit("call", dst, name, list(args))
        return dst

    # structured regions
    class _Region:
        def __init__(self, builder, instr):
            self.builder = builder
            self.instr = instr

        def __enter__(self):
            self.builder._stack.append(self.instr[1])  # loop body
            return self

        def __exit__(self, *exc):
            self.builder._stack.pop()

    def loop(self):
        instr = ("loop", [])
        self._stack[-1].append(instr)
        return self._Region(self, instr)

    class _IfRegion:
        def __init__(self, builder, instr):
            self.builder = builder
            self.instr = instr

        def __enter__(self):
            self.builder._stack.append(self.instr[2])  # then-branch
            return self

        def __exit__(self, *exc):
            self.builder._stack.pop()

    def if_(self, cond: int):
        instr = ("if", cond, [], [])
        self._stack[-1].append(instr)
        return self._IfRegion(self, instr)

    def finish(self) -> HirFunction:
        return HirFunction(self.name, self.n_params, self.n_registers,
                           self.body)


class _ExprGen:
    """LExpr -> HIR, values in registers."""

    def __init__(self, fb: _FunctionBuilder, slots: list[int]):
        self.fb = fb
        self.slots = slots

    def gen(self, expr: E.LExpr) -> int:
        fb = self.fb
        if isinstance(expr, E.Slot):
            return self.slots[expr.index]
        if isinstance(expr, E.Const):
            value = expr.value
            if isinstance(value, bytes):
                # column values arrive NUL-stripped (NumPy S-dtype lists)
                value = value.rstrip(b"\x00")
            return fb.const(value)
        if isinstance(expr, E.Param):
            if expr.value is None:
                raise PlanError(f"parameter ${expr.index} is unbound")
            value = expr.value
            if isinstance(value, bytes):
                value = value.rstrip(b"\x00")
            return fb.const(value)
        if isinstance(expr, E.Arith):
            a = self.gen(expr.left)
            b = self.gen(expr.right)
            ty = "f64" if expr.ty.is_floating else "i64"
            return fb.binop(expr.op, a, b, ty)
        if isinstance(expr, E.Compare):
            a = self.gen(expr.left)
            b = self.gen(expr.right)
            op = {"=": "==", "<>": "!="}.get(expr.op, expr.op)
            # strings arrive as NUL-stripped bytes from the column lists
            # and as unpadded literals, so plain byte comparison matches
            # the padded semantics of the other engines
            return fb.binop(op, a, b, "i64")
        if isinstance(expr, E.Logic):
            a = self.gen(expr.left)
            b = self.gen(expr.right)
            return fb.binop("&" if expr.op == "AND" else "|", a, b, "i64")
        if isinstance(expr, E.Not):
            dst = fb.reg()
            fb.emit("not", dst, self.gen(expr.operand))
            return dst
        if isinstance(expr, E.Neg):
            dst = fb.reg()
            fb.emit("neg", dst, self.gen(expr.operand))
            return dst
        if isinstance(expr, E.Promote):
            dst = fb.reg()
            kind = "cast_float" if expr.ty.is_floating else "cast_int"
            fb.emit(kind, dst, self.gen(expr.operand))
            return dst
        if isinstance(expr, E.Case):
            dst = fb.reg()
            self._gen_case(expr, list(expr.whens), dst)
            return dst
        if isinstance(expr, E.Like):
            dst = fb.reg()
            fb.emit("like", dst, self.gen(expr.operand), expr.kind,
                    expr.pattern, expr.negated)
            return dst
        if isinstance(expr, E.Extract):
            dst = fb.reg()
            fb.emit("extract", dst, self.gen(expr.operand), expr.part)
            return dst
        raise PlanError(f"hyper cannot compile {type(expr).__name__}")

    def _gen_case(self, expr: E.Case, whens: list, dst: int) -> None:
        fb = self.fb
        if not whens:
            fb.emit("mov", dst, self.gen(expr.else_))
            return
        cond, value = whens[0]
        cond_reg = self.gen(cond)
        instr = ("if", cond_reg, [], [])
        fb._stack[-1].append(instr)
        fb._stack.append(instr[2])
        fb.emit("mov", dst, self.gen(value))
        fb._stack.pop()
        fb._stack.append(instr[3])
        self._gen_case(expr, whens[1:], dst)
        fb._stack.pop()


class _HirGenerator:
    def __init__(self):
        self.columns: list[tuple[str, str]] = []
        self._column_ids: dict[tuple[str, str], int] = {}
        self.structures: list[tuple[str, dict]] = []
        self._structure_ids: dict[int, int] = {}

    def column_id(self, binding: str, column: str) -> int:
        key = (binding, column)
        if key not in self._column_ids:
            self._column_ids[key] = len(self.columns)
            self.columns.append(key)
        return self._column_ids[key]

    def structure_id(self, op, kind: str, config: dict) -> int:
        if id(op) not in self._structure_ids:
            self._structure_ids[id(op)] = len(self.structures)
            self.structures.append((kind, config))
        return self._structure_ids[id(op)]

    # -- pipelines ----------------------------------------------------------

    def generate(self, plan: P.PhysicalOperator) -> HirProgram:
        pipelines = []
        for pipe in dissect_into_pipelines(plan):
            pipelines.append(self._gen_pipeline(pipe))
        return HirProgram(pipelines, self.columns, self.structures,
                          output_types=plan.output_types)

    def _gen_pipeline(self, pipe: Pipeline) -> HirPipeline:
        fb = _FunctionBuilder(f"p{pipe.index}", n_params=2)  # begin, end
        info = HirPipeline(None, "scan", "", is_final=pipe.sink is None)

        def body(slots: list[int]) -> None:
            self._gen_operators(fb, pipe.operators, slots, pipe, info)

        self._gen_source(fb, pipe.source, info, body)
        fb.emit("ret")
        info.function = fb.finish()
        return info

    def _gen_source(self, fb, source, info, body) -> None:
        if isinstance(source, P.IndexSeek):
            info.source_kind = "indexseek"
            info.source_name = source.binding
            info.seek = (source.key_column, source.low, source.high,
                         source.low_strict, source.high_strict)
            rowid_col = self.column_id(
                source.binding, f"__index_rowids__{source.key_column}"
            )
            pos = fb.reg()
            fb.emit("mov", pos, 0)  # pos = begin (parameter register 0)
            with fb.loop():
                done = fb.binop(">=", pos, 1)
                with fb.if_(done):
                    fb.emit("break", 0)
                rowid = fb.reg()
                fb.emit("loadcol", rowid, rowid_col, pos)
                slots = []
                for col in source.output:
                    dst = fb.reg()
                    col_id = self.column_id(*col.ref)
                    fb.emit("loadcol", dst, col_id, rowid)
                    slots.append(dst)
                body(slots)
                one = fb.const(1)
                fb.emit("bin", "+", pos, pos, one, "i64")
            return
        if isinstance(source, P.SeqScan):
            info.source_kind = "scan"
            info.source_name = source.binding
            row = fb.reg()
            fb.emit("mov", row, 0)  # row = begin (parameter register 0)
            with fb.loop():
                done = fb.binop(">=", row, 1)
                with fb.if_(done):
                    fb.emit("break", 0)
                slots = []
                for col in source.output:
                    dst = fb.reg()
                    col_id = self.column_id(*col.ref)
                    fb.emit("loadcol", dst, col_id, row)
                    slots.append(dst)
                body(slots)
                one = fb.const(1)
                fb.emit("bin", "+", row, row, one, "i64")
            return
        if isinstance(source, (P.HashGroupBy, P.ScalarAggregate, P.Sort)):
            kind, fetch = {
                P.HashGroupBy: ("group", "group_entries"),
                P.ScalarAggregate: ("scalar", "agg_entries"),
                P.Sort: ("sort", "sort_rows"),
            }[type(source)]
            sid = self._structure_ids[id(source)]
            info.source_kind = kind
            info.source_name = str(sid)
            if kind == "sort":
                info.sort_before = sid
            sid_reg = fb.const(sid)
            entries = fb.call(fetch, [sid_reg])
            index = fb.reg()
            fb.emit("mov", index, 0)  # index = begin (parameter register 0)
            with fb.loop():
                done = fb.binop(">=", index, 1)
                with fb.if_(done):
                    fb.emit("break", 0)
                row = fb.reg()
                fb.emit("getitem", row, entries, index)
                slots = []
                for j in range(len(source.output)):
                    dst = fb.reg()
                    jr = fb.const(j)
                    fb.emit("getitem", dst, row, jr)
                    slots.append(dst)
                body(slots)
                one = fb.const(1)
                fb.emit("bin", "+", index, index, one, "i64")
            return
        raise PlanError(
            f"hyper cannot source from {type(source).__name__}"
        )

    def _gen_operators(self, fb, ops, slots, pipe, info) -> None:
        if not ops:
            self._gen_sink(fb, pipe.sink, slots, info)
            return
        op, rest = ops[0], ops[1:]

        def continue_with(next_slots):
            self._gen_operators(fb, rest, next_slots, pipe, info)

        if isinstance(op, P.Filter):
            cond = _ExprGen(fb, slots).gen(op.predicate)
            with fb.if_(cond):
                continue_with(slots)
            return
        if isinstance(op, P.Project):
            gen = _ExprGen(fb, slots)
            continue_with([gen.gen(e) for e in op.exprs])
            return
        if isinstance(op, P.HashJoin):
            self._gen_probe(fb, op, slots, continue_with)
            return
        if isinstance(op, P.NestedLoopJoin):
            self._gen_nlj_probe(fb, op, slots, continue_with)
            return
        if isinstance(op, P.Limit):
            lid = self.structure_id(op, "limit", {
                "offset": op.offset, "limit": op.limit,
            })
            info.limit_id = lid
            info.limit_total = ((op.limit or 0) + op.offset
                                if op.limit is not None else None)
            lid_reg = fb.const(lid)
            keep = fb.call("limit_admit", [lid_reg])
            with fb.if_(keep):
                continue_with(slots)
            return
        raise PlanError(f"hyper cannot stream {type(op).__name__}")

    def _gen_probe(self, fb, op: P.HashJoin, slots, continue_with) -> None:
        sid = self.structure_id(op, "join", {
            "n_keys": len(op.build_keys),
            "n_cols": len(op.build.output),
            "estimate": int(op.build.estimated_rows),
        })
        gen = _ExprGen(fb, slots)
        key_regs = [gen.gen(k) for k in op.probe_keys]
        sid_reg = fb.const(sid)
        matches = fb.call("join_probe", [sid_reg] + key_regs)
        count = fb.reg()
        fb.emit("len", count, matches)
        index = fb.reg()
        fb.emit("const", index, 0)
        with fb.loop():
            done = fb.binop(">=", index, count)
            with fb.if_(done):
                fb.emit("break", 0)
            row = fb.reg()
            fb.emit("getitem", row, matches, index)
            build_slots = []
            for j in range(len(op.build.output)):
                dst = fb.reg()
                jr = fb.const(j)
                fb.emit("getitem", dst, row, jr)
                build_slots.append(dst)
            combined = build_slots + slots
            if op.residual is not None:
                cond = _ExprGen(fb, combined).gen(op.residual)
                with fb.if_(cond):
                    continue_with(combined)
            else:
                continue_with(combined)
            one = fb.const(1)
            fb.emit("bin", "+", index, index, one, "i64")

    def _gen_nlj_probe(self, fb, op: P.NestedLoopJoin, slots,
                       continue_with) -> None:
        sid = self.structure_id(op, "nlj", {
            "n_cols": len(op.left.output),
        })
        sid_reg = fb.const(sid)
        rows = fb.call("nlj_rows", [sid_reg])
        count = fb.reg()
        fb.emit("len", count, rows)
        index = fb.reg()
        fb.emit("const", index, 0)
        with fb.loop():
            done = fb.binop(">=", index, count)
            with fb.if_(done):
                fb.emit("break", 0)
            row = fb.reg()
            fb.emit("getitem", row, rows, index)
            left_slots = []
            for j in range(len(op.left.output)):
                dst = fb.reg()
                jr = fb.const(j)
                fb.emit("getitem", dst, row, jr)
                left_slots.append(dst)
            combined = left_slots + slots
            if op.predicate is not None:
                cond = _ExprGen(fb, combined).gen(op.predicate)
                with fb.if_(cond):
                    continue_with(combined)
            else:
                continue_with(combined)
            one = fb.const(1)
            fb.emit("bin", "+", index, index, one, "i64")

    # -- sinks ----------------------------------------------------------------

    def _gen_sink(self, fb, sink, slots, info) -> None:
        if sink is None:
            fb.emit("result", list(slots))
            return
        gen = _ExprGen(fb, slots)
        if isinstance(sink, P.HashJoin):
            sid = self.structure_id(sink, "join", {
                "n_keys": len(sink.build_keys),
                "n_cols": len(sink.build.output),
                "estimate": int(sink.build.estimated_rows),
            })
            key_regs = [gen.gen(k) for k in sink.build_keys]
            sid_reg = fb.const(sid)
            fb.call("join_insert", [sid_reg] + key_regs + list(slots),
                    want_result=False)
            return
        if isinstance(sink, P.HashGroupBy):
            sid = self.structure_id(sink, "group", {
                "aggregates": [(a.kind, str(a.ty)) for a in sink.aggregates],
                "estimate": int(sink.estimated_rows),
            })
            key_regs = [gen.gen(k) for k in sink.keys]
            sid_reg = fb.const(sid)
            entry = fb.call("group_upsert", [sid_reg] + key_regs)
            self._gen_agg_updates(fb, sink.aggregates, entry, slots)
            return
        if isinstance(sink, P.ScalarAggregate):
            sid = self.structure_id(sink, "scalar", {
                "aggregates": [(a.kind, str(a.ty)) for a in sink.aggregates],
            })
            sid_reg = fb.const(sid)
            entry = fb.call("agg_state", [sid_reg])
            self._gen_agg_updates(fb, sink.aggregates, entry, slots)
            return
        if isinstance(sink, P.Sort):
            sid = self.structure_id(sink, "sort", {
                "descending": [d for _, d in sink.order],
                "n_cols": len(sink.child.output),
            })
            key_regs = [gen.gen(k) for k, _ in sink.order]
            sid_reg = fb.const(sid)
            fb.call("sort_append", [sid_reg] + list(slots) + key_regs,
                    want_result=False)
            return
        if isinstance(sink, P.NestedLoopJoin):
            sid = self.structure_id(sink, "nlj", {
                "n_cols": len(sink.left.output),
            })
            sid_reg = fb.const(sid)
            fb.call("nlj_append", [sid_reg] + list(slots),
                    want_result=False)
            return
        raise PlanError(f"hyper cannot sink into {type(sink).__name__}")

    def _gen_agg_updates(self, fb, aggregates, entry, slots) -> None:
        """Aggregate maintenance compiles inline (only the table access
        went through the library, as in HyPer)."""
        gen = _ExprGen(fb, slots)
        offset = 0
        for agg in aggregates:
            if agg.kind == "COUNT":
                cur = fb.reg()
                idx = fb.const(offset)
                fb.emit("getitem", cur, entry, idx)
                one = fb.const(1)
                nxt = fb.binop("+", cur, one)
                fb.emit("setitem", entry, offset, nxt)
                offset += 1
                continue
            value = gen.gen(agg.arg)
            if agg.kind == "AVG":
                cur = fb.reg()
                idx = fb.const(offset)
                fb.emit("getitem", cur, entry, idx)
                nxt = fb.binop("+", cur, value, "f64")
                fb.emit("setitem", entry, offset, nxt)
                cnt = fb.reg()
                idx2 = fb.const(offset + 1)
                fb.emit("getitem", cnt, entry, idx2)
                one = fb.const(1)
                nxt2 = fb.binop("+", cnt, one)
                fb.emit("setitem", entry, offset + 1, nxt2)
                offset += 2
                continue
            cur = fb.reg()
            idx = fb.const(offset)
            fb.emit("getitem", cur, entry, idx)
            if agg.kind == "SUM":
                ty = "f64" if agg.ty.is_floating else "i64"
                nxt = fb.binop("+", cur, value, ty)
                fb.emit("setitem", entry, offset, nxt)
            else:
                cmp = fb.binop("<" if agg.kind == "MIN" else ">",
                               value, cur)
                with fb.if_(cmp):
                    fb.emit("setitem", entry, offset, value)
            offset += 1


def generate_hir(plan: P.PhysicalOperator) -> HirProgram:
    """Physical plan -> HIR program (the QEP -> LLVM-IR translation)."""
    return _HirGenerator().generate(plan)
