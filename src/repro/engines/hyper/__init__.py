"""The HyPer baseline: adaptive compilation with an LLVM-like pipeline.

Implements the first column of the paper's Figure 2a — HyPer with
adaptive execution [Kohn et al.]:

* the QEP is translated to HIR (the LLVM-IR role),
* path **H1** generates bytecode and starts *interpreting* immediately,
* path **H3** compiles the full ``O2`` optimization pipeline; in HyPer
  this runs on a background thread while interpretation makes progress —
  here it runs up front but its wall-clock cost is charged as overlap:
  execution interprets morsels until the measured O2 compile time has
  elapsed, then **switches morsel-wise** to optimized code,
* path **H2** (direct ``O0`` compilation) is available as a mode.

Complex operators (hash tables, sorting) call into the **pre-compiled
runtime library** through a type-agnostic interface — one call per
insert/probe and one *comparison callback per sort comparison* — the
costs the paper contrasts with mutable's ad-hoc generated code
(Listing 3, Section 5.1).
"""

from __future__ import annotations

import functools
import time

from repro.catalog.catalog import Catalog
from repro.costmodel import Profile
from repro.engines.base import ExecutionResult, QueryEngine, Stopwatch, Timings
from repro.engines.hyper.compile import compile_o0, compile_o2
from repro.engines.hyper.hir import BytecodeInterpreter, flatten_to_bytecode
from repro.engines.hyper.irgen import generate_hir
from repro.errors import EngineError
from repro.observability.trace import trace_span
from repro.plan import physical as P

__all__ = ["HyperEngine", "HyperRuntimeLibrary"]

_MORSEL = 16384


class HyperRuntimeLibrary:
    """The pre-compiled, type-agnostic runtime library.

    Each structure is identified by an integer id; keys and payloads
    cross the interface as opaque values — exactly the design whose
    per-element call overhead Section 5.1 analyzes.
    """

    def __init__(self, structures: list[tuple[str, dict]],
                 profile: Profile | None):
        self.profile = profile
        self.configs = structures
        self.state: list = [None] * len(structures)
        self._comparison_calls = 0
        self._entry_cache: dict[int, list] = {}

    def _ensure(self, sid: int):
        if self.state[sid] is None:
            kind, config = self.configs[sid]
            if kind == "join":
                self.state[sid] = {}
            elif kind == "group":
                self.state[sid] = {}
            elif kind == "scalar":
                self.state[sid] = self._new_agg_entry(config["aggregates"])
            elif kind == "sort" or kind == "nlj":
                self.state[sid] = []
            elif kind == "limit":
                self.state[sid] = [0]
        return self.state[sid]

    @staticmethod
    def _new_agg_entry(aggregates) -> list:
        entry: list = []
        for kind, ty in aggregates:
            if kind == "COUNT":
                entry.append(0)
            elif kind == "SUM":
                entry.append(0.0 if "DOUBLE" in ty else 0)
            elif kind == "AVG":
                entry += [0.0, 0]
            elif kind == "MIN":
                if "DOUBLE" in ty:
                    entry.append(float("inf"))
                elif "INT32" in ty or "DATE" in ty:
                    entry.append(2**31 - 1)
                else:
                    entry.append(2**63 - 1)
            else:  # MAX
                if "DOUBLE" in ty:
                    entry.append(float("-inf"))
                elif "INT32" in ty or "DATE" in ty:
                    entry.append(-(2**31))
                else:
                    entry.append(-(2**63))
        return entry

    # -- joins --------------------------------------------------------------

    def join_insert(self, sid, *args):
        kind, config = self.configs[sid]
        n_keys = config["n_keys"]
        table = self._ensure(sid)
        key = args[:n_keys] if n_keys > 1 else args[0]
        table.setdefault(key, []).append(args[n_keys:])
        if self.profile is not None:
            self.profile.memory_bulk(
                f"hyper-join:{sid}", accesses=2, sequential=0,
                footprint=max(len(table) * 48, 1),
            )  # bucket + entry: two lines per insert

    _EMPTY: list = []

    def join_probe(self, sid, *keys):
        table = self._ensure(sid)
        key = keys if len(keys) > 1 else keys[0]
        if self.profile is not None:
            self.profile.memory_bulk(
                f"hyper-probe:{sid}", accesses=2, sequential=0,
                footprint=max(len(table) * 48, 1),
            )  # bucket + entry: two lines per probe
        return table.get(key, self._EMPTY)

    # -- grouping ------------------------------------------------------------

    def group_upsert(self, sid, *keys):
        kind, config = self.configs[sid]
        table = self._ensure(sid)
        key = keys if len(keys) > 1 else keys[0]
        entry = table.get(key)
        if entry is None:
            entry = table[key] = self._new_agg_entry(config["aggregates"])
        if self.profile is not None:
            self.profile.memory_bulk(
                f"hyper-group:{sid}", accesses=2, sequential=0,
                footprint=max(len(table) * 64, 1),
            )  # bucket + entry: two lines per upsert
        return entry

    def group_entries(self, sid):
        cached = self._entry_cache.get(sid)
        if cached is not None:
            return cached
        kind, config = self.configs[sid]
        table = self._ensure(sid)
        rows = []
        for key, entry in table.items():
            key_part = key if isinstance(key, tuple) else (key,)
            rows.append(key_part + tuple(
                self._finalize(entry, config["aggregates"])
            ))
        self._entry_cache[sid] = rows
        return rows

    # -- scalar aggregation --------------------------------------------------------

    def agg_state(self, sid):
        return self._ensure(sid)

    def agg_entries(self, sid):
        kind, config = self.configs[sid]
        entry = self._ensure(sid)
        return [tuple(self._finalize(entry, config["aggregates"]))]

    @staticmethod
    def _finalize(entry: list, aggregates) -> list:
        out = []
        offset = 0
        for kind, ty in aggregates:
            if kind == "AVG":
                total, count = entry[offset], entry[offset + 1]
                out.append(total / count if count else 0.0)
                offset += 2
            else:
                value = entry[offset]
                out.append(0 if value is None else value)
                offset += 1
        return out

    # -- sorting (comparison callbacks!) ----------------------------------------------

    def sort_append(self, sid, *args):
        self._ensure(sid).append(args)

    def sort_rows(self, sid):
        cached = self._entry_cache.get(sid)
        if cached is not None:
            return cached
        kind, config = self.configs[sid]
        rows = self._ensure(sid)
        n_cols = config["n_cols"]
        descending = config["descending"]

        def comparator(a, b) -> int:
            # every comparison is a callback through the type-agnostic
            # interface: Theta(n log n) calls, the paper's Section 4.3
            self._comparison_calls += 1
            if self.profile is not None:
                self.profile.indirect_calls += 1
                # the comparator body plus the argument spills through
                # memory the type-agnostic interface forces (Section 4.3:
                # values cannot be passed through registers)
                self.profile.instructions += 12
            for j, desc in enumerate(descending):
                ka, kb = a[n_cols + j], b[n_cols + j]
                if ka == kb:
                    continue
                less = -1 if ka < kb else 1
                return -less if desc else less
            return 0

        rows.sort(key=functools.cmp_to_key(comparator))
        if self.profile is not None and rows:
            # a pre-compiled sort moves elements with a generic memcpy
            # whose size is a runtime value (paper Section 4.3)
            import math

            n = len(rows)
            self.profile.add("sort_moves", n * math.log2(max(n, 2)))
        out = [row[:n_cols] for row in rows]
        self._entry_cache[sid] = out
        return out

    # -- nested loops / limits -------------------------------------------------------------

    def nlj_append(self, sid, *row):
        self._ensure(sid).append(row)

    def nlj_rows(self, sid):
        return self._ensure(sid)

    def limit_admit(self, sid) -> int:
        kind, config = self.configs[sid]
        counter = self._ensure(sid)
        seen = counter[0]
        counter[0] = seen + 1
        if seen < config["offset"]:
            return 0
        if config["limit"] is not None and \
                seen >= config["offset"] + config["limit"]:
            return 0
        return 1

    def limit_seen(self, sid) -> int:
        return self._ensure(sid)[0]


class HyperEngine(QueryEngine):
    """Adaptive interpretation + compilation (the HyPer baseline).

    Args:
        mode: ``"adaptive"`` (interpret, switch to O2 when its compile
            time has been amortized — Kohn et al.), ``"umbra"`` (start
            from fast direct O0 code — Umbra's Flying Start — and switch
            to O2, the third column of the paper's Figure 2a; Umbra has
            no interpreter), ``"interp"``, ``"o0"``, or ``"o2"``.
    """

    name = "hyper"

    def __init__(self, mode: str = "adaptive", morsel_size: int = _MORSEL):
        self.mode = mode
        self.morsel_size = morsel_size

    def execute(self, plan: P.PhysicalOperator, catalog: Catalog,
                profile: Profile | None = None,
                trace=None) -> ExecutionResult:
        if isinstance(plan, P.EmptyResult):
            return self.execute_folded(plan, profile, trace)
        timings = Timings()
        with Stopwatch(timings, "translation"), \
                trace_span(trace, "translation", engine=self.name):
            program = generate_hir(plan)

        columns = []
        row_counts: dict[str, int] = {}
        with Stopwatch(timings, "translation"):
            for scan in _scans(plan):
                row_counts[scan.binding] = catalog.get(
                    scan.table_name
                ).row_count
            for binding, name in program.columns:
                table = self._table_for(plan, catalog, binding)
                if name.startswith("__index_rowids__"):
                    key_column = name[len("__index_rowids__"):]
                    columns.append(
                        table.index_on(key_column).row_ids.tolist()
                    )
                    continue
                columns.append(table.column(name).values.tolist())
                if profile is not None:
                    col = table.column(name)
                    profile.memory_bulk(
                        f"scan:{binding}:{name}",
                        accesses=len(col), sequential=len(col),
                        footprint=max(col.nbytes, 1),
                    )

        library = HyperRuntimeLibrary(program.structures, profile)
        results: list[tuple] = []
        instrumented = profile is not None

        bytecodes = {}
        if self.mode in ("adaptive", "interp"):
            with Stopwatch(timings, "compile_bytecode"):
                bytecodes = {
                    p.function.name: flatten_to_bytecode(p.function)
                    for p in program.pipelines
                }
        o0_fns = {}
        if self.mode in ("o0", "umbra"):
            with Stopwatch(timings, "compile_o0"):
                for p in program.pipelines:
                    compiled = compile_o0(p.function, instrumented)
                    o0_fns[p.function.name] = compiled.bind(
                        columns, library, results, profile
                    )
        o2_fns = {}
        o2_seconds = 0.0
        if self.mode in ("adaptive", "o2", "umbra"):
            start = time.perf_counter()
            for p in program.pipelines:
                compiled = compile_o2(p.function, instrumented)
                o2_fns[p.function.name] = compiled.bind(
                    columns, library, results, profile
                )
            o2_seconds = time.perf_counter() - start
            timings.add("compile_o2", o2_seconds)

        interpreter = BytecodeInterpreter(columns, library, results, profile)

        with Stopwatch(timings, "execution"), \
                trace_span(trace, "execution", engine=self.name):
            switched = 0
            for info in program.pipelines:
                switched += self._run_pipeline(
                    info, library, interpreter, bytecodes,
                    o0_fns, o2_fns, o2_seconds, row_counts,
                    plan, catalog,
                )
        if profile is not None:
            profile.add("adaptive_switches", switched)

        result = self.finalize_rows(plan, results)
        result.engine = self.name
        result.timings = timings
        result.profile = profile
        result.trace = trace
        return result

    def _run_pipeline(self, info, library, interpreter, bytecodes,
                      o0_fns, o2_fns, o2_seconds: float,
                      row_counts: dict, plan, catalog) -> int:
        if info.source_kind == "indexseek":
            table = self._table_for(plan, catalog, info.source_name)
            key, low, high, lstrict, hstrict = info.seek
            begin, total = table.index_on(key).positions(
                low, high, lstrict, hstrict
            )
        else:
            total = self._source_rows(info, library, row_counts)
            begin = 0
        name = info.function.name
        switched = 0
        exec_start = time.perf_counter()
        while begin < total:
            end = min(begin + self.morsel_size, total)
            if self.mode == "o0":
                o0_fns[name](begin, end)
            elif self.mode == "o2":
                o2_fns[name](begin, end)
            elif self.mode == "interp":
                interpreter.run(bytecodes[name],
                                info.function.n_registers, (begin, end))
            elif self.mode == "umbra":
                # Flying Start: run O0 code until the O2 compile has
                # amortized, then switch morsel-wise (Kersten et al.)
                elapsed = time.perf_counter() - exec_start
                if elapsed >= o2_seconds:
                    if switched == 0:
                        switched = 1
                    o2_fns[name](begin, end)
                else:
                    o0_fns[name](begin, end)
            else:  # adaptive: interpret until O2's compile time amortizes
                elapsed = time.perf_counter() - exec_start
                if elapsed >= o2_seconds:
                    if switched == 0:
                        switched = 1
                    o2_fns[name](begin, end)
                else:
                    interpreter.run(bytecodes[name],
                                    info.function.n_registers, (begin, end))
            if info.is_final and info.limit_total is not None:
                if library.limit_seen(info.limit_id) >= info.limit_total:
                    break
            begin = end
        return switched

    @staticmethod
    def _source_rows(info, library, row_counts: dict) -> int:
        if info.source_kind == "scan":
            return row_counts[info.source_name]
        if info.source_kind == "scalar":
            return 1
        sid = int(info.source_name)
        if info.source_kind == "group":
            return len(library.group_entries(sid))
        return len(library.sort_rows(sid))

    def _table_for(self, plan, catalog, binding: str):
        for scan in _scans(plan):
            if scan.binding == binding:
                return catalog.get(scan.table_name)
        raise EngineError(f"unknown binding {binding!r}")


def _scans(plan):
    if isinstance(plan, (P.SeqScan, P.IndexSeek)):
        yield plan
    for child in plan.children:
        yield from _scans(child)
