"""The paper's architecture: QEP -> WebAssembly -> adaptive engine.

This is mutable's execution path (Figure 4):

1. the physical plan is dissected into pipelines and **translated to
   WebAssembly** with ad-hoc generated library code
   (:mod:`repro.backend`),
2. the host builds a **rewired address space** (Section 6.1): table
   columns are aliased zero-copy into the module's 32-bit memory, plus a
   constants region, the result window, and a growable heap,
3. the module is handed to the **two-tier engine** (Liftoff + TurboFan
   with adaptive tier-up — our V8), and
4. execution is **morsel-wise**: the host repeatedly invokes
   ``pipeline_i(begin, end)``, giving the engine call boundaries at
   which it transparently swaps in optimized code.

Results come back through the rewired result window: the generated code
packs rows and bumps ``result_count``; the host drains after each morsel
and inside the ``flush_results`` callback (Section 6.2).
"""

from __future__ import annotations

import struct
import time
from dataclasses import dataclass, field

from repro.backend.codegen import CompiledQuery, QueryCompiler
from repro.backend.context import (
    CONST_REGION_SIZE,
    MORSEL_SIZE,
    RESULT_REGION_SIZE,
    MemoryPlan,
)
from repro.catalog.catalog import Catalog
from repro.costmodel import Profile
from repro.engines.base import ExecutionResult, QueryEngine, Stopwatch, Timings
from repro.engines.eval import sql_like_regex
from repro.errors import Trap
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_event, trace_span
from repro.plan import physical as P
from repro.plan.pipeline import dissect_into_pipelines
from repro.robustness.governor import ResourceGovernor
from repro.storage.rewiring import WASM_PAGE_SIZE, AddressSpace
from repro.wasm.runtime import Engine, EngineConfig, LinearMemory

__all__ = ["WasmEngine", "WasmExecutable"]

_HEAP_SLACK = 8 * 1024 * 1024


@dataclass
class WasmExecutable:
    """A compiled, instantiated query, reusable across executions.

    Holds everything the morsel driver needs — the compiled module and
    pipeline metadata, the rewired address space, the engine instance
    with its tier state — so a plan cache can skip translation,
    compilation *and* instantiation on a hit.  One executable must not
    run concurrently with itself (it owns a single address space and
    parameter slots); callers serialize executions per executable.
    """

    compiled: CompiledQuery
    space: AddressSpace
    engine: Engine
    memory: LinearMemory
    instance: object = None       # set right after instantiation
    chunked: dict = field(default_factory=dict)  # binding -> window rows
    executions: int = 0
    rows: list = field(default_factory=list)     # drained result rows


def _scans_of(plan: P.PhysicalOperator):
    if isinstance(plan, (P.SeqScan, P.IndexSeek)):
        yield plan
    for child in plan.children:
        yield from _scans_of(child)


def _breakers_of(plan: P.PhysicalOperator):
    if isinstance(plan, (P.HashJoin, P.HashGroupBy, P.Sort,
                         P.NestedLoopJoin)):
        yield plan
    for child in plan.children:
        yield from _breakers_of(child)


class WasmEngine(QueryEngine):
    """mutable: compile to Wasm, execute adaptively (the paper's system).

    Args:
        mode: engine tiering mode — ``"adaptive"`` (default, the paper's
            architecture), ``"liftoff"``, ``"turbofan"`` (the enforced-
            optimization setting of Section 8.2), or ``"interpreter"``.
        tier_up_threshold: morsel calls before a pipeline is re-optimized.
        short_circuit: compile conjunctions with short-circuit branches
            (mutable's default is off; used by the ablation benchmark).
        morsel_size: rows per pipeline invocation.
        timeout_seconds: per-query wall-clock budget, checked at every
            morsel boundary; ``None`` for unlimited.
        max_memory_pages: per-query cap on 64 KiB pages in the rewired
            address space (tables + heap + results); ``None`` unlimited.
        lint: run the static-analysis linter over every generated module —
            ``"off"`` (default), ``"warn"``, or ``"strict"`` (raise
            :class:`~repro.errors.LintError` on any diagnostic).
        elide_bounds_checks: let TurboFan drop per-access address masks
            the interval analysis proves redundant (default on).
        fault_injector: a :class:`repro.robustness.FaultInjector`
            threaded through the engine's named fault sites (testing).
    """

    name = "wasm"

    def __init__(self, mode: str = "adaptive", tier_up_threshold: int = 2,
                 short_circuit: bool = False, morsel_size: int = MORSEL_SIZE,
                 inline_adhoc: bool = True, predication: bool = False,
                 table_window_rows: int | None = None,
                 timeout_seconds: float | None = None,
                 max_memory_pages: int | None = None,
                 lint: str = "off", elide_bounds_checks: bool = True,
                 fault_injector=None):
        self.mode = mode
        self.tier_up_threshold = tier_up_threshold
        self.short_circuit = short_circuit
        self.morsel_size = morsel_size
        self.inline_adhoc = inline_adhoc
        self.predication = predication
        self.timeout_seconds = timeout_seconds
        self.max_memory_pages = max_memory_pages
        self.lint = lint
        self.elide_bounds_checks = elide_bounds_checks
        self.fault_injector = fault_injector
        self.last_tier_stats = None  # TierStats of the most recent execute()
        # pipeline index -> backend operator-shape descriptor of the most
        # recently prepared query (EXPLAIN ANALYZE surfaces these)
        self.last_pipeline_shapes: dict[int, str] = {}
        # Optional cooperative-scheduling callback, invoked once per
        # morsel before the pipeline function runs.  The query service's
        # fair scheduler parks threads here so concurrent queries
        # round-robin at morsel boundaries.
        self.morsel_hook = None
        # Optional service-level resilience hooks, set per execution by
        # the query service: a shared Deadline (admission wait debits
        # the same budget the governor enforces) and a CancelToken
        # checked at every morsel boundary, so CANCEL from another
        # session aborts within one morsel.
        self.deadline = None
        self.cancel_token = None
        # Figure 5: tables larger than this window (in rows) are not
        # mapped whole; the host re-wires chunk after chunk into a fixed
        # window while the pipeline runs (rewire_next_chunk).  None maps
        # every table completely (possible whenever it fits in 4 GiB).
        self.table_window_rows = table_window_rows
        # Parallel workers (repro.parallel): when set to a
        # ``(binding, begin, end)`` triple, pipelines scanning that
        # binding execute only the given row range — the worker's
        # partition of the table.  All other pipelines are unaffected.
        self.partition = None
        # When true, execute_prepared skips the from_storage conversion
        # and returns storage-representation rows; the parallel driver
        # merges partition results at the storage level and finalizes
        # exactly once (empty-partition aggregate sentinels must be
        # combined away, never converted).
        self.raw_rows = False
        # Morsels driven by the most recent execute_prepared, summed
        # over all pipelines (per-worker EXPLAIN ANALYZE accounting).
        self.last_morsels_total = 0
        # Per-pipeline measurements of the most recent execute_prepared
        # — dicts of {index, function, rows_in, rows_out, morsels,
        # seconds}.  Populated unconditionally (no trace required): the
        # feedback store harvests these to compute Q-Errors and route
        # future executions.
        self.last_pipeline_stats: list[dict] = []
        # Per-pipeline-function tier ladders chosen by the feedback
        # router (export name -> ladder tuple), forwarded into
        # EngineConfig.tier_plan at prepare time.  None keeps the
        # mode's uniform ladder.
        self.tier_plan: dict | None = None

    # -- compilation -----------------------------------------------------------

    def compile_query(self, plan: P.PhysicalOperator, catalog: Catalog,
                      timings: Timings,
                      governor: ResourceGovernor | None = None,
                      trace=None,
                      ) -> tuple[CompiledQuery, AddressSpace]:
        with Stopwatch(timings, "translation"), \
                trace_span(trace, "translation", engine=self.name):
            space, memory_plan = self._build_address_space(
                plan, catalog, governor
            )
            compiler = QueryCompiler(memory_plan,
                                     short_circuit=self.short_circuit,
                                     inline_adhoc=self.inline_adhoc,
                                     predication=self.predication)
            compiled = compiler.compile(plan, trace=trace)
        return compiled, space

    def _build_address_space(self, plan: P.PhysicalOperator,
                             catalog: Catalog,
                             governor: ResourceGovernor | None = None):
        """Rewire everything the query needs into one 32-bit space."""
        space = AddressSpace()
        space.governor = governor  # every page reservation is budgeted
        consts_base = space.alloc("consts", CONST_REGION_SIZE)

        column_addresses: dict[tuple[str, str], int] = {}
        row_counts: dict[str, int] = {}
        extent_rows: dict[str, int] = {}
        value_ranges: dict[tuple[str, str], tuple[int, int]] = {}
        analysis = getattr(plan, "analysis", None)
        scan_hints = getattr(analysis, "scan_facts", None) or {}
        self._chunked: dict[str, int] = {}  # binding -> window rows
        for scan in _scans_of(plan):
            table = catalog.get(scan.table_name)
            row_counts[scan.binding] = table.row_count
            hints = scan_hints.get(scan.binding)
            for name in scan.columns:
                # host-guaranteed bounds on every stored value (from the
                # plan analysis when present, else straight from the
                # catalog statistics) — integer storage domains only,
                # which is what the Wasm interval analysis can consume
                if hints is not None and name in hints:
                    value_ranges[(scan.binding, name)] = hints[name]
                    continue
                cstat = table.statistics.column(name)
                if (isinstance(cstat.minimum, int)
                        and isinstance(cstat.maximum, int)
                        and not isinstance(cstat.minimum, bool)):
                    value_ranges[(scan.binding, name)] = (
                        cstat.minimum, cstat.maximum
                    )
            if isinstance(scan, P.IndexSeek):
                # the index permutation holds row ids into this table:
                # provably within [0, row_count)
                pseudo = f"__index_rowids__{scan.key_column}"
                value_ranges[(scan.binding, pseudo)] = (
                    0, max(table.row_count - 1, 0)
                )
            window = self.table_window_rows
            chunked = (window is not None and table.row_count > window
                       and isinstance(scan, P.SeqScan))
            if chunked:
                self._chunked[scan.binding] = window
            # one pipeline invocation never sees a row index past the
            # mapped extent: the chunk window when chunked, else the table
            extent_rows[scan.binding] = window if chunked \
                else table.row_count
            for name in scan.columns:
                column = table.column(name)
                if chunked:
                    # map only the window; later chunks are re-wired in
                    buffer = memoryview(column.values[:window]).cast("B")
                elif len(column):
                    buffer = column.buffer()
                else:
                    buffer = bytearray(8)
                addr = space.map_buffer(
                    f"col:{scan.binding}.{name}", buffer
                )
                column_addresses[(scan.binding, name)] = addr
            if isinstance(scan, P.IndexSeek):
                # rewire the index permutation into the module as well —
                # the "non-consecutive structure" the paper deferred
                index = table.index_on(scan.key_column)
                buffer = index.row_id_buffer() if len(index) \
                    else bytearray(8)
                addr = space.map_buffer(
                    f"idx:{scan.binding}.{scan.key_column}", buffer
                )
                pseudo = f"__index_rowids__{scan.key_column}"
                column_addresses[(scan.binding, pseudo)] = addr

        result_base = space.alloc("result", RESULT_REGION_SIZE)

        heap_bytes = _HEAP_SLACK
        for breaker in _breakers_of(plan):
            rows = int(breaker.estimated_rows) + 64
            width = sum(c.ty.size for c in breaker.output) + 32
            heap_bytes += rows * width * 2
        heap_base = space.alloc("heap", heap_bytes)
        heap_end = heap_base + (
            -(-heap_bytes // WASM_PAGE_SIZE) * WASM_PAGE_SIZE
        )

        memory_plan = MemoryPlan(
            consts_base=consts_base,
            result_base=result_base,
            heap_base=heap_base,
            heap_end=heap_end,
            column_addresses=column_addresses,
            row_counts=row_counts,
            extent_rows=extent_rows,
            value_ranges=value_ranges,
        )
        return space, memory_plan

    # -- execution -----------------------------------------------------------------

    def execute(self, plan: P.PhysicalOperator, catalog: Catalog,
                profile: Profile | None = None,
                trace=None) -> ExecutionResult:
        if isinstance(plan, P.EmptyResult):
            return self.execute_folded(plan, profile, trace)
        timings = Timings()
        governor = ResourceGovernor(self.timeout_seconds,
                                    self.max_memory_pages,
                                    deadline=self.deadline).start()
        governor.trace = trace
        if self.fault_injector is not None:
            self.fault_injector.trace = trace
        executable = self.prepare_executable(
            plan, catalog, governor=governor, trace=trace,
            profile=profile, timings=timings,
        )
        return self.execute_prepared(
            executable, plan, catalog, profile=profile, trace=trace,
            governor=governor, timings=timings,
        )

    def prepare_executable(self, plan: P.PhysicalOperator, catalog: Catalog,
                           governor: ResourceGovernor | None = None,
                           trace=None, profile: Profile | None = None,
                           timings: Timings | None = None) -> WasmExecutable:
        """Translate, compile, and instantiate — everything up to (but
        not including) running the pipelines.  The returned executable
        can be executed repeatedly via :meth:`execute_prepared`; the plan
        cache stores exactly this object.  Plans folded to
        :class:`~repro.plan.physical.EmptyResult` have nothing to
        compile and return ``None`` — the cache stores the plan alone."""
        if isinstance(plan, P.EmptyResult):
            return None
        timings = timings if timings is not None else Timings()
        if governor is not None:
            governor.phase = "translation"
        compiled, space = self.compile_query(plan, catalog, timings,
                                             governor, trace)
        self.last_pipeline_shapes = {
            info.index: info.shape for info in compiled.pipelines
        }
        if governor is not None:
            governor.check()
            governor.phase = "compile"
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled(phase="translation")
        engine = Engine(EngineConfig(
            mode=self.mode, tier_up_threshold=self.tier_up_threshold,
            lint=self.lint, elide_bounds_checks=self.elide_bounds_checks,
            fault_injector=self.fault_injector,
            tier_plan=self.tier_plan,
            trace=trace,
        ))
        memory = LinearMemory(space)
        memory.fault_injector = self.fault_injector
        executable = WasmExecutable(
            compiled=compiled, space=space, engine=engine, memory=memory,
            chunked=dict(self._chunked),
        )

        def flush_results():
            self._drain(executable.instance, compiled, executable.rows)

        def like_generic(addr: int, width: int, pattern_id: int) -> int:
            raw = executable.instance.memory.read_bytes(addr, width)
            text = raw.rstrip(b"\x00").decode("utf-8", "replace")
            regex = sql_like_regex(compiled.generic_patterns[pattern_id])
            return 1 if regex.match(text) else 0

        imports = {
            ("env", "flush_results"): flush_results,
            ("env", "like_generic"): like_generic,
        }
        instance = engine.instantiate(
            compiled.module, imports=imports, memory=memory, profile=profile
        )
        executable.instance = instance
        self.last_tier_stats = instance.stats
        # instantiation time counts as compilation (stencil/Liftoff/TurboFan)
        timings.add("compile_stencil", instance.stats.stencil_seconds)
        timings.add("compile_liftoff", instance.stats.liftoff_seconds)
        timings.add("compile_turbofan", instance.stats.turbofan_seconds)
        if governor is not None:
            governor.check()
        if self.cancel_token is not None:
            self.cancel_token.raise_if_cancelled(phase="compile")
        return executable

    def execute_prepared(self, executable: WasmExecutable,
                         plan: P.PhysicalOperator, catalog: Catalog,
                         profile: Profile | None = None, trace=None,
                         governor: ResourceGovernor | None = None,
                         timings: Timings | None = None,
                         param_values: list | None = None) -> ExecutionResult:
        """Run (or re-run) an executable.  On re-runs the instance's
        mutable state is reset first; tier state carries over, so a
        cached query keeps its optimized code.  ``param_values`` are
        storage-representation values written into the module's
        parameter slots after the reset."""
        timings = timings if timings is not None else Timings()
        if governor is None:
            governor = ResourceGovernor(self.timeout_seconds,
                                        self.max_memory_pages,
                                        deadline=self.deadline).start()
            governor.trace = trace
        # re-attach: page growth during this run charges this run's budget
        executable.space.governor = governor
        governor.phase = "execution"
        instance = executable.instance
        compiled = executable.compiled
        self._chunked = dict(executable.chunked)
        if executable.executions > 0:
            self._reset_instance(executable)
        executable.executions += 1
        if param_values is not None:
            self.bind_wasm_params(executable, param_values)
        executable.rows = []
        rows = executable.rows
        self.last_tier_stats = instance.stats

        self._rewire_count = 0
        self.last_morsels_total = 0
        self.last_pipeline_stats = []
        compile_before = (instance.stats.stencil_seconds,
                          instance.stats.liftoff_seconds,
                          instance.stats.turbofan_seconds)
        with Stopwatch(timings, "execution"), \
                trace_span(trace, "execution", engine=self.name):
            instance.invoke("init")
            for pipeline_index, info in enumerate(compiled.pipelines):
                with trace_span(
                    trace, "pipeline", pipeline=pipeline_index,
                    function=info.function,
                    source=f"{info.source_kind}:{info.source_name}",
                ) as span:
                    rows_before = len(rows)
                    self._last_rows_in = 0
                    pipeline_start = time.perf_counter()
                    morsels = self._run_pipeline(
                        instance, compiled, info, rows,
                        plan, catalog, governor, pipeline_index, trace
                    )
                    pipeline_seconds = time.perf_counter() - pipeline_start
                    self.last_morsels_total += morsels
                    if info.is_final:
                        self._drain(instance, compiled, rows)
                    rows_out = self._pipeline_rows_out(
                        instance, info, rows, rows_before
                    )
                    self.last_pipeline_stats.append({
                        "index": pipeline_index,
                        "function": info.function,
                        "rows_in": self._last_rows_in,
                        "rows_out": rows_out,
                        "morsels": morsels,
                        "seconds": pipeline_seconds,
                    })
                    if span is not None:
                        span.attrs["morsels"] = morsels
                        span.attrs["rows_out"] = rows_out
            self._drain(instance, compiled, rows)
        # tier-up compilation that happened during execution is reported
        # as compile time, not execution time (in V8 it runs concurrently),
        # attributed to the tier that did the compiling: a stencil->Liftoff
        # promotion spends Liftoff seconds, a Liftoff->TurboFan one
        # TurboFan seconds
        stats = instance.stats
        for phase, before, after in (
            ("compile_stencil", compile_before[0], stats.stencil_seconds),
            ("compile_liftoff", compile_before[1], stats.liftoff_seconds),
            ("compile_turbofan", compile_before[2], stats.turbofan_seconds),
        ):
            delta = after - before
            if delta > 0:
                timings.phases["execution"] -= delta
                timings.add(phase, delta)

        tier_attrs = dict(
            liftoff_functions=stats.liftoff_functions,
            turbofan_functions=stats.turbofan_functions,
            tier_ups=stats.tier_ups,
            tier_up_failures=stats.tier_up_failures,
            bounds_checks_elided=stats.bounds_checks_elided,
        )
        if stats.stencil_functions or stats.stencil_fallbacks:
            # only when tier-0 was involved, keeping non-stencil traces
            # byte-identical to the pre-stencil engine
            tier_attrs.update(
                stencil_functions=stats.stencil_functions,
                stencil_cache_hits=stats.stencil_cache_hits,
                stencil_cache_misses=stats.stencil_cache_misses,
                stencil_fallbacks=stats.stencil_fallbacks,
            )
        trace_event(trace, "tier_stats", **tier_attrs)
        if self.raw_rows:
            result = ExecutionResult(
                column_names=[c.name for c in plan.output],
                column_types=plan.output_types,
                rows=list(rows),
            )
        else:
            result = self.finalize_rows(plan, rows)
        result.engine = self.name
        result.timings = timings
        result.profile = profile
        result.trace = trace
        return result

    def _reset_instance(self, executable: WasmExecutable) -> None:
        """Restore a cached instance for the next execution.

        Globals go back to their initializers, constants (and the bytes
        under them) are replayed from the data segments, and the heap
        bound is pinned at the *grown* extent: address-space pages are
        never recycled, so re-growing from the original ``heap_end``
        would leak 64 KiB pages on every cached execution.  The generated
        ``init()`` — re-run by the caller — then re-allocates and
        re-zeroes every scratch structure via the bump allocator.
        """
        instance = executable.instance
        instance.reset_mutable_state()
        extent = executable.space._next_page * WASM_PAGE_SIZE
        self._write_global(instance, "heap_end", extent)
        for seg in instance.module.data:
            instance.memory.write_bytes(seg.offset, seg.payload)

    @staticmethod
    def bind_wasm_params(executable: WasmExecutable, values: list) -> None:
        """Write bound parameter values into the module's fixed slots.

        ``values[i]`` is the storage representation of ``$(i+1)``,
        already coerced to the parameter's inferred type.
        """
        layout = executable.compiled.param_layout or {}
        memory = executable.memory
        for index, (addr, ty) in layout.items():
            value = values[index - 1]
            if ty.is_string:
                raw = value if isinstance(value, bytes) else bytes(value)
                memory.write_bytes(addr, raw.ljust(ty.size, b"\x00")[:ty.size])
            else:
                fmt = {"i32": "<i", "i64": "<q", "f64": "<d"}[ty.wasm_type]
                memory.write_bytes(addr, struct.pack(fmt, value))

    def _pipeline_rows_out(self, instance, info, rows: list,
                           rows_before: int) -> int:
        """Observed output cardinality of one pipeline (EXPLAIN ANALYZE).

        Final pipelines are measured by the rows drained from the result
        window; sink pipelines by the generated structure's exported
        ``{name}_count`` global; scalar-aggregate sinks hold exactly one
        state row.
        """
        if info.is_final:
            return len(rows) - rows_before
        if info.sink_name is not None:
            return self._read_global(instance, f"{info.sink_name}_count")
        if info.sink_kind == "scalar":
            return 1
        return 0

    def _run_pipeline(self, instance, compiled: CompiledQuery, info,
                      rows: list, plan, catalog,
                      governor: ResourceGovernor | None = None,
                      pipeline_index: int | None = None,
                      trace=None) -> int:
        """Run one pipeline to completion; returns the morsel count."""
        if info.sort_before is not None:
            instance.invoke(info.sort_before)
        if info.source_kind == "indexseek":
            table = next(
                catalog.get(s.table_name) for s in _scans_of(plan)
                if s.binding == info.source_name
            )
            key, low, high, lstrict, hstrict = info.seek
            begin, total = table.index_on(key).positions(
                low, high, lstrict, hstrict
            )
        else:
            total = self._source_rows(instance, compiled, info)
            begin = 0

        if (self.partition is not None and info.source_kind == "scan"
                and info.source_name == self.partition[0]):
            # this worker's slice of the partitioned scan
            _, part_begin, part_end = self.partition
            begin = max(begin, min(part_begin, total))
            total = min(total, part_end)

        # input cardinality actually driven (feedback harvesting)
        self._last_rows_in = max(total - begin, 0)

        window = self._chunked.get(info.source_name) \
            if info.source_kind == "scan" else None
        if window is not None:
            # Figure 5: the pipeline sees [0, chunk_rows) of a fixed
            # window; the host re-wires the next chunk between runs
            table = next(
                catalog.get(s.table_name) for s in _scans_of(plan)
                if s.binding == info.source_name
            )
            scan = next(s for s in _scans_of(plan)
                        if s.binding == info.source_name)
            offset = begin
            morsels = 0
            while offset < total:
                chunk_rows = min(window, total - offset)
                if self.fault_injector is not None:
                    self.fault_injector.check("rewire.chunk")
                for name in scan.columns:
                    values = table.column(name).values
                    chunk = values[offset:offset + chunk_rows]
                    instance.memory.space.remap(
                        f"col:{info.source_name}.{name}",
                        memoryview(chunk).cast("B"),
                    )
                self._rewire_count += 1
                trace_event(trace, "rewire.chunk",
                            pipeline=pipeline_index, offset=offset,
                            rows=chunk_rows)
                get_registry().counter(
                    "wasm_rewired_chunks_total",
                    "Table chunks rewired into the fixed window",
                ).inc()
                morsels += self._drive_morsels(
                    instance, compiled, info, rows, 0, chunk_rows,
                    governor, pipeline_index, trace
                )
                offset += chunk_rows
            return morsels

        return self._drive_morsels(instance, compiled, info, rows, begin,
                                   total, governor, pipeline_index, trace)

    def _drive_morsels(self, instance, compiled, info, rows,
                       begin: int, total: int,
                       governor: ResourceGovernor | None = None,
                       pipeline_index: int | None = None,
                       trace=None) -> int:
        """Invoke the pipeline morsel by morsel; returns the morsel count."""
        morsel = 0
        injector = self.fault_injector
        morsel_counter = get_registry().counter(
            "wasm_morsels_total", "Morsels executed, by tier"
        )
        while begin < total:
            tier = instance.tier_of(info.function)
            if tier == "stencil":
                # warmup morsels: stencil code starts instantly but runs
                # slower than compiled code, so bound the work done per
                # call — first rows surface sooner AND the call counter
                # reaches the promotion threshold after little work
                size = max(self.morsel_size // 16, 256)
            else:
                size = self.morsel_size
            end = min(begin + size, total)
            try:
                if self.cancel_token is not None:
                    self.cancel_token.raise_if_cancelled(
                        phase="execution", pipeline_index=pipeline_index,
                        morsel=morsel,
                    )
                if governor is not None:
                    governor.check(pipeline_index=pipeline_index,
                                   morsel=morsel)
                if injector is not None:
                    injector.check("trap.morsel")
                if self.morsel_hook is not None:
                    # cooperative fair scheduling: wait for this query's
                    # turn before burning the next morsel
                    self.morsel_hook()
                with trace_span(trace, "morsel", pipeline=pipeline_index,
                                morsel=morsel, begin=begin, end=end,
                                tier=tier):
                    instance.invoke(info.function, begin, end)
            except Trap as trap:
                # locate the trap for the caller: which phase, which
                # pipeline, which morsel (raw traps carry none of that)
                if trap.phase is None:
                    trap.phase = "execution"
                    trap.pipeline_index = pipeline_index
                    trap.morsel = morsel
                raise
            morsel_counter.inc(tier=tier)
            if info.is_final:
                self._drain(instance, compiled, rows)
                if info.limit_total is not None and self._read_global(
                    instance, info.limit_global
                ) >= info.limit_total:
                    morsel += 1
                    break
            begin = end
            morsel += 1
        return morsel

    def _source_rows(self, instance, compiled: CompiledQuery, info) -> int:
        if info.source_kind == "scan":
            return compiled.memory.row_counts[info.source_name]
        if info.source_kind == "scalar":
            return 1
        # hash-table entries or sort-array rows: read the exported count
        return self._read_global(instance, f"{info.source_name}_count")

    @staticmethod
    def _read_global(instance, export_name: str) -> int:
        export = instance.module.export_by_name(export_name)
        return instance.globals[export.index]

    @staticmethod
    def _write_global(instance, export_name: str, value: int) -> None:
        export = instance.module.export_by_name(export_name)
        instance.globals[export.index] = value

    def _drain(self, instance, compiled: CompiledQuery, rows: list) -> None:
        """Read packed rows out of the rewired result window."""
        count = self._read_global(instance, "result_count")
        if count == 0:
            return
        layout = compiled.result_layout
        base = compiled.memory.result_base
        raw = instance.memory.read_bytes(base, count * layout.stride)
        fields = [layout.field(f"o{i}")
                  for i in range(len(compiled.output_types))]
        formats = []
        for f in fields:
            if f.ty.is_string:
                formats.append(None)
            else:
                formats.append({
                    ("i32", 1): "<b", ("i32", 4): "<i",
                    ("i64", 8): "<q", ("f64", 8): "<d",
                }[(f.ty.wasm_type, f.ty.size)])
        for r in range(count):
            offset = r * layout.stride
            row = []
            for f, fmt in zip(fields, formats):
                if fmt is None:
                    row.append(raw[offset + f.offset:
                                   offset + f.offset + f.ty.size])
                else:
                    row.append(
                        struct.unpack_from(fmt, raw, offset + f.offset)[0]
                    )
            rows.append(tuple(row))
        self._write_global(instance, "result_count", 0)

    # -- introspection helpers (examples, tests) -----------------------------------

    def explain_wasm(self, plan: P.PhysicalOperator, catalog: Catalog) -> str:
        """The generated module as WAT text plus the pipeline summary."""
        from repro.wasm.wat import module_to_wat

        timings = Timings()
        compiled, _ = self.compile_query(plan, catalog, timings)
        lines = [p.describe() for p in dissect_into_pipelines(plan)]
        return "\n".join(lines) + "\n\n" + module_to_wat(compiled.module)
