"""Execution engines.

Four engines execute the same physical plans, mirroring the systems of
the paper's evaluation (Section 8.1):

* :mod:`repro.engines.volcano` — tuple-at-a-time iterators
  (PostgreSQL's execution model),
* :mod:`repro.engines.vectorized` — selection vectors over pre-compiled
  type-specialized primitives (DuckDB / MonetDB-X100's model),
* :mod:`repro.engines.hyper` — data-centric compilation to an LLVM-like
  register IR with bytecode interpretation, O0 and O2 compilation, and
  adaptive switching (HyPer with Kohn et al.'s adaptive execution),
* :mod:`repro.engines.wasm_engine` — the paper's system (mutable):
  compilation to WebAssembly, executed by the adaptive two-tier engine.
"""

from repro.engines.base import ExecutionResult, QueryEngine, Timings
from repro.engines.volcano import VolcanoEngine
from repro.engines.vectorized import VectorizedEngine
from repro.engines.hyper import HyperEngine
from repro.engines.wasm_engine import WasmEngine

__all__ = [
    "ExecutionResult",
    "HyperEngine",
    "QueryEngine",
    "Timings",
    "VectorizedEngine",
    "VolcanoEngine",
    "WasmEngine",
]

ENGINES = {
    "volcano": VolcanoEngine,
    "vectorized": VectorizedEngine,
    "hyper": HyperEngine,
    "wasm": WasmEngine,
}
