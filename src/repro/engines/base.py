"""Engine interface, result sets, and phase timings."""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.costmodel import Profile, cost_report
from repro.plan.physical import PhysicalOperator
from repro.sql.types import DataType

__all__ = ["Timings", "ExecutionResult", "QueryEngine", "Stopwatch"]


@dataclass
class Timings:
    """Per-phase wall-clock times of one query, in seconds.

    Phase names follow the paper's Figure 10: translation of the QEP to
    the engine's format, per-tier compilation, and execution.  Engines
    fill only the phases they have.
    """

    phases: dict[str, float] = field(default_factory=dict)

    def add(self, phase: str, seconds: float) -> None:
        self.phases[phase] = self.phases.get(phase, 0.0) + seconds

    def get(self, phase: str) -> float:
        return self.phases.get(phase, 0.0)

    @property
    def total_compilation(self) -> float:
        return sum(
            v for k, v in self.phases.items() if k != "execution"
        )

    @property
    def execution(self) -> float:
        return self.get("execution")

    def __str__(self) -> str:  # pragma: no cover - formatting
        return ", ".join(
            f"{k}={v * 1000:.2f}ms" for k, v in self.phases.items()
        )


class Stopwatch:
    """Context manager recording one phase into a :class:`Timings`."""

    def __init__(self, timings: Timings, phase: str):
        self.timings = timings
        self.phase = phase

    def __enter__(self):
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        self.timings.add(self.phase, time.perf_counter() - self._start)


@dataclass
class ExecutionResult:
    """Rows plus metadata from one query execution.

    ``rows`` hold Python-level values (dates as :class:`datetime.date`,
    decimals as floats, strings as ``str``).
    """

    column_names: list[str]
    column_types: list[DataType]
    rows: list[tuple]
    engine: str = ""
    timings: Timings = field(default_factory=Timings)
    profile: Profile | None = None
    #: Engines that failed before this result was produced, as
    #: ``(engine_spec, error_description)`` pairs — degradation through
    #: the fallback chain is observable, never silent.
    fallback_attempts: list[tuple[str, str]] = field(default_factory=list)
    #: The :class:`~repro.observability.QueryTrace` recorded for this
    #: query, when tracing was requested; ``None`` otherwise.
    trace: object | None = None

    @property
    def degraded(self) -> bool:
        """True when the result came from a fallback engine."""
        return bool(self.fallback_attempts)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def to_dicts(self) -> list[dict]:
        return [dict(zip(self.column_names, row)) for row in self.rows]

    def column(self, name: str) -> list:
        index = self.column_names.index(name)
        return [row[index] for row in self.rows]

    @property
    def modeled(self):
        """The cost-model report, if the run was instrumented."""
        if self.profile is None:
            return None
        return cost_report(self.profile)

    def format_table(self, max_rows: int = 20) -> str:
        """A small aligned text table (for examples and debugging)."""
        header = self.column_names
        shown = [
            tuple(str(v) for v in row) for row in self.rows[:max_rows]
        ]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in shown)) if shown
            else len(header[i])
            for i in range(len(header))
        ]
        lines = [
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            "-+-".join("-" * w for w in widths),
        ]
        for row in shown:
            lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
        if len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows)} rows total)")
        return "\n".join(lines)


class QueryEngine:
    """Interface all engines implement.

    ``trace`` is an optional
    :class:`~repro.observability.QueryTrace`; engines that support
    structured tracing record their phase/pipeline/morsel spans into it,
    others at minimum wrap execution in an ``execution`` span.
    """

    name = "abstract"

    def execute(self, plan: PhysicalOperator, catalog: Catalog,
                profile: Profile | None = None,
                trace=None) -> ExecutionResult:
        raise NotImplementedError

    @staticmethod
    def finalize_rows(plan: PhysicalOperator, storage_rows) -> ExecutionResult:
        """Convert storage-representation rows to Python-level values."""
        types = plan.output_types
        rows = [
            tuple(ty.from_storage(v) for ty, v in zip(types, row))
            for row in storage_rows
        ]
        return ExecutionResult(
            column_names=[c.name for c in plan.output],
            column_types=types,
            rows=rows,
        )

    def execute_folded(self, plan, profile: Profile | None = None,
                       trace=None) -> ExecutionResult:
        """Run a plan proven empty by static analysis.

        Nothing is translated, generated, or compiled — the result is
        the plan's schema with zero rows, and the trace carries only an
        ``execution`` span annotated with the empty proof (the missing
        ``compile.*``/``translation`` spans are the observable win).
        """
        from repro.observability.trace import trace_span

        timings = Timings()
        with trace_span(trace, "execution", engine=self.name,
                        folded=plan.reason):
            pass
        timings.add("execution", 0.0)
        result = self.finalize_rows(plan, [])
        result.engine = self.name
        result.timings = timings
        result.profile = profile
        result.trace = trace
        return result
