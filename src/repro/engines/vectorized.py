"""The vectorized engine: selection vectors over pre-compiled primitives.

Implements the MonetDB/X100 processing model the paper attributes to
DuckDB (Section 8.1): queries execute as a sequence of *pre-compiled,
type-specialized vectorized primitives*; control flow is converted to
data flow through **selection vectors** that successive predicate
kernels refine (the paper's Listing 2).  NumPy kernels stand in for the
pre-compiled primitives — they are exactly that: type-specialized
vectorized machine code compiled ahead of time, invoked per primitive
through a type-agnostic interface.

Two behaviours of the model matter for the paper's figures and are
implemented faithfully:

* a conjunction is evaluated **one side at a time** — the right-hand
  side only on rows selected by the left (Fig. 6c/6d asymmetries);
* every primitive invocation pays a dispatch overhead, and every
  selected element pays selection-vector maintenance, while per-element
  compute is cheap (SIMD) — see the cost weights.

Cost accounting: one ``vector_op`` per primitive invocation,
``vector_elements`` per element processed, a branch site per selection
kernel (writing a selection vector is a conditional store), and bulk
memory events for gathers and hash tables.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.catalog import Catalog
from repro.costmodel import Profile
from repro.engines.base import ExecutionResult, QueryEngine, Stopwatch, Timings
from repro.engines.eval import sql_like_regex
from repro.errors import EngineError
from repro.observability.trace import trace_span
from repro.plan import exprs as E
from repro.plan import physical as P
from repro.sql import types as T

__all__ = ["VectorizedEngine"]


class _Chunk:
    """A batch of rows: one NumPy array per column."""

    __slots__ = ("columns", "length")

    def __init__(self, columns: list[np.ndarray], length: int):
        self.columns = columns
        self.length = length

    @classmethod
    def empty_like(cls, types: list[T.DataType]) -> "_Chunk":
        return cls([np.empty(0, dtype=ty.numpy_dtype) for ty in types], 0)

    def take(self, sel: np.ndarray) -> "_Chunk":
        return _Chunk([col[sel] for col in self.columns], len(sel))


def _int_div_trunc(a: np.ndarray, b) -> np.ndarray:
    """Truncating (toward-zero) integer division, matching Wasm."""
    with np.errstate(divide="ignore"):
        q = np.abs(a) // np.abs(b)
    negative = (a < 0) != (np.asarray(b) < 0)
    return np.where(negative, -q, q).astype(a.dtype, copy=False)


def _factorize(column: np.ndarray) -> tuple[np.ndarray, int]:
    """Values -> dense codes [0, n) preserving sort order."""
    uniques, codes = np.unique(column, return_inverse=True)
    return codes.astype(np.int64), len(uniques)


def _combine_keys(key_columns: list[np.ndarray]) -> np.ndarray:
    """Multiple key columns -> one int64 code column (row identity)."""
    codes, _ = _factorize(key_columns[0])
    for column in key_columns[1:]:
        more, n = _factorize(column)
        codes = codes * n + more
    return codes


class _Evaluator:
    """Vectorized evaluation of the lowered IR over a chunk."""

    def __init__(self, profile: Profile | None):
        self.profile = profile

    def _kernel(self, site: str, n: int) -> None:
        if self.profile is not None:
            self.profile.vector_ops += 1
            self.profile.vector_elements += n

    # -- full-vector expression evaluation ----------------------------------

    def evaluate(self, expr: E.LExpr, chunk: _Chunk) -> np.ndarray:
        n = chunk.length
        if isinstance(expr, E.Slot):
            return chunk.columns[expr.index]
        if isinstance(expr, E.Const):
            self._kernel(f"const:{id(expr)}", 0)
            return np.full(n, expr.value, dtype=expr.ty.numpy_dtype)
        if isinstance(expr, E.Param):
            if expr.value is None:
                raise EngineError(f"parameter ${expr.index} is unbound")
            self._kernel(f"param:{id(expr)}", 0)
            return np.full(n, expr.value, dtype=expr.ty.numpy_dtype)
        if isinstance(expr, E.Arith):
            a = self.evaluate(expr.left, chunk)
            b = self.evaluate(expr.right, chunk)
            self._kernel(f"arith:{id(expr)}", n)
            with np.errstate(over="ignore", divide="ignore", invalid="ignore"):
                if expr.op == "+":
                    return a + b
                if expr.op == "-":
                    return a - b
                if expr.op == "*":
                    return a * b
                if expr.op == "/":
                    if expr.ty.is_floating:
                        return np.divide(a, b)
                    return _int_div_trunc(a, b)
                if expr.op == "%":
                    r = np.abs(a) % np.abs(b)
                    return np.where(a < 0, -r, r).astype(a.dtype, copy=False)
            raise EngineError(f"unknown arithmetic op {expr.op!r}")
        if isinstance(expr, E.Compare):
            a = self.evaluate(expr.left, chunk)
            b = self.evaluate(expr.right, chunk)
            self._kernel(f"cmp:{id(expr)}", n)
            op = expr.op
            if op == "=":
                return a == b
            if op == "<>":
                return a != b
            if op == "<":
                return a < b
            if op == "<=":
                return a <= b
            if op == ">":
                return a > b
            return a >= b
        if isinstance(expr, E.Logic):
            a = self.evaluate(expr.left, chunk)
            b = self.evaluate(expr.right, chunk)
            self._kernel(f"logic:{id(expr)}", n)
            return (a & b) if expr.op == "AND" else (a | b)
        if isinstance(expr, E.Not):
            return ~self.evaluate(expr.operand, chunk)
        if isinstance(expr, E.Neg):
            return -self.evaluate(expr.operand, chunk)
        if isinstance(expr, E.Promote):
            value = self.evaluate(expr.operand, chunk)
            self._kernel(f"promote:{id(expr)}", n)
            return value.astype(expr.ty.numpy_dtype, copy=False)
        if isinstance(expr, E.Case):
            conditions = [self.evaluate(c, chunk) for c, _ in expr.whens]
            results = [self.evaluate(r, chunk) for _, r in expr.whens]
            default = self.evaluate(expr.else_, chunk)
            self._kernel(f"case:{id(expr)}", n * len(conditions))
            return np.select(conditions, results, default=default)
        if isinstance(expr, E.Like):
            value = self.evaluate(expr.operand, chunk)
            self._kernel(f"like:{id(expr)}", n)
            matched = self._like(expr, value)
            return ~matched if expr.negated else matched
        if isinstance(expr, E.Extract):
            days = self.evaluate(expr.operand, chunk).astype(np.int64)
            self._kernel(f"extract:{id(expr)}", n)
            return _extract_vec(expr.part, days)
        raise EngineError(f"cannot evaluate {type(expr).__name__}")

    def _like(self, expr: E.Like, value: np.ndarray) -> np.ndarray:
        kind, pattern = expr.kind, expr.pattern
        if kind == "exact":
            width = value.dtype.itemsize
            return value == np.array(pattern[:width], dtype=value.dtype)
        text = np.char.rstrip(value, b"\x00")
        if kind == "prefix":
            return np.char.startswith(text, pattern)
        if kind == "suffix":
            return np.char.endswith(text, pattern)
        if kind == "contains":
            return np.char.find(text, pattern) >= 0
        regex = sql_like_regex(pattern)
        return np.array(
            [bool(regex.match(v.decode("utf-8", "replace"))) for v in text]
        )

    # -- selection-vector refinement (the paper's Listing 2) -------------------

    def select(self, predicate: E.LExpr, chunk: _Chunk,
               sel: np.ndarray) -> np.ndarray:
        """Refine selection vector ``sel``: indices satisfying ``predicate``.

        Conjunctions evaluate the right-hand side only on the rows the
        left-hand side selected — one primitive after another, exactly as
        a vectorized interpreter must.
        """
        if isinstance(predicate, E.Logic) and predicate.op == "AND":
            sel = self.select(predicate.left, chunk, sel)
            return self.select(predicate.right, chunk, sel)
        if isinstance(predicate, E.Logic) and predicate.op == "OR":
            left = self.select(predicate.left, chunk, sel)
            right = self.select(predicate.right, chunk, sel)
            return np.union1d(left, right)
        mask = self.evaluate(predicate, chunk.take(sel)).astype(bool)
        if self.profile is not None:
            survivors = int(mask.sum())
            # a select kernel writes its output behind a branch per element
            self.profile.branch_bulk(
                f"selkernel:{id(predicate)}", survivors, int(mask.size)
            )
            self.profile.vector_ops += 1
            self.profile.vector_elements += int(mask.size)
            # selection-vector maintenance: read the incoming vector per
            # element, write an index per survivor (scalar, data-dependent)
            self.profile.add("selvec_ops", float(mask.size + survivors))
        return sel[mask]


def _extract_vec(part: str, days: np.ndarray) -> np.ndarray:
    """Vectorized civil_from_days (same algorithm as engines.datecalc)."""
    z = days + 719468
    era = np.where(z >= 0, z, z - 146096) // 146097
    doe = z - era * 146097
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)
    mp = (5 * doy + 2) // 153
    day = doy - (153 * mp + 2) // 5 + 1
    month = np.where(mp < 10, mp + 3, mp - 9)
    year = year + (month <= 2)
    if part == "YEAR":
        return year.astype(np.int32)
    if part == "MONTH":
        return month.astype(np.int32)
    return day.astype(np.int32)


class VectorizedEngine(QueryEngine):
    """Selection-vector vectorized execution (the DuckDB baseline)."""

    name = "vectorized"

    def execute(self, plan: P.PhysicalOperator, catalog: Catalog,
                profile: Profile | None = None,
                trace=None) -> ExecutionResult:
        if isinstance(plan, P.EmptyResult):
            return self.execute_folded(plan, profile, trace)
        timings = Timings()
        evaluator = _Evaluator(profile)
        with Stopwatch(timings, "execution"), \
                trace_span(trace, "execution", engine=self.name):
            chunk = self._run(plan, catalog, evaluator)
            rows = list(zip(*[col.tolist() for col in chunk.columns])) \
                if chunk.length else []
        result = self.finalize_rows(plan, rows)
        result.engine = self.name
        result.timings = timings
        result.profile = profile
        result.trace = trace
        return result

    # -- operators -------------------------------------------------------------

    def _run(self, op: P.PhysicalOperator, catalog: Catalog,
             ev: _Evaluator) -> _Chunk:
        if isinstance(op, P.SeqScan):
            table = catalog.get(op.table_name)
            columns = [table.column(name).values for name in op.columns]
            if ev.profile is not None:
                for name, values in zip(op.columns, columns):
                    ev.profile.memory_bulk(
                        f"scan:{op.binding}:{name}",
                        accesses=len(table), sequential=len(table),
                        footprint=int(values.nbytes) if len(table) else 1,
                    )
            return _Chunk(list(columns), table.row_count)

        if isinstance(op, P.IndexSeek):
            table = catalog.get(op.table_name)
            index = table.index_on(op.key_column)
            lo, hi = index.positions(op.low, op.high,
                                     op.low_strict, op.high_strict)
            row_ids = index.row_ids[lo:hi]
            columns = [
                table.column(name).values[row_ids] for name in op.columns
            ]
            if ev.profile is not None and len(row_ids):
                ev._kernel(f"idxseek:{id(op)}", len(row_ids))
                ev.profile.memory_bulk(
                    f"idxseek:{op.binding}", accesses=int(len(row_ids)),
                    sequential=0,
                    footprint=max(sum(table.column(n).nbytes
                                      for n in op.columns), 1),
                )
            return _Chunk(list(columns), int(len(row_ids)))

        if isinstance(op, P.Filter):
            chunk = self._run(op.child, catalog, ev)
            sel = np.arange(chunk.length)
            sel = ev.select(op.predicate, chunk, sel)
            if ev.profile is not None:
                # gathering the survivors through the selection vector is
                # one data-dependent indexed read per column per survivor
                ev.profile.add(
                    "selvec_ops", float(len(sel) * max(len(chunk.columns), 1))
                )
            return chunk.take(sel)

        if isinstance(op, P.Project):
            chunk = self._run(op.child, catalog, ev)
            columns = [
                np.asarray(ev.evaluate(expr, chunk)) for expr in op.exprs
            ]
            columns = [
                col.astype(ty.numpy_dtype, copy=False)
                for col, ty in zip(columns, op.output_types)
            ]
            return _Chunk(columns, chunk.length)

        if isinstance(op, P.HashJoin):
            return self._hash_join(op, catalog, ev)

        if isinstance(op, P.NestedLoopJoin):
            return self._nested_loop(op, catalog, ev)

        if isinstance(op, P.HashGroupBy):
            return self._group_by(op, catalog, ev)

        if isinstance(op, P.ScalarAggregate):
            return self._scalar_aggregate(op, catalog, ev)

        if isinstance(op, P.Sort):
            chunk = self._run(op.child, catalog, ev)
            if chunk.length == 0:
                return chunk
            order = np.arange(chunk.length)
            for key_expr, descending in reversed(op.order):
                keys = np.asarray(ev.evaluate(key_expr, chunk))[order]
                codes, _ = _factorize(keys)
                if descending:
                    codes = -codes
                order = order[np.argsort(codes, kind="stable")]
            if ev.profile is not None:
                n = chunk.length
                ev.profile.add("sort_comparisons",
                               float(n) * float(np.log2(max(n, 2))))
            return chunk.take(order)

        if isinstance(op, P.Limit):
            chunk = self._run(op.child, catalog, ev)
            start = op.offset
            stop = None if op.limit is None else start + op.limit
            sel = np.arange(chunk.length)[start:stop]
            return chunk.take(sel)

        raise EngineError(f"vectorized cannot execute {type(op).__name__}")

    def _hash_join(self, op: P.HashJoin, catalog, ev: _Evaluator) -> _Chunk:
        build = self._run(op.build, catalog, ev)
        probe = self._run(op.probe, catalog, ev)
        if build.length == 0 or probe.length == 0:
            return _Chunk.empty_like(op.output_types)

        build_key = _combine_keys([
            np.asarray(ev.evaluate(k, build)) for k in op.build_keys
        ]) if len(op.build_keys) > 1 else np.asarray(
            ev.evaluate(op.build_keys[0], build)
        )
        probe_key = _combine_keys([
            np.asarray(ev.evaluate(k, probe)) for k in op.probe_keys
        ]) if len(op.probe_keys) > 1 else np.asarray(
            ev.evaluate(op.probe_keys[0], probe)
        )
        if len(op.build_keys) > 1:
            # combined codes are only comparable within one side; recombine
            build_cols = [np.asarray(ev.evaluate(k, build))
                          for k in op.build_keys]
            probe_cols = [np.asarray(ev.evaluate(k, probe))
                          for k in op.probe_keys]
            build_key, probe_key = _combine_two_sided(build_cols, probe_cols)

        ev._kernel(f"join-hash:{id(op)}", build.length + probe.length)
        if ev.profile is not None:
            # hashing + probing are scalar, data-dependent steps
            ev.profile.add("ht_scalar_ops",
                           float(build.length + probe.length))
            row_size = sum(c.ty.size for c in op.build.output) + 16
            ev.profile.memory_bulk(
                f"join-build:{id(op)}", accesses=build.length, sequential=0,
                footprint=max(build.length * row_size, 1),
            )
            ev.profile.memory_bulk(
                f"join-probe:{id(op)}", accesses=probe.length, sequential=0,
                footprint=max(build.length * row_size, 1),
            )

        # sorted-lookup join: factorized groups + offset expansion
        sort_index = np.argsort(build_key, kind="stable")
        sorted_keys = build_key[sort_index]
        positions = np.searchsorted(sorted_keys, probe_key, side="left")
        ends = np.searchsorted(sorted_keys, probe_key, side="right")
        counts = ends - positions

        probe_idx = np.repeat(np.arange(probe.length), counts)
        build_pos = _expand_ranges(positions, counts)
        build_idx = sort_index[build_pos]

        combined = _Chunk(
            [col[build_idx] for col in build.columns]
            + [col[probe_idx] for col in probe.columns],
            len(build_idx),
        )
        if op.residual is not None:
            sel = ev.select(op.residual, combined,
                            np.arange(combined.length))
            combined = combined.take(sel)
        return combined

    def _nested_loop(self, op: P.NestedLoopJoin, catalog, ev) -> _Chunk:
        left = self._run(op.left, catalog, ev)
        right = self._run(op.right, catalog, ev)
        if left.length == 0 or right.length == 0:
            return _Chunk.empty_like(op.output_types)
        left_idx = np.repeat(np.arange(left.length), right.length)
        right_idx = np.tile(np.arange(right.length), left.length)
        combined = _Chunk(
            [col[left_idx] for col in left.columns]
            + [col[right_idx] for col in right.columns],
            len(left_idx),
        )
        ev._kernel(f"nlj:{id(op)}", combined.length)
        if op.predicate is not None:
            sel = ev.select(op.predicate, combined,
                            np.arange(combined.length))
            combined = combined.take(sel)
        return combined

    def _group_by(self, op: P.HashGroupBy, catalog, ev) -> _Chunk:
        chunk = self._run(op.child, catalog, ev)
        if chunk.length == 0:
            return _Chunk.empty_like(op.output_types)
        key_arrays = [np.asarray(ev.evaluate(k, chunk)) for k in op.keys]
        stacked = key_arrays[0] if len(key_arrays) == 1 \
            else _combine_keys(key_arrays)
        uniques, group_ids = np.unique(stacked, return_inverse=True)
        n_groups = len(uniques)
        ev._kernel(f"group-hash:{id(op)}", chunk.length)
        if ev.profile is not None:
            # per element: one scalar hash+probe, one scalar scatter
            # into the aggregate states (np.add.at is scalar under the
            # hood, as is any hash aggregate)
            ev.profile.add("ht_scalar_ops", 3.0 * chunk.length)
            row_size = 16 + sum(k.ty.size for k in op.keys) \
                + 8 * len(op.aggregates)
            ev.profile.memory_bulk(
                f"group:{id(op)}", accesses=chunk.length, sequential=0,
                footprint=max(n_groups * row_size, 1),
            )

        # representative row per group provides the key output values
        representatives = np.zeros(n_groups, dtype=np.int64)
        representatives[group_ids[::-1]] = np.arange(chunk.length)[::-1]
        out_columns = [arr[representatives] for arr in key_arrays]

        for agg in op.aggregates:
            ev._kernel(f"agg:{agg.kind}:{id(agg)}", chunk.length)
            out_columns.append(
                _aggregate_vec(agg, ev, chunk, group_ids, n_groups)
            )
        return _Chunk(out_columns, n_groups)

    def _scalar_aggregate(self, op: P.ScalarAggregate, catalog, ev) -> _Chunk:
        chunk = self._run(op.child, catalog, ev)
        group_ids = np.zeros(chunk.length, dtype=np.int64)
        columns = []
        for agg in op.aggregates:
            ev._kernel(f"agg:{agg.kind}:{id(agg)}", chunk.length)
            columns.append(_aggregate_vec(agg, ev, chunk, group_ids, 1))
        return _Chunk(columns, 1)


def _expand_ranges(starts: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """Concatenate ranges [starts[i], starts[i]+counts[i]) efficiently."""
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    ends = np.cumsum(counts)
    begins = ends - counts
    out[0] = starts[np.argmax(counts > 0)]
    nonzero = counts > 0
    first_positions = begins[nonzero]
    start_values = starts[nonzero]
    out[first_positions[1:]] = (
        start_values[1:] - (start_values[:-1] + counts[nonzero][:-1] - 1)
    )
    return np.cumsum(out)


def _combine_two_sided(build_cols: list[np.ndarray],
                       probe_cols: list[np.ndarray]):
    """Factorize multi-column keys consistently across both join sides."""
    build_codes = np.zeros(len(build_cols[0]), dtype=np.int64)
    probe_codes = np.zeros(len(probe_cols[0]), dtype=np.int64)
    for b_col, p_col in zip(build_cols, probe_cols):
        merged = np.concatenate([b_col, p_col])
        _, codes = np.unique(merged, return_inverse=True)
        n = codes.max() + 1
        build_codes = build_codes * n + codes[: len(b_col)]
        probe_codes = probe_codes * n + codes[len(b_col):]
    return build_codes, probe_codes


def _aggregate_vec(agg, ev: _Evaluator, chunk: _Chunk,
                   group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    if agg.kind == "COUNT":
        counts = np.bincount(group_ids, minlength=n_groups)
        return counts.astype(np.int64)
    values = np.asarray(ev.evaluate(agg.arg, chunk))
    if agg.kind == "SUM":
        if values.dtype.kind == "f":
            out = np.zeros(n_groups, dtype=np.float64)
        else:
            out = np.zeros(n_groups, dtype=np.int64)
        np.add.at(out, group_ids, values)
        return out.astype(agg.ty.numpy_dtype, copy=False)
    if agg.kind == "AVG":
        sums = np.zeros(n_groups, dtype=np.float64)
        np.add.at(sums, group_ids, values.astype(np.float64))
        counts = np.bincount(group_ids, minlength=n_groups)
        with np.errstate(invalid="ignore"):
            return sums / np.maximum(counts, 1)
    if agg.kind == "MIN":
        out = np.full(n_groups, _extreme(values.dtype, high=True))
        np.minimum.at(out, group_ids, values)
        return out.astype(agg.ty.numpy_dtype, copy=False)
    if agg.kind == "MAX":
        out = np.full(n_groups, _extreme(values.dtype, high=False))
        np.maximum.at(out, group_ids, values)
        return out.astype(agg.ty.numpy_dtype, copy=False)
    raise EngineError(f"unknown aggregate {agg.kind!r}")


def _extreme(dtype, high: bool):
    if dtype.kind == "f":
        return np.inf if high else -np.inf
    info = np.iinfo(dtype)
    return info.max if high else info.min
