"""Calendar arithmetic on day numbers (days since 1970-01-01).

Implements the *civil-from-days* algorithm (Howard Hinnant's
``days_from_civil`` inverse) with pure integer arithmetic, so the same
computation can be evaluated in Python **and** generated as Wasm/HIR
instructions by the compiling engines — EXTRACT() compiles to a handful
of integer operations instead of a library call, in the spirit of the
paper's ad-hoc code generation.
"""

from __future__ import annotations

__all__ = ["civil_from_days", "year_of", "month_of", "day_of"]


def civil_from_days(days: int) -> tuple[int, int, int]:
    """Day number -> (year, month, day), proleptic Gregorian calendar."""
    z = days + 719468
    era = (z if z >= 0 else z - 146096) // 146097
    doe = z - era * 146097                                  # [0, 146096]
    yoe = (doe - doe // 1460 + doe // 36524 - doe // 146096) // 365
    year = yoe + era * 400
    doy = doe - (365 * yoe + yoe // 4 - yoe // 100)         # [0, 365]
    mp = (5 * doy + 2) // 153                               # [0, 11]
    day = doy - (153 * mp + 2) // 5 + 1                     # [1, 31]
    month = mp + 3 if mp < 10 else mp - 9                   # [1, 12]
    return year + (1 if month <= 2 else 0), month, day


def year_of(days: int) -> int:
    return civil_from_days(days)[0]


def month_of(days: int) -> int:
    return civil_from_days(days)[1]


def day_of(days: int) -> int:
    return civil_from_days(days)[2]
