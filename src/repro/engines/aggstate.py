"""Aggregate accumulation shared by the interpreting engines."""

from __future__ import annotations

from repro.backend.hashtable import sentinel_for
from repro.plan.exprs import Aggregate

__all__ = ["new_states", "update_states", "finalize_states"]


def new_states(aggregates: list[Aggregate]) -> list:
    """Initial accumulator per aggregate.

    COUNT/SUM start at 0; MIN/MAX start at None (first value wins);
    AVG is a [sum, count] pair.
    """
    states = []
    for agg in aggregates:
        if agg.kind == "COUNT":
            states.append(0)
        elif agg.kind == "SUM":
            states.append(0.0 if agg.ty.is_floating else 0)
        elif agg.kind == "AVG":
            states.append([0.0, 0])
        else:  # MIN / MAX
            states.append(None)
    return states


def update_states(states: list, aggregates: list[Aggregate], values: list):
    """Fold one input row's aggregate argument values into the states."""
    for i, agg in enumerate(aggregates):
        kind = agg.kind
        if kind == "COUNT":
            states[i] += 1
        elif kind == "SUM":
            states[i] += values[i]
        elif kind == "AVG":
            states[i][0] += values[i]
            states[i][1] += 1
        elif kind == "MIN":
            v = values[i]
            if states[i] is None or v < states[i]:
                states[i] = v
        else:  # MAX
            v = values[i]
            if states[i] is None or v > states[i]:
                states[i] = v


def finalize_states(states: list, aggregates: list[Aggregate]) -> list:
    """Accumulators -> output values (storage representation)."""
    out = []
    for state, agg in zip(states, aggregates):
        if agg.kind == "AVG":
            total, count = state
            out.append(total / count if count else 0.0)
        elif agg.kind in ("MIN", "MAX") and state is None:
            # empty input (scalar aggregation only): the no-NULL
            # convention shared by all engines is the type's sentinel
            out.append(sentinel_for(agg.kind, agg.ty))
        else:
            out.append(state)
    return out
