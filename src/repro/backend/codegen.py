"""Data-centric compilation of physical plans to WebAssembly (Section 4).

Every pipeline of the dissected plan becomes one exported Wasm function
``pipeline_i(begin, end)`` that processes the source rows ``[begin,
end)`` — the *morsel* the host hands it.  Tuples are pushed through the
whole pipeline in registers (Wasm locals); pipeline breakers
materialize into ad-hoc generated hash tables
(:mod:`repro.backend.hashtable`) or sort arrays
(:mod:`repro.backend.sort`).

The result protocol mirrors Figure 5: the final pipeline writes packed
rows into the rewired result window and bumps the exported
``result_count`` global; when the window fills, the generated code calls
the imported ``env.flush_results`` so the host can drain and reset it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.backend.context import (
    CompilerContext,
    MemoryPlan,
    RESULT_REGION_SIZE,
)
from repro.backend.expr import ExprCompiler, SlotValue
from repro.backend.hashtable import GeneratedHashTable, sentinel_for
from repro.backend.layout import TupleLayout
from repro.backend.sort import GeneratedSort
from repro.errors import PlanError
from repro.observability.trace import trace_span
from repro.plan import physical as P
from repro.plan.exprs import Aggregate, Slot, walk_lexpr
from repro.plan.pipeline import Pipeline, dissect_into_pipelines
from repro.sql import types as T
from repro.wasm.builder import FunctionBuilder

__all__ = ["QueryCompiler", "CompiledQuery", "PipelineInfo"]


def _slot_indices(*exprs) -> set[int]:
    """Slot indices referenced by any of ``exprs`` (``None`` entries ok)."""
    used: set[int] = set()
    for expr in exprs:
        if expr is None:
            continue
        for node in walk_lexpr(expr):
            if isinstance(node, Slot):
                used.add(node.index)
    return used


def pipeline_shape(pipe: Pipeline, memory) -> str:
    """The backend-level *operator shape* of one pipeline.

    Operator kind x column types x layout, as a stable string: what the
    generated code is a function of, independent of the data it runs
    over (literals, row counts, addresses).  Two queries with equal
    pipeline shapes compile to structurally identical Wasm, which is
    why the tier-0 stencil cache — keyed by a digest of that code —
    hits across them.  This descriptor is the human-readable face of
    that sharing, surfaced per pipeline in ``EXPLAIN ANALYZE``.
    """
    def one(op, role):
        kind = type(op).__name__
        if isinstance(op, P.SeqScan):
            cols = ",".join(
                f"{name}:{col.ty}"
                for name, col in zip(op.columns, op.output)
            )
            chunked = "chunked" if memory is not None and \
                memory.extent_rows.get(op.binding, 0) < \
                memory.row_counts.get(op.binding, 0) else "whole"
            return f"{kind}({cols};{chunked})"
        if isinstance(op, P.IndexSeek):
            return f"{kind}({op.key_column})"
        types = ",".join(str(c.ty) for c in getattr(op, "output", ()) or ())
        return f"{kind}[{types}]" if types and role != "sink" else kind

    stages = [one(pipe.source, "source")]
    stages += [one(op, "stream") for op in pipe.operators]
    stages.append(one(pipe.sink, "sink") if pipe.sink is not None
                  else "Result")
    return " -> ".join(stages)


@dataclass
class PipelineInfo:
    """What the host driver needs to run one pipeline."""

    index: int
    function: str                 # exported function name
    source_kind: str              # scan | indexseek | hashtable | sort | scalar
    source_name: str              # binding / ht name / sort name
    sort_before: str | None = None  # exported sort driver to call first
    is_final: bool = False
    # sink-side cardinality accounting (for EXPLAIN ANALYZE): the
    # generated structure this pipeline feeds, whose exported
    # ``{sink_name}_count`` global holds the rows it produced.  ``scalar``
    # sinks have no count global (always exactly one state row).
    sink_kind: str | None = None  # hashtable | sort | materialize | scalar
    sink_name: str | None = None
    limit_global: str | None = None   # exported row counter for early stop
    limit_total: int | None = None    # offset + limit
    # index-seek bounds for the host's position lookup:
    # (key_column, low, high, low_strict, high_strict)
    seek: tuple | None = None
    #: The operator-shape descriptor (see :func:`pipeline_shape`).
    shape: str = ""


@dataclass
class CompiledQuery:
    """The output of query compilation, consumed by the Wasm engine."""

    module: object
    pipelines: list[PipelineInfo]
    result_layout: TupleLayout
    result_capacity: int
    output_types: list[T.DataType]
    generic_patterns: list[str]
    memory: MemoryPlan
    # $index -> (slot address, type): where the host writes bound
    # parameter values before each execution (empty for plain queries)
    param_layout: dict[int, tuple] = None


class QueryCompiler:
    """Compiles one physical plan into one Wasm module."""

    def __init__(self, memory: MemoryPlan, short_circuit: bool = False,
                 inline_adhoc: bool = True, predication: bool = False):
        """``inline_adhoc=False`` is the ablation of Section 4.3/5: hash
        table and comparison code stays specialized but is invoked through
        per-access function calls (the pre-compiled-library discipline)
        instead of being inlined at the call site.

        ``predication=True`` compiles selections feeding a scalar
        aggregation *branch-free*: the predicate becomes a 0/1 mask
        multiplied into the aggregate updates (Section 4.2 discusses this
        if-conversion; the paper's mutable does not implement it, and
        HyPer's flat Figure-6 curves are attributed to exactly this)."""
        self.memory = memory
        self.inline_adhoc = inline_adhoc
        self.predication = predication
        self.ctx = CompilerContext("query", memory,
                                   short_circuit=short_circuit)
        # per-breaker generated structures
        self._hash_tables: dict[int, GeneratedHashTable] = {}
        self._ht_functions: dict[int, dict[str, int]] = {}
        self._sorts: dict[int, GeneratedSort] = {}
        self._materialized: dict[int, GeneratedSort] = {}
        self._scalar_states: dict[int, tuple] = {}
        self._limit_globals: dict[int, tuple[int, str]] = {}
        self._counter = 0

    # ------------------------------------------------------------------ api --

    def compile(self, plan: P.PhysicalOperator,
                trace=None) -> CompiledQuery:
        pipelines = dissect_into_pipelines(plan)
        for pipe in pipelines:
            self._declare_breakers(pipe)

        result_layout = TupleLayout([
            (f"o{i}", col.ty) for i, col in enumerate(plan.output)
        ])
        result_capacity = max(1, RESULT_REGION_SIZE // result_layout.stride)

        infos = []
        for pipe in pipelines:
            with trace_span(trace, "codegen.pipeline", pipeline=pipe.index):
                infos.append(
                    self._compile_pipeline(pipe, result_layout,
                                           result_capacity)
                )
        module = self.ctx.finish()
        return CompiledQuery(
            module=module,
            pipelines=infos,
            result_layout=result_layout,
            result_capacity=result_capacity,
            output_types=plan.output_types,
            generic_patterns=self.ctx.generic_patterns,
            memory=self.memory,
            param_layout=self.ctx.param_layout,
        )

    # -------------------------------------------------- breaker declarations --

    def _declare_breakers(self, pipe: Pipeline) -> None:
        """Create the generated structures for the pipeline's sink and any
        joins it probes, before function bodies reference them."""
        candidates = [pipe.sink] if pipe.sink is not None else []
        candidates += [op for op in pipe.operators
                       if isinstance(op, (P.HashJoin, P.NestedLoopJoin))]
        candidates.append(pipe.source)
        for op in candidates:
            if op is None or id(op) in self._hash_tables \
                    or id(op) in self._sorts or id(op) in self._scalar_states \
                    or id(op) in self._materialized:
                continue
            if isinstance(op, P.HashJoin):
                self._declare_join_table(op)
            elif isinstance(op, P.HashGroupBy):
                self._declare_group_table(op)
            elif isinstance(op, P.ScalarAggregate):
                self._declare_scalar_state(op)
            elif isinstance(op, P.Sort):
                self._declare_sort(op)
            elif isinstance(op, P.NestedLoopJoin):
                self._declare_materialized(op)

    def _fresh_name(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _declare_join_table(self, op: P.HashJoin) -> None:
        key_types = [k.ty for k in op.build_keys]
        payload = [
            (f"c{i}", col.ty, None) for i, col in enumerate(op.build.output)
        ]
        ht = GeneratedHashTable(
            self.ctx, self._fresh_name("jht"), key_types, payload,
            estimate=int(op.build.estimated_rows),
        )
        self._hash_tables[id(op)] = ht

    def _declare_group_table(self, op: P.HashGroupBy) -> None:
        key_types = [k.ty for k in op.keys]
        payload = []
        for i, agg in enumerate(op.aggregates):
            payload += _aggregate_payload(i, agg)
        ht = GeneratedHashTable(
            self.ctx, self._fresh_name("ght"), key_types, payload,
            estimate=int(op.estimated_rows),
        )
        self._hash_tables[id(op)] = ht

    def _declare_scalar_state(self, op: P.ScalarAggregate) -> None:
        payload = []
        for i, agg in enumerate(op.aggregates):
            payload += _aggregate_payload(i, agg)
        layout = TupleLayout(
            [(name, ty) for name, ty, _ in payload]
        )
        g_state = self.ctx.mb.add_global(
            "i32", 0, name=self._fresh_name("aggstate")
        )

        def init(fb: FunctionBuilder, layout=layout, g_state=g_state,
                 payload=payload):
            fb.i32(layout.stride).call(self.ctx.alloc_function())
            fb.emit("global.set", g_state)
            state = fb.local("i32", "state")
            fb.emit("global.get", g_state).set(state)
            for name, ty, init_value in payload:
                fld = layout.field(name)
                fb.get(state)
                fb.const(ty.wasm_type, init_value)
                fb.emit(fld.store_op, 0, fld.offset)

        self.ctx.add_init(init)
        self._scalar_states[id(op)] = (g_state, layout, payload)

    def _declare_sort(self, op: P.Sort) -> None:
        row_fields = [
            (f"c{i}", col.ty) for i, col in enumerate(op.child.output)
        ]
        # a sort key that is a plain column reuses the row's field
        key_fields = [
            (f"c{key.index}" if isinstance(key, Slot) else f"s{j}",
             key.ty, descending)
            for j, (key, descending) in enumerate(op.order)
        ]
        sorter = GeneratedSort(
            self.ctx, self._fresh_name("sort"), row_fields, key_fields,
            estimate=int(op.child.estimated_rows),
        )
        self._sorts[id(op)] = sorter

    def _declare_materialized(self, op: P.NestedLoopJoin) -> None:
        row_fields = [
            (f"c{i}", col.ty) for i, col in enumerate(op.left.output)
        ]
        array = GeneratedSort(
            self.ctx, self._fresh_name("mat"), row_fields, [],
            estimate=int(op.left.estimated_rows),
        )
        self._materialized[id(op)] = array

    # ------------------------------------------------------ pipeline bodies --

    def _compile_pipeline(self, pipe: Pipeline, result_layout: TupleLayout,
                          result_capacity: int) -> PipelineInfo:
        fb = self.ctx.mb.function(
            f"pipeline_{pipe.index}",
            params=[("i32", "begin"), ("i32", "end")],
            export=True,
        )
        expr_compiler = ExprCompiler(self.ctx, fb, [])
        info = PipelineInfo(
            index=pipe.index,
            function=f"pipeline_{pipe.index}",
            source_kind="scan",
            source_name="",
            is_final=pipe.sink is None,
            shape=pipeline_shape(pipe, self.memory),
        )
        sink = pipe.sink
        if sink is not None:
            key = id(sink)
            if key in self._hash_tables:
                info.sink_kind = "hashtable"
                info.sink_name = self._hash_tables[key].name
            elif key in self._sorts:
                info.sink_kind = "sort"
                info.sink_name = self._sorts[key].name
            elif key in self._materialized:
                info.sink_kind = "materialize"
                info.sink_name = self._materialized[key].name
            elif key in self._scalar_states:
                info.sink_kind = "scalar"

        def body(slots: list[SlotValue]) -> None:
            expr_compiler.slots = slots
            self._emit_operators(
                fb, expr_compiler, pipe.operators, slots, pipe, info,
                result_layout, result_capacity,
            )

        self._emit_source(fb, expr_compiler, pipe, info, body)
        return info

    # -- sources ----------------------------------------------------------------

    def _emit_source(self, fb: FunctionBuilder, expr_compiler,
                     pipe: Pipeline, info: PipelineInfo,
                     body) -> None:
        source = pipe.source
        if isinstance(source, P.SeqScan):
            info.source_kind = "scan"
            info.source_name = source.binding
            self._declare_extent(fb, source.binding)
            self._emit_scan_loop(fb, source, body)
            return
        if isinstance(source, P.IndexSeek):
            info.source_kind = "indexseek"
            info.source_name = source.binding
            self._declare_extent(fb, source.binding)
            info.seek = (source.key_column, source.low, source.high,
                         source.low_strict, source.high_strict)
            self._emit_index_seek_loop(fb, source, body)
            return
        if isinstance(source, P.HashGroupBy):
            ht = self._hash_tables[id(source)]
            info.source_kind = "hashtable"
            info.source_name = ht.name
            self._emit_group_iteration(fb, source, ht, body)
            return
        if isinstance(source, P.ScalarAggregate):
            info.source_kind = "scalar"
            info.source_name = "state"
            self._emit_scalar_read(fb, source, body)
            return
        if isinstance(source, P.Sort):
            sorter = self._sorts[id(source)]
            info.source_kind = "sort"
            info.source_name = sorter.name
            info.sort_before = f"{sorter.name}_sort"
            keep = self._used_slot_indices(pipe.operators, pipe.sink)
            self._emit_array_iteration(fb, source.child.output, sorter, body,
                                       keep)
            # ensure the sort driver exists
            sorter.sort_driver(expr_compiler)
            return
        raise PlanError(
            f"cannot use {type(source).__name__} as a pipeline source"
        )

    def _declare_extent(self, fb: FunctionBuilder, binding: str) -> None:
        """Declare the host's morsel contract ``0 <= begin, end <= extent``
        on a ``pipeline_i(begin, end)`` — the hint that lets the interval
        analysis bound every row address and lets TurboFan elide the
        per-access bounds checks of the scan loop."""
        extent = self.memory.extent_rows.get(binding)
        if extent is not None:
            fb.param_range(0, 0, extent)
            fb.param_range(1, 0, extent)

    def _declare_load_range(self, fb: FunctionBuilder, binding: str,
                            column: str, load_op: str) -> None:
        """Declare the host's value contract on the column load just
        emitted — the catalog-statistics bounds collected into
        ``MemoryPlan.value_ranges`` by the plan analysis.  Integer loads
        only: float intervals carry no elision value and the interval
        domain is integral."""
        if not load_op.startswith(("i32", "i64")):
            return
        bounds = self.memory.value_ranges.get((binding, column))
        if bounds is not None:
            fb.value_range(*bounds)

    def _emit_scan_loop(self, fb: FunctionBuilder, scan: P.SeqScan,
                        body) -> None:
        """The tight per-morsel scan loop: row in [begin, end)."""
        row = fb.local("i32", "row")
        fb.get(0).set(row)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(row).get(1).emit("i32.ge_s")
                fb.br_if(done)
                slots = []
                for col in scan.output:
                    binding, column = col.ref
                    base = self.memory.column_address(binding, column)
                    local = fb.local(
                        col.ty.wasm_type if not col.ty.is_string else "i32",
                        f"v_{column}",
                    )
                    if col.ty.is_string:
                        fb.get(row).i32(col.ty.size).emit("i32.mul")
                        fb.i32(base).emit("i32.add").set(local)
                    else:
                        size = col.ty.size
                        fb.get(row).i32(size).emit("i32.mul")
                        load_op = {
                            ("i32", 1): "i32.load8_s",
                            ("i32", 4): "i32.load",
                            ("i64", 8): "i64.load",
                            ("f64", 8): "f64.load",
                        }[(col.ty.wasm_type, size)]
                        fb.emit(load_op, 0, base)
                        self._declare_load_range(fb, binding, column, load_op)
                        fb.set(local)
                    slots.append(SlotValue(local, col.ty))
                body(slots)
                fb.get(row).i32(1).emit("i32.add").set(row)
                fb.br(top)

    def _emit_index_seek_loop(self, fb: FunctionBuilder,
                              seek: P.IndexSeek, body) -> None:
        """Positions [begin, end) walk the rewired index permutation; the
        row id indirection makes every column access a random load — the
        'non-consecutive data structure mapped into the VM' the paper
        left as future work, solved here because the index is two
        contiguous arrays the rewiring layer can alias."""
        rowid_base = self.memory.column_address(
            seek.binding, f"__index_rowids__{seek.key_column}"
        )
        pos = fb.local("i32", "pos")
        rowid = fb.local("i32", "rowid")
        fb.get(0).set(pos)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(pos).get(1).emit("i32.ge_s")
                fb.br_if(done)
                fb.get(pos).i32(4).emit("i32.mul")
                fb.emit("i32.load", 0, rowid_base)
                self._declare_load_range(
                    fb, seek.binding, f"__index_rowids__{seek.key_column}",
                    "i32.load",
                )
                fb.set(rowid)
                slots = []
                for col in seek.output:
                    binding, column = col.ref
                    base = self.memory.column_address(binding, column)
                    local = fb.local(
                        col.ty.wasm_type if not col.ty.is_string else "i32",
                        f"v_{column}",
                    )
                    if col.ty.is_string:
                        fb.get(rowid).i32(col.ty.size).emit("i32.mul")
                        fb.i32(base).emit("i32.add").set(local)
                    else:
                        size = col.ty.size
                        fb.get(rowid).i32(size).emit("i32.mul")
                        load_op = {
                            ("i32", 1): "i32.load8_s",
                            ("i32", 4): "i32.load",
                            ("i64", 8): "i64.load",
                            ("f64", 8): "f64.load",
                        }[(col.ty.wasm_type, size)]
                        fb.emit(load_op, 0, base)
                        self._declare_load_range(fb, binding, column, load_op)
                        fb.set(local)
                    slots.append(SlotValue(local, col.ty))
                body(slots)
                fb.get(pos).i32(1).emit("i32.add").set(pos)
                fb.br(top)

    def _emit_group_iteration(self, fb: FunctionBuilder, op: P.HashGroupBy,
                              ht: GeneratedHashTable, body) -> None:
        """Iterate the materialized groups: entries [begin, end)."""
        stride = ht.layout.stride
        index = fb.local("i32", "i")
        entry = fb.local("i32", "entry")
        fb.get(0).set(index)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(index).get(1).emit("i32.ge_s")
                fb.br_if(done)
                fb.emit("global.get", ht.g_entries)
                fb.get(index).i32(stride).emit("i32.mul")
                fb.emit("i32.add").set(entry)
                slots = self._load_group_outputs(fb, op, ht, entry)
                body(slots)
                fb.get(index).i32(1).emit("i32.add").set(index)
                fb.br(top)

    def _load_group_outputs(self, fb: FunctionBuilder, op: P.HashGroupBy,
                            ht: GeneratedHashTable,
                            entry: int) -> list[SlotValue]:
        slots = []
        for i, key in enumerate(op.keys):
            fld = ht.layout.field(f"k{i}")
            if key.ty.is_string:
                local = fb.local("i32", f"gk{i}")
                fb.get(entry).i32(fld.offset).emit("i32.add").set(local)
            else:
                local = fb.local(key.ty.wasm_type, f"gk{i}")
                fb.get(entry).emit(fld.load_op, 0, fld.offset).set(local)
            slots.append(SlotValue(local, key.ty))
        for i, agg in enumerate(op.aggregates):
            slots.append(
                self._load_aggregate_output(fb, ht.layout, entry, i, agg)
            )
        return slots

    def _load_aggregate_output(self, fb: FunctionBuilder,
                               layout: TupleLayout, entry: int, i: int,
                               agg: Aggregate) -> SlotValue:
        if agg.kind == "AVG":
            local = fb.local("f64", f"agg{i}")
            sum_field = layout.field(f"a{i}_sum")
            cnt_field = layout.field(f"a{i}_cnt")
            fb.get(entry).emit(sum_field.load_op, 0, sum_field.offset)
            fb.get(entry).emit(cnt_field.load_op, 0, cnt_field.offset)
            fb.emit("f64.convert_i64_s")
            fb.emit("f64.div")
            # empty input (count 0) yields 0.0 in every engine, not NaN
            fb.f64(0.0)
            fb.get(entry).emit(cnt_field.load_op, 0, cnt_field.offset)
            fb.emit("i64.eqz").emit("i32.eqz")
            fb.emit("select")
            fb.set(local)
            return SlotValue(local, T.DOUBLE)
        fld = layout.field(f"a{i}")
        local = fb.local(agg.ty.wasm_type, f"agg{i}")
        fb.get(entry).emit(fld.load_op, 0, fld.offset).set(local)
        return SlotValue(local, agg.ty)

    def _emit_scalar_read(self, fb: FunctionBuilder, op: P.ScalarAggregate,
                          body) -> None:
        g_state, layout, _ = self._scalar_states[id(op)]
        # the host calls pipeline(0, 1): emit the single row unconditionally
        fb.get(0).get(1).emit("i32.lt_s")
        with fb.if_():
            state = fb.local("i32", "state")
            fb.emit("global.get", g_state).set(state)
            slots = [
                self._load_aggregate_output(fb, layout, state, i, agg)
                for i, agg in enumerate(op.aggregates)
            ]
            body(slots)

    def _emit_array_iteration(self, fb: FunctionBuilder, columns,
                              array: GeneratedSort, body,
                              keep: set[int] | None = None) -> None:
        stride = array.layout.stride
        index = fb.local("i32", "i")
        tup = fb.local("i32", "tup")
        fb.get(0).set(index)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(index).get(1).emit("i32.ge_s")
                fb.br_if(done)
                fb.emit("global.get", array.g_base)
                fb.get(index).i32(stride).emit("i32.mul")
                fb.emit("i32.add").set(tup)
                slots = self._load_array_row(fb, columns, array, tup, keep)
                body(slots)
                fb.get(index).i32(1).emit("i32.add").set(index)
                fb.br(top)

    def _load_array_row(self, fb: FunctionBuilder, columns,
                        array: GeneratedSort, tup: int,
                        keep: set[int] | None = None) -> list[SlotValue]:
        slots = []
        for i, col in enumerate(columns):
            if keep is not None and i not in keep:
                slots.append(SlotValue(-1, col.ty))
                continue
            fld = array.layout.field(f"c{i}")
            if col.ty.is_string:
                local = fb.local("i32", f"m{i}")
                fb.get(tup).i32(fld.offset).emit("i32.add").set(local)
            else:
                local = fb.local(col.ty.wasm_type, f"m{i}")
                fb.get(tup).emit(fld.load_op, 0, fld.offset).set(local)
            slots.append(SlotValue(local, col.ty))
        return slots

    # -- streaming operators --------------------------------------------------------

    def _emit_operators(self, fb, expr_compiler, ops, slots, pipe, info,
                        result_layout, result_capacity) -> None:
        if not ops:
            self._emit_sink(fb, expr_compiler, pipe, info, slots,
                            result_layout, result_capacity)
            return
        op, rest = ops[0], ops[1:]
        expr_compiler.slots = slots

        def continue_with(next_slots):
            self._emit_operators(fb, expr_compiler, rest, next_slots, pipe,
                                 info, result_layout, result_capacity)

        if isinstance(op, P.Filter):
            if (self.predication and not rest
                    and isinstance(pipe.sink, P.ScalarAggregate)):
                # branch-free: evaluate the predicate into a 0/1 mask and
                # fold it into the aggregate updates (no control flow)
                mask = fb.local("i32", "mask")
                expr_compiler.emit_boolean(op.predicate)
                fb.set(mask)
                self._emit_predicated_scalar_sink(
                    fb, expr_compiler, pipe.sink, slots, mask
                )
                return
            expr_compiler.emit_boolean(op.predicate)
            with fb.if_():
                continue_with(slots)
            return
        if isinstance(op, P.Project):
            new_slots = [
                self._materialize(fb, expr_compiler, expr, slots)
                for expr in op.exprs
            ]
            continue_with(new_slots)
            return
        if isinstance(op, P.HashJoin):
            keep = self._used_slot_indices(rest, pipe.sink)
            if keep is not None:
                keep = keep | _slot_indices(op.residual)
            self._emit_probe(fb, expr_compiler, op, slots, continue_with,
                             keep)
            return
        if isinstance(op, P.NestedLoopJoin):
            keep = self._used_slot_indices(rest, pipe.sink)
            if keep is not None:
                keep = keep | _slot_indices(op.predicate)
            self._emit_nlj_probe(fb, expr_compiler, op, slots, continue_with,
                                 keep)
            return
        if isinstance(op, P.Limit):
            self._emit_limit(fb, op, info, slots, continue_with)
            return
        raise PlanError(
            f"cannot stream {type(op).__name__} through a pipeline"
        )

    def _materialize(self, fb, expr_compiler, expr, slots) -> SlotValue:
        expr_compiler.slots = slots
        if isinstance(expr, Slot):
            return slots[expr.index]  # pass-through needs no code
        wasm = expr.ty.wasm_type if not expr.ty.is_string else "i32"
        local = fb.local(wasm, "e")
        expr_compiler.emit(expr)
        fb.set(local)
        return SlotValue(local, expr.ty)

    def _used_slot_indices(self, ops, sink) -> set[int] | None:
        """Which slots of the current tuple the rest of the pipeline can
        read.  ``None`` means "all of them": the tuple reaches a sink that
        stores whole rows (result write, join build, sort, materialize).
        Join probes use this to skip loading columns nothing consumes."""
        used: set[int] = set()
        for pos, op in enumerate(ops):
            if isinstance(op, P.Filter):
                used |= _slot_indices(op.predicate)
            elif isinstance(op, P.Limit):
                pass
            elif isinstance(op, P.Project):
                # downstream slots index the projected tuple, not this one
                return used | _slot_indices(*op.exprs)
            elif isinstance(op, (P.HashJoin, P.NestedLoopJoin)):
                if isinstance(op, P.HashJoin):
                    used |= _slot_indices(*op.probe_keys)
                    shift, residual = len(op.build.output), op.residual
                else:
                    shift, residual = len(op.left.output), op.predicate
                inner = self._used_slot_indices(ops[pos + 1:], sink)
                if inner is None:
                    return None
                inner = inner | _slot_indices(residual)
                # this tuple occupies combined indices [shift, ...)
                return used | {i - shift for i in inner if i >= shift}
            else:
                return None
        if isinstance(sink, P.ScalarAggregate):
            return used | _slot_indices(*(a.arg for a in sink.aggregates))
        if isinstance(sink, P.HashGroupBy):
            return (used | _slot_indices(*sink.keys)
                    | _slot_indices(*(a.arg for a in sink.aggregates)))
        return None

    def _emit_probe(self, fb, expr_compiler, op: P.HashJoin, slots,
                    continue_with, keep: set[int] | None = None) -> None:
        """Inline hash-join probe: hashing, chain walk, and key equality
        are emitted at the call site (Section 4.3 — no function call per
        hash-table access)."""
        ht = self._hash_tables[id(op)]
        key_slots = [
            self._materialize(fb, expr_compiler, key, slots)
            for key in op.probe_keys
        ]

        if not self.inline_adhoc:
            self._emit_probe_via_calls(fb, expr_compiler, op, ht,
                                       key_slots, slots, continue_with, keep)
            return

        def on_match(entry: int) -> None:
            build_slots = self._load_build_columns(fb, op, ht, entry, keep)
            combined = build_slots + slots
            expr_compiler.slots = combined
            if op.residual is not None:
                expr_compiler.emit_boolean(op.residual)
                with fb.if_():
                    continue_with(combined)
            else:
                continue_with(combined)
            expr_compiler.slots = slots

        ht.emit_probe_loop(fb, expr_compiler,
                           [s.local for s in key_slots], on_match)

    def _emit_probe_via_calls(self, fb, expr_compiler, op, ht, key_slots,
                              slots, continue_with,
                              keep: set[int] | None = None) -> None:
        """Ablation path: one call per lookup and per chain continuation
        (the pre-compiled-library interface of Listing 3)."""
        functions = self._ht_functions.get(id(op))
        if functions is None:
            functions = self._ht_functions[id(op)] = {
                "lookup": ht.lookup_function(expr_compiler),
                "next": ht.next_match_function(expr_compiler),
            }
        entry = fb.local("i32", "match")
        for slot in key_slots:
            fb.get(slot.local)
        fb.call(functions["lookup"]).set(entry)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(entry).emit("i32.eqz")
                fb.br_if(done)
                build_slots = self._load_build_columns(fb, op, ht, entry,
                                                       keep)
                combined = build_slots + slots
                expr_compiler.slots = combined
                if op.residual is not None:
                    expr_compiler.emit_boolean(op.residual)
                    with fb.if_():
                        continue_with(combined)
                else:
                    continue_with(combined)
                expr_compiler.slots = slots
                fb.get(entry)
                for slot in key_slots:
                    fb.get(slot.local)
                fb.call(functions["next"]).set(entry)
                fb.br(top)

    def _load_build_columns(self, fb, op: P.HashJoin, ht, entry,
                            keep: set[int] | None = None) -> list:
        slots = []
        for i, col in enumerate(op.build.output):
            if keep is not None and i not in keep:
                # nothing downstream reads this column; the -1 sentinel
                # trips validation if that ever stops being true
                slots.append(SlotValue(-1, col.ty))
                continue
            fld = ht.layout.field(f"c{i}")
            if col.ty.is_string:
                local = fb.local("i32", f"b{i}")
                fb.get(entry).i32(fld.offset).emit("i32.add").set(local)
            else:
                local = fb.local(col.ty.wasm_type, f"b{i}")
                fb.get(entry).emit(fld.load_op, 0, fld.offset).set(local)
            slots.append(SlotValue(local, col.ty))
        return slots

    def _emit_nlj_probe(self, fb, expr_compiler, op: P.NestedLoopJoin,
                        slots, continue_with,
                        keep: set[int] | None = None) -> None:
        array = self._materialized[id(op)]
        stride = array.layout.stride
        cursor = fb.local("i32", "cursor")
        end = fb.local("i32", "mat_end")
        fb.emit("global.get", array.g_base).set(cursor)
        fb.get(cursor)
        fb.emit("global.get", array.g_count).i32(stride).emit("i32.mul")
        fb.emit("i32.add").set(end)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(cursor).get(end).emit("i32.ge_u")
                fb.br_if(done)
                left_slots = self._load_array_row(
                    fb, op.left.output, array, cursor, keep
                )
                combined = left_slots + slots
                expr_compiler.slots = combined
                if op.predicate is not None:
                    expr_compiler.emit_boolean(op.predicate)
                    with fb.if_():
                        continue_with(combined)
                else:
                    continue_with(combined)
                expr_compiler.slots = slots
                fb.get(cursor).i32(stride).emit("i32.add").set(cursor)
                fb.br(top)

    def _emit_limit(self, fb, op: P.Limit, info: PipelineInfo, slots,
                    continue_with) -> None:
        record = self._limit_globals.get(id(op))
        if record is None:
            name = self._fresh_name("limit")
            g = self.ctx.mb.add_global("i32", 0, name=name)
            self.ctx.mb.export(name, "global", g)
            record = (g, name)
            self._limit_globals[id(op)] = record
        g, name = record
        info.limit_global = name
        info.limit_total = (op.limit or 0) + op.offset if op.limit is not None \
            else None
        seen = fb.local("i32", "seen")
        fb.emit("global.get", g).set(seen)
        fb.get(seen).i32(1).emit("i32.add")
        fb.emit("global.set", g)
        # offset <= seen < offset + limit
        fb.get(seen).i32(op.offset).emit("i32.ge_s")
        if op.limit is not None:
            fb.get(seen).i32(op.offset + op.limit).emit("i32.lt_s")
            fb.emit("i32.and")
        with fb.if_():
            continue_with(slots)

    # -- sinks -------------------------------------------------------------------------

    def _emit_predicated_scalar_sink(self, fb, expr_compiler,
                                     sink: P.ScalarAggregate, slots,
                                     mask: int) -> None:
        """Aggregate updates with the selection folded in as data flow:
        COUNT += mask; SUM += value * mask; MIN/MAX via select on mask.
        No conditional branch exists in the generated code."""
        g_state, layout, _ = self._scalar_states[id(sink)]
        state = fb.local("i32", "state")
        fb.emit("global.get", g_state).set(state)
        expr_compiler.slots = slots
        for i, agg in enumerate(sink.aggregates):
            if agg.kind == "COUNT":
                fld = layout.field(f"a{i}")
                fb.get(state)
                fb.get(state).emit(fld.load_op, 0, fld.offset)
                fb.get(mask).emit("i64.extend_i32_u").emit("i64.add")
                fb.emit(fld.store_op, 0, fld.offset)
                continue
            if agg.kind == "SUM":
                fld = layout.field(f"a{i}")
                wasm = agg.ty.wasm_type
                fb.get(state)
                fb.get(state).emit(fld.load_op, 0, fld.offset)
                expr_compiler.emit(agg.arg)
                if wasm == "f64":
                    fb.get(mask).emit("f64.convert_i32_u")
                    fb.emit("f64.mul")
                    fb.emit("f64.add")
                else:
                    fb.get(mask)
                    if wasm == "i64":
                        fb.emit("i64.extend_i32_u")
                    fb.emit(f"{wasm}.mul")
                    fb.emit(f"{wasm}.add")
                fb.emit(fld.store_op, 0, fld.offset)
                continue
            if agg.kind == "AVG":
                sum_field = layout.field(f"a{i}_sum")
                cnt_field = layout.field(f"a{i}_cnt")
                fb.get(state)
                fb.get(state).emit(sum_field.load_op, 0, sum_field.offset)
                expr_compiler.emit(agg.arg)
                fb.get(mask).emit("f64.convert_i32_u").emit("f64.mul")
                fb.emit("f64.add")
                fb.emit(sum_field.store_op, 0, sum_field.offset)
                fb.get(state)
                fb.get(state).emit(cnt_field.load_op, 0, cnt_field.offset)
                fb.get(mask).emit("i64.extend_i32_u").emit("i64.add")
                fb.emit(cnt_field.store_op, 0, cnt_field.offset)
                continue
            # MIN / MAX: candidate = mask ? value : current, then the
            # usual branch-free min/max select
            fld = layout.field(f"a{i}")
            wasm = agg.ty.wasm_type
            value = fb.local(wasm, f"pv{i}")
            expr_compiler.emit(agg.arg)
            fb.get(state).emit(fld.load_op, 0, fld.offset)
            fb.get(mask)
            fb.emit("select")
            fb.set(value)
            fb.get(state)
            fb.get(value)
            fb.get(state).emit(fld.load_op, 0, fld.offset)
            fb.get(value)
            fb.get(state).emit(fld.load_op, 0, fld.offset)
            cmp = "lt" if agg.kind == "MIN" else "gt"
            if wasm != "f64":
                cmp += "_s"
            fb.emit(f"{wasm}.{cmp}")
            fb.emit("select")
            fb.emit(fld.store_op, 0, fld.offset)

    def _emit_sink(self, fb, expr_compiler, pipe: Pipeline,
                   info: PipelineInfo, slots, result_layout,
                   result_capacity) -> None:
        sink = pipe.sink
        expr_compiler.slots = slots
        if sink is None:
            self._emit_result_write(fb, expr_compiler, slots, result_layout,
                                    result_capacity)
            return
        if isinstance(sink, P.HashJoin):
            self._emit_build_insert(fb, expr_compiler, sink, slots)
            return
        if isinstance(sink, P.HashGroupBy):
            self._emit_group_update(fb, expr_compiler, sink, slots)
            return
        if isinstance(sink, P.ScalarAggregate):
            g_state, layout, _ = self._scalar_states[id(sink)]
            state = fb.local("i32", "state")
            fb.emit("global.get", g_state).set(state)
            self._emit_aggregate_updates(fb, expr_compiler, sink.aggregates,
                                         layout, state, slots)
            return
        if isinstance(sink, P.Sort):
            self._emit_sort_append(fb, expr_compiler, sink, slots)
            return
        if isinstance(sink, P.NestedLoopJoin):
            self._emit_materialize_append(fb, expr_compiler, sink, slots)
            return
        raise PlanError(f"cannot sink into {type(sink).__name__}")

    def _emit_build_insert(self, fb, expr_compiler, op: P.HashJoin,
                           slots) -> None:
        ht = self._hash_tables[id(op)]
        key_slots = [
            self._materialize(fb, expr_compiler, key, slots)
            for key in op.build_keys
        ]
        if self.inline_adhoc:
            entry = ht.emit_insert_inline(fb, [s.local for s in key_slots])
        else:
            functions = self._ht_functions.setdefault(id(op), {})
            if "insert" not in functions:
                functions["insert"] = ht.insert_function()
            entry = fb.local("i32", "entry")
            for slot in key_slots:
                fb.get(slot.local)
            fb.call(functions["insert"]).set(entry)
        self._store_fields(fb, ht.layout, entry, "c", slots)

    def _store_fields(self, fb, layout: TupleLayout, base_local: int,
                      prefix: str, slots: list[SlotValue]) -> None:
        memcpy = self.ctx.memcpy_function()
        for i, slot in enumerate(slots):
            fld = layout.field(f"{prefix}{i}")
            if slot.ty.is_string:
                fb.get(base_local).i32(fld.offset).emit("i32.add")
                fb.get(slot.local)
                fb.i32(slot.ty.size)
                fb.call(memcpy)
            else:
                fb.get(base_local)
                fb.get(slot.local)
                fb.emit(fld.store_op, 0, fld.offset)

    def _emit_group_update(self, fb, expr_compiler, op: P.HashGroupBy,
                           slots) -> None:
        ht = self._hash_tables[id(op)]
        key_slots = [
            self._materialize(fb, expr_compiler, key, slots)
            for key in op.keys
        ]
        if self.inline_adhoc:
            entry = ht.emit_upsert_inline(fb, expr_compiler,
                                          [s.local for s in key_slots])
        else:
            upsert = self.ctx.helper(
                (id(op), "upsert"),
                lambda ctx: _FunctionIndexWrapper(
                    ht.upsert_function(expr_compiler)
                ),
            )
            entry = fb.local("i32", "entry")
            for slot in key_slots:
                fb.get(slot.local)
            fb.call(upsert).set(entry)
        self._emit_aggregate_updates(fb, expr_compiler, op.aggregates,
                                     ht.layout, entry, slots)

    def _emit_aggregate_updates(self, fb, expr_compiler,
                                aggregates: list[Aggregate],
                                layout: TupleLayout, entry: int,
                                slots) -> None:
        """Fully inlined aggregate maintenance on a materialized entry."""
        expr_compiler.slots = slots
        for i, agg in enumerate(aggregates):
            if agg.kind == "COUNT":
                fld = layout.field(f"a{i}")
                fb.get(entry)
                fb.get(entry).emit(fld.load_op, 0, fld.offset)
                fb.i64(1).emit("i64.add")
                fb.emit(fld.store_op, 0, fld.offset)
                continue
            if agg.kind == "AVG":
                sum_field = layout.field(f"a{i}_sum")
                cnt_field = layout.field(f"a{i}_cnt")
                fb.get(entry)
                fb.get(entry).emit(sum_field.load_op, 0, sum_field.offset)
                expr_compiler.emit(agg.arg)
                fb.emit("f64.add")
                fb.emit(sum_field.store_op, 0, sum_field.offset)
                fb.get(entry)
                fb.get(entry).emit(cnt_field.load_op, 0, cnt_field.offset)
                fb.i64(1).emit("i64.add")
                fb.emit(cnt_field.store_op, 0, cnt_field.offset)
                continue
            fld = layout.field(f"a{i}")
            wasm = agg.ty.wasm_type
            if agg.kind == "SUM":
                fb.get(entry)
                fb.get(entry).emit(fld.load_op, 0, fld.offset)
                expr_compiler.emit(agg.arg)
                fb.emit(f"{wasm}.add")
                fb.emit(fld.store_op, 0, fld.offset)
                continue
            # MIN / MAX: branch-free via select (cf. Fig. 7d discussion)
            value = fb.local(wasm, f"v{i}")
            expr_compiler.emit(agg.arg)
            fb.set(value)
            fb.get(entry)
            fb.get(value)
            fb.get(entry).emit(fld.load_op, 0, fld.offset)
            fb.get(value)
            fb.get(entry).emit(fld.load_op, 0, fld.offset)
            cmp = "lt" if agg.kind == "MIN" else "gt"
            if wasm != "f64":
                cmp += "_s"
            fb.emit(f"{wasm}.{cmp}")
            fb.emit("select")
            fb.emit(fld.store_op, 0, fld.offset)

    def _emit_sort_append(self, fb, expr_compiler, op: P.Sort,
                          slots) -> None:
        sorter = self._sorts[id(op)]
        dst = sorter.emit_append_slot(fb)
        self._store_fields(fb, sorter.layout, dst, "c", slots)
        # materialize computed sort keys next to the row (plain-column
        # keys already live in the row fields)
        memcpy = self.ctx.memcpy_function()
        for j, (key, _descending) in enumerate(op.order):
            if isinstance(key, Slot):
                continue
            fld = sorter.layout.field(f"s{j}")
            if key.ty.is_string:
                fb.get(dst).i32(fld.offset).emit("i32.add")
                expr_compiler.emit(key)
                fb.i32(key.ty.size)
                fb.call(memcpy)
            else:
                fb.get(dst)
                expr_compiler.emit(key)
                fb.emit(fld.store_op, 0, fld.offset)

    def _emit_materialize_append(self, fb, expr_compiler,
                                 op: P.NestedLoopJoin, slots) -> None:
        array = self._materialized[id(op)]
        dst = array.emit_append_slot(fb)
        self._store_fields(fb, array.layout, dst, "c", slots)

    def _emit_result_write(self, fb, expr_compiler, slots,
                           result_layout: TupleLayout,
                           result_capacity: int) -> None:
        ctx = self.ctx
        # flush when the rewired result window is full (Figure 5)
        fb.emit("global.get", ctx.result_count)
        fb.i32(result_capacity).emit("i32.ge_s")
        with fb.if_():
            fb.call(ctx.flush_results)
        dst = fb.local("i32", "dst")
        fb.emit("global.get", ctx.result_count)
        fb.i32(result_layout.stride).emit("i32.mul")
        fb.i32(self.memory.result_base).emit("i32.add").set(dst)
        self._store_fields(fb, result_layout, dst, "o", slots)
        fb.emit("global.get", ctx.result_count)
        fb.i32(1).emit("i32.add")
        fb.emit("global.set", ctx.result_count)


class _FunctionIndexWrapper:
    """Adapter so ``CompilerContext.helper`` can memoize a function that
    was generated through another component's API."""

    def __init__(self, func_index: int):
        self.func_index = func_index


def _aggregate_payload(i: int, agg: Aggregate) -> list[tuple]:
    """Payload fields (name, type, initial value) for one aggregate."""
    if agg.kind == "COUNT":
        return [(f"a{i}", T.INT64, 0)]
    if agg.kind == "AVG":
        return [(f"a{i}_sum", T.DOUBLE, 0.0), (f"a{i}_cnt", T.INT64, 0)]
    if agg.kind == "SUM":
        zero = 0.0 if agg.ty.is_floating else 0
        return [(f"a{i}", agg.ty, zero)]
    return [(f"a{i}", agg.ty, sentinel_for(agg.kind, agg.ty))]
