"""Ad-hoc generation of specialized hash tables (paper Sections 4.3, 5).

For every grouping or join operator the compiler generates a *fresh*
chaining hash table whose key hashing, key comparison, insertion, growth
and rehashing are monomorphic Wasm code specialized to the exact key and
payload types of that operator — the paper's answer to type-agnostic
pre-compiled libraries with their per-element callbacks:

* key hashing is emitted inline (Fibonacci multiply for integers, FNV-1a
  over the padded bytes for strings),
* key equality is emitted inline (no comparison callback),
* upsert / insert / probe are emitted INLINE at their pipeline call
  sites (``emit_upsert_inline`` / ``emit_insert_inline`` /
  ``emit_probe_loop``) — the whole point of Section 4.3; the
  ``*_function`` variants remain as the per-access-call ablation
  (``QueryCompiler(inline_adhoc=False)``),
* entries are fixed-stride structs in one contiguous region, so a later
  pipeline can iterate the materialized groups morsel-wise,
* growth doubles the entry region and re-links all buckets using the
  *stored* hash — generated per table, as Section 4.3 demands.

Memory layout of an entry::

    [ next: i32 ][ hash: u32 ][ key fields ... ][ payload fields ... ]
"""

from __future__ import annotations

from repro.backend.layout import TupleLayout
from repro.sql.types import DataType
from repro.wasm.builder import FunctionBuilder

__all__ = ["GeneratedHashTable", "MIN_SENTINELS", "MAX_SENTINELS",
           "sentinel_for"]

_GOLDEN64 = -0x61C8864680B583EB  # 0x9E3779B97F4A7C15 as signed i64

# Sentinels initializing MIN/MAX aggregate fields.
MIN_SENTINELS = {"i32": 2**31 - 1, "i64": 2**63 - 1, "f64": float("inf")}
MAX_SENTINELS = {"i32": -(2**31), "i64": -(2**63), "f64": float("-inf")}


def sentinel_for(kind: str, ty: DataType):
    table = MIN_SENTINELS if kind == "MIN" else MAX_SENTINELS
    return table[ty.wasm_type]


def _next_pow2(n: int) -> int:
    p = 1
    while p < n:
        p <<= 1
    return p


class GeneratedHashTable:
    """One specialized hash table inside a query module.

    Args:
        ctx: the compiler context.
        name: unique name within the module (e.g. ``"ht0"``).
        key_types: the grouping/join key types, in order.
        payload_fields: ``(name, type, init)`` triples; ``init`` is the
            constant initial value stored on entry creation (aggregate
            identity / sentinel), or ``None`` to leave uninitialized
            (join payloads, overwritten right away).
        estimate: expected number of entries (sizes buckets and region).
    """

    def __init__(self, ctx, name: str, key_types: list[DataType],
                 payload_fields: list[tuple[str, DataType, object]],
                 estimate: int):
        self.ctx = ctx
        self.name = name
        self.key_types = key_types
        self.payload_fields = payload_fields
        fields = [(f"k{i}", ty) for i, ty in enumerate(key_types)]
        fields += [(fname, ty) for fname, ty, _ in payload_fields]
        self.layout = TupleLayout(fields, header=8)
        self.initial_entries = max(64, _next_pow2(int(estimate) + 1))
        self.initial_buckets = _next_pow2(max(16, 2 * int(estimate)))

        mb = ctx.mb
        self.g_buckets = mb.add_global("i32", 0, name=f"{name}_buckets")
        self.g_mask = mb.add_global("i32", 0, name=f"{name}_mask")
        self.g_entries = mb.add_global("i32", 0, name=f"{name}_entries")
        self.g_count = mb.add_global("i32", 0, name=f"{name}_count")
        self.g_capacity = mb.add_global("i32", 0, name=f"{name}_capacity")
        mb.export(f"{name}_count", "global", self.g_count)
        mb.export(f"{name}_entries", "global", self.g_entries)

        ctx.add_init(self._emit_init)
        self._grow_index: int | None = None

    # -- init --------------------------------------------------------------

    def _emit_init(self, fb: FunctionBuilder) -> None:
        alloc = self.ctx.alloc_function()
        memzero = self.ctx.memzero_function()
        fb.i32(self.initial_buckets * 4).call(alloc)
        fb.emit("global.set", self.g_buckets)
        fb.emit("global.get", self.g_buckets)
        fb.i32(self.initial_buckets * 4).call(memzero)
        fb.i32(self.initial_buckets - 1)
        fb.emit("global.set", self.g_mask)
        fb.i32(self.initial_entries * self.layout.stride).call(alloc)
        fb.emit("global.set", self.g_entries)
        fb.i32(self.initial_entries)
        fb.emit("global.set", self.g_capacity)
        fb.i32(0)
        fb.emit("global.set", self.g_count)

    # -- key parameter conventions -------------------------------------------

    def _key_params(self) -> list[tuple[str, str]]:
        """Wasm parameter list for the key values (strings as addresses)."""
        return [
            (ty.wasm_type if not ty.is_string else "i32", f"k{i}")
            for i, ty in enumerate(self.key_types)
        ]

    # -- inline hash computation ------------------------------------------------

    def emit_hash(self, fb: FunctionBuilder, key_locals: list[int]) -> int:
        """Emit hashing of the keys in ``key_locals``; returns an i32
        local holding the finished 32-bit hash (never 0-sensitive)."""
        h = fb.local("i64", "h")
        fb.i64(_GOLDEN64).set(h)
        for ty, local in zip(self.key_types, key_locals):
            if ty.is_string:
                fb.get(local)
                fb.call(self._hash_bytes_helper(ty.size))
            else:
                fb.get(local)
                if ty.wasm_type == "i32":
                    fb.emit("i64.extend_i32_s")
                elif ty.wasm_type == "f64":
                    fb.emit("i64.reinterpret_f64")
                fb.i64(_GOLDEN64).emit("i64.mul")
            # h = rotl(h, 27) ^ mixed
            fb.get(h).i64(27).emit("i64.rotl")
            fb.emit("i64.xor").set(h)
        out = fb.local("i32", "h32")
        fb.get(h).i64(33).emit("i64.shr_u").get(h).emit("i64.xor")
        fb.emit("i32.wrap_i64").set(out)
        return out

    def _hash_bytes_helper(self, width: int) -> int:
        """Generated FNV-1a over ``width`` padded bytes -> i64."""
        def generate(ctx):
            fb = ctx.mb.function(f"hash_bytes_{width}",
                                 params=[("i32", "addr")], results=["i64"])
            h = fb.local("i64", "h")
            i = fb.local("i32", "i")
            fb.i64(-3750763034362895579).set(h)  # FNV offset basis
            with fb.block() as done:
                with fb.loop() as top:
                    fb.get(i).i32(width).emit("i32.ge_u")
                    fb.br_if(done)
                    fb.get(h)
                    fb.get(0).get(i).emit("i32.add")
                    fb.emit("i32.load8_u", 0, 0)
                    fb.emit("i64.extend_i32_u")
                    fb.emit("i64.xor")
                    fb.i64(1099511628211).emit("i64.mul").set(h)
                    fb.get(i).i32(1).emit("i32.add").set(i)
                    fb.br(top)
            fb.get(h)
            return fb

        return self.ctx.helper(("hash_bytes", width), generate)

    # -- inline key equality -------------------------------------------------------

    def emit_keys_equal(self, fb: FunctionBuilder, entry_local: int,
                        key_locals: list[int], expr_compiler) -> None:
        """Emit code leaving i32 0/1: do the entry's keys equal the values
        in ``key_locals``?  Comparisons are fully inlined/monomorphic."""
        first = True
        for i, ty in enumerate(self.key_types):
            field = self.layout.field(f"k{i}")
            if ty.is_string:
                fb.get(entry_local).i32(field.offset).emit("i32.add")
                fb.get(key_locals[i])
                fb.call(expr_compiler._streq_helper(ty.size, ty.size))
            else:
                fb.get(entry_local)
                fb.emit(field.load_op, 0, field.offset)
                fb.get(key_locals[i])
                fb.emit(f"{ty.wasm_type}.eq")
            if not first:
                fb.emit("i32.and")
            first = False
        if first:  # no keys: always equal
            fb.i32(1)

    # -- key/payload stores -----------------------------------------------------------

    def emit_store_keys(self, fb: FunctionBuilder, entry_local: int,
                        key_locals: list[int]) -> None:
        memcpy = self.ctx.memcpy_function()
        for i, ty in enumerate(self.key_types):
            field = self.layout.field(f"k{i}")
            if ty.is_string:
                fb.get(entry_local).i32(field.offset).emit("i32.add")
                fb.get(key_locals[i])
                fb.i32(ty.size)
                fb.call(memcpy)
            else:
                fb.get(entry_local)
                fb.get(key_locals[i])
                fb.emit(field.store_op, 0, field.offset)

    def emit_init_payload(self, fb: FunctionBuilder, entry_local: int) -> None:
        for fname, ty, init in self.payload_fields:
            if init is None:
                continue
            field = self.layout.field(fname)
            fb.get(entry_local)
            fb.const(ty.wasm_type, init)
            fb.emit(field.store_op, 0, field.offset)

    # -- generated functions --------------------------------------------------------------

    def grow_function(self) -> int:
        """Generated growth: double the entry region, copy, re-link all
        buckets from the stored hashes (the generated rehash the paper
        calls out in Section 4.3)."""
        if self._grow_index is not None:
            return self._grow_index
        ctx = self.ctx
        stride = self.layout.stride
        fb = ctx.mb.function(f"{self.name}_grow")
        alloc = ctx.alloc_function()
        memzero = ctx.memzero_function()
        memcpy = ctx.memcpy_function()
        new_entries = fb.local("i32", "new_entries")
        new_buckets = fb.local("i32", "new_buckets")
        new_nbuckets = fb.local("i32", "new_nbuckets")
        entry = fb.local("i32", "entry")
        end = fb.local("i32", "end")
        slot = fb.local("i32", "slot")

        # new entry region: double capacity, copy the old entries
        fb.emit("global.get", self.g_capacity).i32(1).emit("i32.shl")
        fb.emit("global.set", self.g_capacity)
        fb.emit("global.get", self.g_capacity).i32(stride).emit("i32.mul")
        fb.call(alloc).set(new_entries)
        fb.get(new_entries)
        fb.emit("global.get", self.g_entries)
        fb.emit("global.get", self.g_count).i32(stride).emit("i32.mul")
        fb.call(memcpy)
        fb.get(new_entries).emit("global.set", self.g_entries)

        # new bucket array: 2 * capacity, zeroed
        fb.emit("global.get", self.g_capacity).i32(1).emit("i32.shl")
        fb.set(new_nbuckets)
        fb.get(new_nbuckets).i32(1).emit("i32.sub")
        fb.emit("global.set", self.g_mask)
        fb.get(new_nbuckets).i32(2).emit("i32.shl").call(alloc)
        fb.set(new_buckets)
        fb.get(new_buckets)
        fb.get(new_nbuckets).i32(2).emit("i32.shl")
        fb.call(memzero)
        fb.get(new_buckets).emit("global.set", self.g_buckets)

        # re-link every entry via its stored hash
        fb.emit("global.get", self.g_entries).set(entry)
        fb.get(entry)
        fb.emit("global.get", self.g_count).i32(stride).emit("i32.mul")
        fb.emit("i32.add").set(end)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(entry).get(end).emit("i32.ge_u")
                fb.br_if(done)
                # slot = buckets + 4 * (hash & mask)
                fb.get(entry).emit("i32.load", 0, 4)  # stored hash
                fb.emit("global.get", self.g_mask).emit("i32.and")
                fb.i32(2).emit("i32.shl").get(new_buckets).emit("i32.add")
                fb.set(slot)
                # entry.next = *slot ; *slot = entry
                fb.get(entry).get(slot).emit("i32.load", 0, 0)
                fb.emit("i32.store", 0, 0)
                fb.get(slot).get(entry).emit("i32.store", 0, 0)
                fb.get(entry).i32(stride).emit("i32.add").set(entry)
                fb.br(top)
        self._grow_index = fb.func_index
        return self._grow_index

    # -- inline emission (the paper's point: no call per access) ---------------

    def emit_find_slot(self, fb: FunctionBuilder, h32: int, slot: int) -> None:
        """slot = buckets + 4 * (hash & mask)."""
        fb.get(h32).emit("global.get", self.g_mask).emit("i32.and")
        fb.i32(2).emit("i32.shl")
        fb.emit("global.get", self.g_buckets).emit("i32.add").set(slot)

    def emit_append_entry(self, fb: FunctionBuilder, h32: int, slot: int,
                          entry: int, key_locals: list[int]) -> None:
        """Inline: grow if full, reserve the next entry, link it into the
        bucket chain, store hash + keys."""
        fb.emit("global.get", self.g_count)
        fb.emit("global.get", self.g_capacity).emit("i32.ge_u")
        with fb.if_():
            fb.call(self.grow_function())
            # growth moved the bucket array: recompute the slot
            self.emit_find_slot(fb, h32, slot)
        fb.emit("global.get", self.g_entries)
        fb.emit("global.get", self.g_count)
        fb.i32(self.layout.stride).emit("i32.mul")
        fb.emit("i32.add").set(entry)
        fb.emit("global.get", self.g_count).i32(1).emit("i32.add")
        fb.emit("global.set", self.g_count)
        fb.get(entry).get(slot).emit("i32.load", 0, 0)
        fb.emit("i32.store", 0, 0)  # entry.next = *slot
        fb.get(slot).get(entry).emit("i32.store", 0, 0)
        fb.get(entry).get(h32).emit("i32.store", 0, 4)
        self.emit_store_keys(fb, entry, key_locals)

    def emit_upsert_inline(self, fb: FunctionBuilder, expr_compiler,
                           key_locals: list[int]) -> int:
        """Inline lookup-or-insert; leaves the entry address in the
        returned local.  Everything — hashing, chain walk, key equality,
        growth trigger, payload init — happens at the call site, exactly
        as Section 4.3 demands (no per-access function call)."""
        entry = fb.local("i32", "entry")
        slot = fb.local("i32", "slot")
        h32 = self.emit_hash(fb, key_locals)
        self.emit_find_slot(fb, h32, slot)
        with fb.block() as found:
            with fb.block() as miss:
                fb.get(slot).emit("i32.load", 0, 0).set(entry)
                with fb.loop() as walk:
                    fb.get(entry).emit("i32.eqz")
                    fb.br_if(miss)
                    fb.get(entry).emit("i32.load", 0, 4)
                    fb.get(h32).emit("i32.eq")
                    with fb.if_():
                        self.emit_keys_equal(fb, entry, key_locals,
                                             expr_compiler)
                        fb.br_if(found)
                    fb.get(entry).emit("i32.load", 0, 0).set(entry)
                    fb.br(walk)
            # miss: append a fresh entry with initialized aggregates
            self.emit_append_entry(fb, h32, slot, entry, key_locals)
            self.emit_init_payload(fb, entry)
        return entry

    def emit_insert_inline(self, fb: FunctionBuilder,
                           key_locals: list[int]) -> int:
        """Inline append-only insert (join build); returns entry local."""
        entry = fb.local("i32", "entry")
        slot = fb.local("i32", "slot")
        h32 = self.emit_hash(fb, key_locals)
        self.emit_find_slot(fb, h32, slot)
        self.emit_append_entry(fb, h32, slot, entry, key_locals)
        return entry

    def emit_probe_loop(self, fb: FunctionBuilder, expr_compiler,
                        key_locals: list[int], body) -> None:
        """Inline probe: walk the whole bucket chain; for every entry with
        equal hash and keys, run ``body(entry_local)`` — the comparison is
        monomorphic inline code, not a callback."""
        entry = fb.local("i32", "match")
        h32 = self.emit_hash(fb, key_locals)
        fb.get(h32).emit("global.get", self.g_mask).emit("i32.and")
        fb.i32(2).emit("i32.shl")
        fb.emit("global.get", self.g_buckets).emit("i32.add")
        fb.emit("i32.load", 0, 0).set(entry)
        with fb.block() as done:
            with fb.loop() as walk:
                fb.get(entry).emit("i32.eqz")
                fb.br_if(done)
                fb.get(entry).emit("i32.load", 0, 4)
                fb.get(h32).emit("i32.eq")
                with fb.if_():
                    self.emit_keys_equal(fb, entry, key_locals,
                                         expr_compiler)
                    with fb.if_():
                        body(entry)
                fb.get(entry).emit("i32.load", 0, 0).set(entry)
                fb.br(walk)

    def upsert_function(self, expr_compiler) -> int:
        """Generated lookup-or-insert, keys fully inlined.

        Signature: ``(key values...) -> entry address``.  New entries get
        their payload fields initialized to the configured constants.
        """
        ctx = self.ctx
        stride = self.layout.stride
        fb = ctx.mb.function(f"{self.name}_upsert",
                             params=self._key_params(), results=["i32"])
        key_locals = list(range(len(self.key_types)))
        entry = fb.local("i32", "entry")
        slot = fb.local("i32", "slot")
        h32 = self.emit_hash(fb, key_locals)

        # probe the chain
        with fb.block() as miss:
            fb.get(h32).emit("global.get", self.g_mask).emit("i32.and")
            fb.i32(2).emit("i32.shl")
            fb.emit("global.get", self.g_buckets).emit("i32.add").set(slot)
            fb.get(slot).emit("i32.load", 0, 0).set(entry)
            with fb.loop() as walk:
                fb.get(entry).emit("i32.eqz")
                fb.br_if(miss)
                fb.get(entry).emit("i32.load", 0, 4)
                fb.get(h32).emit("i32.eq")
                with fb.if_():
                    self.emit_keys_equal(fb, entry, key_locals, expr_compiler)
                    with fb.if_():
                        fb.get(entry).ret()
                fb.get(entry).emit("i32.load", 0, 0).set(entry)
                fb.br(walk)

        # miss: grow if full, then append + link
        fb.emit("global.get", self.g_count)
        fb.emit("global.get", self.g_capacity).emit("i32.ge_u")
        with fb.if_():
            fb.call(self.grow_function())
            # growth moved the bucket array: recompute the slot
            fb.get(h32).emit("global.get", self.g_mask).emit("i32.and")
            fb.i32(2).emit("i32.shl")
            fb.emit("global.get", self.g_buckets).emit("i32.add").set(slot)
        fb.emit("global.get", self.g_entries)
        fb.emit("global.get", self.g_count).i32(stride).emit("i32.mul")
        fb.emit("i32.add").set(entry)
        fb.emit("global.get", self.g_count).i32(1).emit("i32.add")
        fb.emit("global.set", self.g_count)
        fb.get(entry).get(slot).emit("i32.load", 0, 0)
        fb.emit("i32.store", 0, 0)  # entry.next = *slot
        fb.get(slot).get(entry).emit("i32.store", 0, 0)
        fb.get(entry).get(h32).emit("i32.store", 0, 4)
        self.emit_store_keys(fb, entry, key_locals)
        self.emit_init_payload(fb, entry)
        fb.get(entry)
        return fb.func_index

    def insert_function(self) -> int:
        """Generated append-only insert for join builds (duplicates kept).

        Signature: ``(key values...) -> entry address``; the caller then
        stores the payload columns into the returned entry.
        """
        ctx = self.ctx
        stride = self.layout.stride
        fb = ctx.mb.function(f"{self.name}_insert",
                             params=self._key_params(), results=["i32"])
        key_locals = list(range(len(self.key_types)))
        entry = fb.local("i32", "entry")
        slot = fb.local("i32", "slot")
        h32 = self.emit_hash(fb, key_locals)

        fb.emit("global.get", self.g_count)
        fb.emit("global.get", self.g_capacity).emit("i32.ge_u")
        with fb.if_():
            fb.call(self.grow_function())
        fb.get(h32).emit("global.get", self.g_mask).emit("i32.and")
        fb.i32(2).emit("i32.shl")
        fb.emit("global.get", self.g_buckets).emit("i32.add").set(slot)
        fb.emit("global.get", self.g_entries)
        fb.emit("global.get", self.g_count).i32(stride).emit("i32.mul")
        fb.emit("i32.add").set(entry)
        fb.emit("global.get", self.g_count).i32(1).emit("i32.add")
        fb.emit("global.set", self.g_count)
        fb.get(entry).get(slot).emit("i32.load", 0, 0)
        fb.emit("i32.store", 0, 0)
        fb.get(slot).get(entry).emit("i32.store", 0, 0)
        fb.get(entry).get(h32).emit("i32.store", 0, 4)
        self.emit_store_keys(fb, entry, key_locals)
        fb.get(entry)
        return fb.func_index

    def lookup_function(self, expr_compiler) -> int:
        """Generated probe: first chain entry with equal keys, or 0."""
        fb = self.ctx.mb.function(f"{self.name}_lookup",
                                  params=self._key_params(), results=["i32"])
        key_locals = list(range(len(self.key_types)))
        entry = fb.local("i32", "entry")
        h32 = self.emit_hash(fb, key_locals)
        fb.get(h32).emit("global.get", self.g_mask).emit("i32.and")
        fb.i32(2).emit("i32.shl")
        fb.emit("global.get", self.g_buckets).emit("i32.add")
        fb.emit("i32.load", 0, 0).set(entry)
        with fb.loop() as walk:
            fb.get(entry).emit("i32.eqz")
            with fb.if_():
                fb.i32(0).ret()
            fb.get(entry).emit("i32.load", 0, 4)
            fb.get(h32).emit("i32.eq")
            with fb.if_():
                self.emit_keys_equal(fb, entry, key_locals, expr_compiler)
                with fb.if_():
                    fb.get(entry).ret()
            fb.get(entry).emit("i32.load", 0, 0).set(entry)
            fb.br(walk)
        fb.emit("unreachable")
        return fb.func_index

    def next_match_function(self, expr_compiler) -> int:
        """Generated chain continuation: next entry with equal keys, or 0."""
        params = [("i32", "entry")] + self._key_params()
        fb = self.ctx.mb.function(f"{self.name}_next",
                                  params=params, results=["i32"])
        entry = 0
        key_locals = list(range(1, 1 + len(self.key_types)))
        current = fb.local("i32", "current")
        fb.get(entry).emit("i32.load", 0, 0).set(current)
        with fb.loop() as walk:
            fb.get(current).emit("i32.eqz")
            with fb.if_():
                fb.i32(0).ret()
            self.emit_keys_equal(fb, current, key_locals, expr_compiler)
            with fb.if_():
                fb.get(current).ret()
            fb.get(current).emit("i32.load", 0, 0).set(current)
            fb.br(walk)
        fb.emit("unreachable")
        return fb.func_index
