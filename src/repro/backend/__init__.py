"""The mutable-style backend: QEP -> WebAssembly.

This package is the paper's primary contribution: data-centric,
pipeline-wise compilation of physical plans to WebAssembly (Section 4),
with **ad-hoc generation of specialized library code** — hash tables with
fully inlined, monomorphic key hashing/comparison, and quicksort with the
comparator inlined into the partitioning loop (Section 5).

Entry point: :class:`repro.backend.codegen.QueryCompiler`, used by
:class:`repro.engines.wasm_engine.WasmEngine`.
"""

from repro.backend.codegen import CompiledQuery, QueryCompiler

__all__ = ["CompiledQuery", "QueryCompiler"]
