"""Compiling the lowered expression IR to WebAssembly.

Scalar values travel on the Wasm operand stack (i32 for INT32 / DATE /
BOOLEAN, i64 for INT64 / DECIMAL, f64 for DOUBLE); strings travel as
i32 *addresses* into linear memory (a base-table column, a hash-table
entry, or the constant pool).

String operations showcase the paper's ad-hoc library generation: every
comparison/LIKE against a given width is generated as a specialized,
monomorphic function once per query — no type-agnostic callbacks, no
pre-compiled ``memcmp``.

Conjunctions compile without short-circuiting by default ("mutable does
not implement short-circuit evaluation and instead evaluates the
selection as a whole", Section 8.2) — a single data dependency chain and
one branch per selection, which produces the Figure-6 behaviour; pass
``short_circuit=True`` to the compiler for the ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import PlanError
from repro.plan import exprs as E
from repro.sql import types as T
from repro.wasm.builder import FunctionBuilder

__all__ = ["SlotValue", "ExprCompiler"]


@dataclass(frozen=True)
class SlotValue:
    """Where one input-tuple slot lives: a Wasm local.

    For string slots the local holds the *address* of the padded bytes.
    """

    local: int
    ty: T.DataType


_CMP_SUFFIX = {"=": "eq", "<>": "ne", "<": "lt", "<=": "le", ">": "gt",
               ">=": "ge"}


class ExprCompiler:
    """Emits one expression's code into a function being built."""

    def __init__(self, ctx, fb: FunctionBuilder, slots: list[SlotValue]):
        self.ctx = ctx
        self.fb = fb
        self.slots = slots

    # -- entry points --------------------------------------------------------

    def emit(self, expr: E.LExpr) -> None:
        """Emit code leaving the expression's value on the stack."""
        method = getattr(self, f"_emit_{type(expr).__name__.lower()}", None)
        if method is None:
            raise PlanError(f"wasm backend cannot compile {type(expr).__name__}")
        method(expr)

    def emit_boolean(self, expr: E.LExpr) -> None:
        """Emit a predicate as an i32 0/1 value."""
        self.emit(expr)

    # -- leaves -----------------------------------------------------------------

    def _emit_slot(self, expr: E.Slot) -> None:
        self.fb.get(self.slots[expr.index].local)

    def _emit_const(self, expr: E.Const) -> None:
        ty = expr.ty
        if ty.is_string:
            width = ty.size
            raw = expr.value if isinstance(expr.value, bytes) else bytes(expr.value)
            self.fb.i32(self.ctx.intern_bytes(raw.ljust(width, b"\x00")))
            return
        wasm = ty.wasm_type
        if wasm == "f64":
            self.fb.f64(float(expr.value))
        elif wasm == "i64":
            self.fb.i64(int(expr.value))
        else:
            self.fb.i32(int(expr.value))

    def _emit_param(self, expr: E.Param) -> None:
        """A prepared-statement parameter: load from its fixed slot.

        Unlike a constant the value is *not* baked into the code — the
        host rewrites the slot before every execution, so the same
        compiled module serves every binding.
        """
        addr = self.ctx.param_address(expr.index, expr.ty)
        if expr.ty.is_string:
            self.fb.i32(addr)  # strings travel as addresses
            return
        wasm = expr.ty.wasm_type
        self.fb.i32(addr)
        self.fb.emit(f"{wasm}.load", 0, 0)

    # -- arithmetic ----------------------------------------------------------------

    def _emit_neg(self, expr: E.Neg) -> None:
        wasm = expr.ty.wasm_type
        if wasm == "f64":
            self.emit(expr.operand)
            self.fb.emit("f64.neg")
        else:
            self.fb.const(wasm, 0)
            self.emit(expr.operand)
            self.fb.emit(f"{wasm}.sub")

    def _emit_arith(self, expr: E.Arith) -> None:
        self.emit(expr.left)
        self.emit(expr.right)
        wasm = expr.ty.wasm_type
        op = {
            "+": "add", "-": "sub", "*": "mul",
            "/": "div" if wasm == "f64" else "div_s",
            "%": "rem_s",
        }[expr.op]
        self.fb.emit(f"{wasm}.{op}")

    def _emit_promote(self, expr: E.Promote) -> None:
        self.emit(expr.operand)
        src = expr.operand.ty.wasm_type
        dst = expr.ty.wasm_type
        if src == dst:
            return
        conversions = {
            ("i32", "i64"): ["i64.extend_i32_s"],
            ("i32", "f64"): ["f64.convert_i32_s"],
            ("i64", "f64"): ["f64.convert_i64_s"],
            ("i64", "i32"): ["i32.wrap_i64"],
            ("f64", "i64"): ["i64.trunc_f64_s"],
            ("f64", "i32"): ["i32.trunc_f64_s"],
        }
        for instruction in conversions[(src, dst)]:
            self.fb.emit(instruction)

    # -- comparisons -----------------------------------------------------------------

    def _emit_compare(self, expr: E.Compare) -> None:
        left_ty = expr.left.ty
        if left_ty.is_string:
            self._emit_string_compare(expr)
            return
        self.emit(expr.left)
        self.emit(expr.right)
        wasm = left_ty.wasm_type
        suffix = _CMP_SUFFIX[expr.op]
        if wasm != "f64" and suffix not in ("eq", "ne"):
            suffix += "_s"
        self.fb.emit(f"{wasm}.{suffix}")

    def _emit_string_compare(self, expr: E.Compare) -> None:
        wa = expr.left.ty.size
        wb = expr.right.ty.size
        self.emit(expr.left)   # address
        self.emit(expr.right)  # address
        if expr.op in ("=", "<>"):
            helper = self._streq_helper(wa, wb)
            self.fb.call(helper)
            if expr.op == "<>":
                self.fb.emit("i32.eqz")
        else:
            helper = self._strcmp_helper(wa, wb)
            self.fb.call(helper)
            self.fb.i32(0)
            self.fb.emit(f"i32.{_CMP_SUFFIX[expr.op]}_s")

    def _streq_helper(self, wa: int, wb: int) -> int:
        """Generated equality over padded strings of widths (wa, wb)."""
        def generate(ctx):
            fb = ctx.mb.function(f"streq_{wa}_{wb}",
                                 params=[("i32", "a"), ("i32", "b")],
                                 results=["i32"])
            i = fb.local("i32", "i")
            ca = fb.local("i32", "ca")
            width = max(wa, wb)
            with fb.block() as differ:
                with fb.loop() as top:
                    fb.get(i).i32(width).emit("i32.ge_u")
                    with fb.if_():
                        fb.i32(1).ret()
                    # byte of a (0 beyond wa)
                    self._emit_padded_byte(fb, 0, i, wa)
                    fb.set(ca)
                    self._emit_padded_byte(fb, 1, i, wb)
                    fb.get(ca).emit("i32.ne")
                    fb.br_if(differ)
                    fb.get(i).i32(1).emit("i32.add").set(i)
                    fb.br(top)
            fb.i32(0)
            return fb

        return self.ctx.helper(("streq", wa, wb), generate)

    def _strcmp_helper(self, wa: int, wb: int) -> int:
        """Generated three-way byte comparison (-1/0/1), NUL-padded."""
        def generate(ctx):
            fb = ctx.mb.function(f"strcmp_{wa}_{wb}",
                                 params=[("i32", "a"), ("i32", "b")],
                                 results=["i32"])
            i = fb.local("i32", "i")
            ca = fb.local("i32", "ca")
            cb = fb.local("i32", "cb")
            width = max(wa, wb)
            with fb.loop() as top:
                fb.get(i).i32(width).emit("i32.lt_u")
                with fb.if_():
                    self._emit_padded_byte(fb, 0, i, wa)
                    fb.set(ca)
                    self._emit_padded_byte(fb, 1, i, wb)
                    fb.set(cb)
                    fb.get(ca).get(cb).emit("i32.ne")
                    with fb.if_():
                        fb.get(ca).get(cb).emit("i32.lt_u")
                        with fb.if_(results=["i32"]) as iff:
                            fb.i32(-1)
                            iff.else_()
                            fb.i32(1)
                        fb.ret()
                    fb.get(i).i32(1).emit("i32.add").set(i)
                    fb.br(top)
            fb.i32(0)
            return fb

        return self.ctx.helper(("strcmp", wa, wb), generate)

    @staticmethod
    def _emit_padded_byte(fb: FunctionBuilder, addr_local: int,
                          index_local: int, width: int) -> None:
        """Push byte ``[addr+i]`` or 0 when ``i >= width`` (NUL padding)."""
        fb.get(index_local).i32(width).emit("i32.lt_u")
        with fb.if_(results=["i32"]) as iff:
            fb.get(addr_local).get(index_local).emit("i32.add")
            fb.emit("i32.load8_u", 0, 0)
            iff.else_()
            fb.i32(0)

    # -- logic --------------------------------------------------------------------------

    def _emit_logic(self, expr: E.Logic) -> None:
        if self.ctx.short_circuit and expr.op == "AND":
            self.emit(expr.left)
            with self.fb.if_(results=["i32"]) as iff:
                self.emit(expr.right)
                self.fb.i32(0).emit("i32.ne")
                iff.else_()
                self.fb.i32(0)
            return
        if self.ctx.short_circuit and expr.op == "OR":
            self.emit(expr.left)
            with self.fb.if_(results=["i32"]) as iff:
                self.fb.i32(1)
                iff.else_()
                self.emit(expr.right)
                self.fb.i32(0).emit("i32.ne")
            return
        # mutable's default: evaluate the whole predicate, no branches
        self.emit(expr.left)
        self.emit(expr.right)
        self.fb.emit("i32.and" if expr.op == "AND" else "i32.or")

    def _emit_not(self, expr: E.Not) -> None:
        self.emit(expr.operand)
        self.fb.emit("i32.eqz")

    def _emit_case(self, expr: E.Case) -> None:
        result = expr.ty.wasm_type

        def emit_branch(remaining: list) -> None:
            if not remaining:
                self.emit(expr.else_)
                return
            cond, value = remaining[0]
            self.emit(cond)
            with self.fb.if_(results=[result]) as iff:
                self.emit(value)
                iff.else_()
                emit_branch(remaining[1:])

        emit_branch(expr.whens)

    # -- LIKE -----------------------------------------------------------------------------

    def _emit_like(self, expr: E.Like) -> None:
        width = expr.operand.ty.size
        self.emit(expr.operand)  # address on stack
        if expr.kind == "exact":
            padded = expr.pattern.ljust(width, b"\x00")
            self.fb.i32(self.ctx.intern_bytes(padded))
            self.fb.call(self._streq_helper(width, width))
        elif expr.kind in ("prefix", "suffix", "contains"):
            helper = self._like_helper(expr.kind, width, expr.pattern)
            self.fb.call(helper)
        else:  # generic: host callback with a registered pattern id
            pattern_id = self.ctx.register_generic_pattern(expr.pattern)
            self.fb.i32(width)
            self.fb.i32(pattern_id)
            self.fb.call(self.ctx.like_generic)
        if expr.negated:
            self.fb.emit("i32.eqz")

    def _like_helper(self, kind: str, width: int, pattern: bytes) -> int:
        pattern_addr = self.ctx.intern_bytes(pattern)
        plen = len(pattern)

        def generate(ctx):
            fb = ctx.mb.function(
                f"like_{kind}_{width}_{pattern_addr}",
                params=[("i32", "s")], results=["i32"],
            )
            if kind == "prefix":
                self._gen_like_prefix(fb, pattern_addr, plen)
            elif kind == "suffix":
                self._gen_like_suffix(fb, pattern_addr, plen, width)
            else:
                self._gen_like_contains(fb, pattern_addr, plen, width)
            return fb

        return self.ctx.helper(("like", kind, width, pattern), generate)

    @staticmethod
    def _gen_like_prefix(fb: FunctionBuilder, pattern_addr: int,
                         plen: int) -> None:
        i = fb.local("i32", "i")
        with fb.block() as fail:
            with fb.loop() as top:
                fb.get(i).i32(plen).emit("i32.ge_u")
                with fb.if_():
                    fb.i32(1).ret()
                fb.get(0).get(i).emit("i32.add").emit("i32.load8_u", 0, 0)
                fb.i32(pattern_addr).get(i).emit("i32.add")
                fb.emit("i32.load8_u", 0, 0)
                fb.emit("i32.ne")
                fb.br_if(fail)
                fb.get(i).i32(1).emit("i32.add").set(i)
                fb.br(top)
        fb.i32(0)

    @staticmethod
    def _gen_like_suffix(fb: FunctionBuilder, pattern_addr: int,
                         plen: int, width: int) -> None:
        # find the logical length (strip trailing NUL padding)
        length = fb.local("i32", "length")
        i = fb.local("i32", "i")
        fb.i32(width).set(length)
        with fb.block() as found:
            with fb.loop() as top:
                fb.get(length).emit("i32.eqz")
                fb.br_if(found)
                fb.get(0).get(length).emit("i32.add").i32(1).emit("i32.sub")
                fb.emit("i32.load8_u", 0, 0)
                fb.br_if(found)
                fb.get(length).i32(1).emit("i32.sub").set(length)
                fb.br(top)
        fb.get(length).i32(plen).emit("i32.lt_u")
        with fb.if_():
            fb.i32(0).ret()
        # compare the tail
        with fb.block() as fail:
            with fb.loop() as top:
                fb.get(i).i32(plen).emit("i32.ge_u")
                with fb.if_():
                    fb.i32(1).ret()
                fb.get(0).get(length).emit("i32.add").i32(plen).emit("i32.sub")
                fb.get(i).emit("i32.add").emit("i32.load8_u", 0, 0)
                fb.i32(pattern_addr).get(i).emit("i32.add")
                fb.emit("i32.load8_u", 0, 0)
                fb.emit("i32.ne")
                fb.br_if(fail)
                fb.get(i).i32(1).emit("i32.add").set(i)
                fb.br(top)
        fb.i32(0)

    @staticmethod
    def _gen_like_contains(fb: FunctionBuilder, pattern_addr: int,
                           plen: int, width: int) -> None:
        start = fb.local("i32", "start")
        i = fb.local("i32", "i")
        with fb.block() as nomatch:
            with fb.loop() as outer:
                fb.get(start).i32(plen).emit("i32.add")
                fb.i32(width).emit("i32.gt_u")
                fb.br_if(nomatch)
                fb.i32(0).set(i)
                with fb.block() as next_start:
                    with fb.loop() as inner:
                        fb.get(i).i32(plen).emit("i32.ge_u")
                        with fb.if_():
                            fb.i32(1).ret()
                        fb.get(0).get(start).emit("i32.add")
                        fb.get(i).emit("i32.add").emit("i32.load8_u", 0, 0)
                        fb.i32(pattern_addr).get(i).emit("i32.add")
                        fb.emit("i32.load8_u", 0, 0)
                        fb.emit("i32.ne")
                        fb.br_if(next_start)
                        fb.get(i).i32(1).emit("i32.add").set(i)
                        fb.br(inner)
                fb.get(start).i32(1).emit("i32.add").set(start)
                fb.br(outer)
        fb.i32(0)

    # -- dates --------------------------------------------------------------------------------

    def _emit_extract(self, expr: E.Extract) -> None:
        """Inline civil-from-days (Hinnant) as straight i32 arithmetic —
        the ad-hoc-generation answer to a date library."""
        helper = self._extract_helper(expr.part)
        self.emit(expr.operand)
        self.fb.call(helper)

    def _extract_helper(self, part: str) -> int:
        def generate(ctx):
            fb = ctx.mb.function(f"extract_{part.lower()}",
                                 params=[("i32", "days")], results=["i32"])
            z = fb.local("i32", "z")
            era = fb.local("i32", "era")
            doe = fb.local("i32", "doe")
            yoe = fb.local("i32", "yoe")
            doy = fb.local("i32", "doy")
            mp = fb.local("i32", "mp")
            month = fb.local("i32", "month")

            fb.get(0).i32(719468).emit("i32.add").set(z)
            # era = (z >= 0 ? z : z - 146096) / 146097
            fb.get(z)
            fb.get(z).i32(146096).emit("i32.sub")
            fb.get(z).i32(0).emit("i32.ge_s")
            fb.emit("select")
            fb.i32(146097).emit("i32.div_s").set(era)
            # doe = z - era * 146097
            fb.get(z).get(era).i32(146097).emit("i32.mul").emit("i32.sub")
            fb.set(doe)
            # yoe = (doe - doe/1460 + doe/36524 - doe/146096) / 365
            fb.get(doe)
            fb.get(doe).i32(1460).emit("i32.div_u").emit("i32.sub")
            fb.get(doe).i32(36524).emit("i32.div_u").emit("i32.add")
            fb.get(doe).i32(146096).emit("i32.div_u").emit("i32.sub")
            fb.i32(365).emit("i32.div_u").set(yoe)
            # doy = doe - (365*yoe + yoe/4 - yoe/100)
            fb.get(doe)
            fb.get(yoe).i32(365).emit("i32.mul")
            fb.get(yoe).i32(4).emit("i32.div_u").emit("i32.add")
            fb.get(yoe).i32(100).emit("i32.div_u").emit("i32.sub")
            fb.emit("i32.sub").set(doy)
            # mp = (5*doy + 2) / 153
            fb.get(doy).i32(5).emit("i32.mul").i32(2).emit("i32.add")
            fb.i32(153).emit("i32.div_u").set(mp)
            if part == "DAY":
                # day = doy - (153*mp + 2)/5 + 1
                fb.get(doy)
                fb.get(mp).i32(153).emit("i32.mul").i32(2).emit("i32.add")
                fb.i32(5).emit("i32.div_u").emit("i32.sub")
                fb.i32(1).emit("i32.add")
                return fb
            # month = mp < 10 ? mp + 3 : mp - 9
            fb.get(mp).i32(3).emit("i32.add")
            fb.get(mp).i32(9).emit("i32.sub")
            fb.get(mp).i32(10).emit("i32.lt_u")
            fb.emit("select").set(month)
            if part == "MONTH":
                fb.get(month)
                return fb
            # year = yoe + era*400 + (month <= 2)
            fb.get(yoe).get(era).i32(400).emit("i32.mul").emit("i32.add")
            fb.get(month).i32(2).emit("i32.le_s").emit("i32.add")
            return fb

        return self.ctx.helper(("extract", part), generate)
