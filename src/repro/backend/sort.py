"""Ad-hoc generation of specialized quicksort (paper Section 5.3).

For every ORDER BY the compiler generates, at query compile time:

* a packed **sort array** (tuples appended by the feeding pipeline; the
  sort keys are materialized alongside the row so the comparator reads
  plain fields),
* a monomorphic **comparator** with the multi-key ASC/DESC comparison
  fully inlined — no per-comparison callback, the paper's core complaint
  about ``qsort``-style libraries,
* **swap** code emitted field-wise through locals (the paper's
  ``EmitSwap``),
* **Hoare partitioning** exactly as Listing 4 (swap-first loop; the
  pivot lives in a scratch slot *outside* the partitioned range), and
* a recursive **quicksort** as Listing 5 (median-of-three pivot,
  recurse right / loop left), callable per Listing 6.

Per ORDER BY the module gets the functions ``{name}_grow``,
``{name}_partition_lt``/``_le``, ``{name}_qsort`` and the exported
driver ``{name}_sort``; appends, comparisons, and swaps are *emitted
inline* at their use sites (``emit_append_slot`` / ``emit_less`` /
``emit_swap_inline``) — no per-element call anywhere on the hot path.
``{name}_cmp`` exists only for the cold median-of-three selection.
"""

from __future__ import annotations

from repro.backend.layout import TupleLayout
from repro.sql.types import DataType
from repro.wasm.builder import FunctionBuilder

__all__ = ["GeneratedSort"]


class GeneratedSort:
    """One specialized sort array + quicksort inside a query module.

    Args:
        ctx: compiler context.
        name: unique name, e.g. ``"sort0"``.
        row_fields: ``(name, type)`` of the materialized row columns.
        key_fields: ``(name, type, descending)`` of the sort keys (also
            stored in the tuple, evaluated by the feeding pipeline).
        estimate: expected row count.
    """

    def __init__(self, ctx, name: str,
                 row_fields: list[tuple[str, DataType]],
                 key_fields: list[tuple[str, DataType, bool]],
                 estimate: int):
        self.ctx = ctx
        self.name = name
        self.row_fields = row_fields
        self.key_fields = key_fields
        # keys that reference an existing row field (plain-column sort
        # keys) are not materialized twice — the comparator reads the row
        # field directly, halving swap traffic for the common case
        row_names = {n for n, _ in row_fields}
        extra = [(n, ty) for n, ty, _ in key_fields if n not in row_names]
        self.layout = TupleLayout(list(row_fields) + extra)
        self.initial_capacity = max(64, int(estimate) + 1)

        mb = ctx.mb
        self.g_base = mb.add_global("i32", 0, name=f"{name}_base")
        self.g_count = mb.add_global("i32", 0, name=f"{name}_count")
        self.g_capacity = mb.add_global("i32", 0, name=f"{name}_capacity")
        self.g_pivot = mb.add_global("i32", 0, name=f"{name}_pivot")
        self.g_scratch = mb.add_global("i32", 0, name=f"{name}_scratch")
        mb.export(f"{name}_count", "global", self.g_count)
        mb.export(f"{name}_base", "global", self.g_base)
        ctx.add_init(self._emit_init)

        self._cmp_index: int | None = None
        self._swap_index: int | None = None

    def _emit_init(self, fb: FunctionBuilder) -> None:
        alloc = self.ctx.alloc_function()
        stride = self.layout.stride
        fb.i32(self.initial_capacity * stride).call(alloc)
        fb.emit("global.set", self.g_base)
        fb.i32(self.initial_capacity).emit("global.set", self.g_capacity)
        fb.i32(0).emit("global.set", self.g_count)
        fb.i32(stride).call(alloc).emit("global.set", self.g_pivot)
        fb.i32(stride).call(alloc).emit("global.set", self.g_scratch)

    # -- grow + append -----------------------------------------------------

    def grow_function(self) -> int:
        def generate(ctx):
            stride = self.layout.stride
            fb = ctx.mb.function(f"{self.name}_grow")
            new_base = fb.local("i32", "new_base")
            fb.emit("global.get", self.g_capacity).i32(1).emit("i32.shl")
            fb.emit("global.set", self.g_capacity)
            fb.emit("global.get", self.g_capacity).i32(stride).emit("i32.mul")
            fb.call(ctx.alloc_function()).set(new_base)
            fb.get(new_base)
            fb.emit("global.get", self.g_base)
            fb.emit("global.get", self.g_count).i32(stride).emit("i32.mul")
            fb.call(ctx.memcpy_function())
            fb.get(new_base).emit("global.set", self.g_base)
            return fb

        return self.ctx.helper((self.name, "grow"), generate)

    def emit_append_slot(self, fb: FunctionBuilder) -> int:
        """Emit inline code reserving the next tuple; leaves its address
        in the returned local (the caller stores the fields)."""
        out = fb.local("i32", f"{self.name}_dst")
        fb.emit("global.get", self.g_count)
        fb.emit("global.get", self.g_capacity).emit("i32.ge_u")
        with fb.if_():
            fb.call(self.grow_function())
        fb.emit("global.get", self.g_base)
        fb.emit("global.get", self.g_count)
        fb.i32(self.layout.stride).emit("i32.mul").emit("i32.add")
        fb.set(out)
        fb.emit("global.get", self.g_count).i32(1).emit("i32.add")
        fb.emit("global.set", self.g_count)
        return out

    # -- comparator (fully inlined multi-key comparison) ----------------------

    def cmp_function(self, expr_compiler) -> int:
        """Generated ``cmp(a, b) -> i32`` over the sort keys; negative
        when the tuple at ``a`` orders before the tuple at ``b``."""
        if self._cmp_index is not None:
            return self._cmp_index
        fb = self.ctx.mb.function(f"{self.name}_cmp",
                                  params=[("i32", "a"), ("i32", "b")],
                                  results=["i32"])
        for kname, ty, descending in self.key_fields:
            field = self.layout.field(kname)
            first, second = (1, 0) if descending else (0, 1)
            if ty.is_string:
                fb.get(first).i32(field.offset).emit("i32.add")
                fb.get(second).i32(field.offset).emit("i32.add")
                fb.call(expr_compiler._strcmp_helper(ty.size, ty.size))
                outcome = fb.local("i32", "sc")
                fb.set(outcome)
                fb.get(outcome)
                with fb.if_():
                    fb.get(outcome).ret()
                continue
            wasm = ty.wasm_type
            a_val = fb.local(wasm, "av")
            b_val = fb.local(wasm, "bv")
            fb.get(first).emit(field.load_op, 0, field.offset).set(a_val)
            fb.get(second).emit(field.load_op, 0, field.offset).set(b_val)
            lt = "lt_s" if wasm != "f64" else "lt"
            gt = "gt_s" if wasm != "f64" else "gt"
            fb.get(a_val).get(b_val).emit(f"{wasm}.{lt}")
            with fb.if_():
                fb.i32(-1).ret()
            fb.get(a_val).get(b_val).emit(f"{wasm}.{gt}")
            with fb.if_():
                fb.i32(1).ret()
        fb.i32(0)
        self._cmp_index = fb.func_index
        return self._cmp_index

    def emit_less(self, fb: FunctionBuilder, expr_compiler, a: int,
                  b: int) -> None:
        """Emit inline code leaving i32 0/1: does the tuple at ``a`` order
        strictly before the tuple at ``b``?  The multi-key ASC/DESC
        comparison is fully inlined — the paper's core contrast with
        callback-based library sorts (Section 5.3)."""
        if len(self.key_fields) == 1 and not self.key_fields[0][1].is_string:
            # single numeric key: a bare load-load-compare, no temporaries
            kname, ty, descending = self.key_fields[0]
            field = self.layout.field(kname)
            first, second = (b, a) if descending else (a, b)
            wasm = ty.wasm_type
            lt = "lt_s" if wasm != "f64" else "lt"
            fb.get(first).emit(field.load_op, 0, field.offset)
            fb.get(second).emit(field.load_op, 0, field.offset)
            fb.emit(f"{wasm}.{lt}")
            return
        result = fb.local("i32", "lt")
        fb.i32(0).set(result)
        with fb.block() as decided:
            for kname, ty, descending in self.key_fields:
                field = self.layout.field(kname)
                first, second = (b, a) if descending else (a, b)
                if ty.is_string:
                    fb.get(first).i32(field.offset).emit("i32.add")
                    fb.get(second).i32(field.offset).emit("i32.add")
                    fb.call(expr_compiler._strcmp_helper(ty.size, ty.size))
                    outcome = fb.local("i32", "sc")
                    fb.set(outcome)
                    fb.get(outcome).i32(0).emit("i32.lt_s")
                    with fb.if_():
                        fb.i32(1).set(result)
                        fb.br(decided)
                    fb.get(outcome).i32(0).emit("i32.gt_s")
                    fb.br_if(decided)
                    continue
                wasm = ty.wasm_type
                lt = "lt_s" if wasm != "f64" else "lt"
                gt = "gt_s" if wasm != "f64" else "gt"
                a_val = fb.local(wasm, "av")
                b_val = fb.local(wasm, "bv")
                fb.get(first).emit(field.load_op, 0, field.offset).set(a_val)
                fb.get(second).emit(field.load_op, 0, field.offset).set(b_val)
                fb.get(a_val).get(b_val).emit(f"{wasm}.{lt}")
                with fb.if_():
                    fb.i32(1).set(result)
                    fb.br(decided)
                fb.get(a_val).get(b_val).emit(f"{wasm}.{gt}")
                fb.br_if(decided)
        fb.get(result)

    # -- swap (EmitSwap: field-wise through locals, emitted inline) -----------

    def emit_swap_inline(self, fb: FunctionBuilder, a: int, b: int) -> None:
        """Inline tuple swap: every field travels through a fresh local
        (the paper's EmitSwap) — no memcpy, no call on the hot path."""
        memcpy = self.ctx.memcpy_function()
        for field in self.layout:
            if field.ty.is_string:
                # strings swap through the scratch tuple, byte-wise
                fb.emit("global.get", self.g_scratch)
                fb.get(a).i32(field.offset).emit("i32.add")
                fb.i32(field.size).call(memcpy)
                fb.get(a).i32(field.offset).emit("i32.add")
                fb.get(b).i32(field.offset).emit("i32.add")
                fb.i32(field.size).call(memcpy)
                fb.get(b).i32(field.offset).emit("i32.add")
                fb.emit("global.get", self.g_scratch)
                fb.i32(field.size).call(memcpy)
                continue
            tmp = fb.local(field.ty.wasm_type, f"t_{field.name}")
            fb.get(a).emit(field.load_op, 0, field.offset).set(tmp)
            fb.get(a)
            fb.get(b).emit(field.load_op, 0, field.offset)
            fb.emit(field.store_op, 0, field.offset)
            fb.get(b).get(tmp).emit(field.store_op, 0, field.offset)

    def swap_function(self) -> int:
        """An out-of-line swap (used by cold paths like median selection);
        the hot partition loop inlines :meth:`emit_swap_inline`."""
        if self._swap_index is not None:
            return self._swap_index
        fb = self.ctx.mb.function(f"{self.name}_swap",
                                  params=[("i32", "a"), ("i32", "b")])
        self.emit_swap_inline(fb, 0, 1)
        self._swap_index = fb.func_index
        return self._swap_index

    def copy_tuple(self, fb: FunctionBuilder, dst_local_expr, src: int) -> None:
        """Emit a whole-tuple copy (parks the pivot), field-wise through
        locals — no generic memcpy (the paper's Section 4.3 point)."""
        memcpy = self.ctx.memcpy_function()
        dst = fb.local("i32", "cp_dst")
        dst_local_expr()
        fb.set(dst)
        for field in self.layout:
            if field.ty.is_string:
                fb.get(dst).i32(field.offset).emit("i32.add")
                fb.get(src).i32(field.offset).emit("i32.add")
                fb.i32(field.size).call(memcpy)
                continue
            fb.get(dst)
            fb.get(src).emit(field.load_op, 0, field.offset)
            fb.emit(field.store_op, 0, field.offset)

    # -- Hoare partition (Listing 4) --------------------------------------------------

    def partition_function(self, expr_compiler, strict: bool = True) -> int:
        """``partition(begin, end, pivot) -> lo``.

        With ``strict`` (the Listing-4 form): [begin,lo) < pivot,
        [lo,end) >= pivot.  The non-strict variant partitions by
        ``<= pivot`` and is used to peel off the run of pivot-equal
        tuples (three-way quicksort).  The pivot address lies outside
        [begin,end), as the paper requires.
        """
        stride = self.layout.stride
        suffix = "lt" if strict else "le"
        fb = self.ctx.mb.function(
            f"{self.name}_partition_{suffix}",
            params=[("i32", "begin"), ("i32", "end"), ("i32", "pivot")],
            results=["i32"],
        )
        pivot = 2
        lo = fb.local("i32", "l")
        r = fb.local("i32", "r")
        last = fb.local("i32", "rm")  # r - stride, the right cursor
        fb.get(0).set(lo)
        fb.get(1).set(r)
        with fb.block() as done:
            with fb.loop() as top:
                fb.get(lo).get(r).emit("i32.ge_u")
                fb.br_if(done)
                fb.get(r).i32(stride).emit("i32.sub").set(last)
                # swap(lo, r - stride) — EmitSwap, fully inline (Listing 4)
                self.emit_swap_inline(fb, lo, last)
                if strict:
                    # if cmp(lo, pivot) < 0: lo += stride
                    self.emit_less(fb, expr_compiler, lo, pivot)
                    with fb.if_():
                        fb.get(lo).i32(stride).emit("i32.add").set(lo)
                    # if cmp(r - stride, pivot) >= 0: r -= stride
                    self.emit_less(fb, expr_compiler, last, pivot)
                    fb.emit("i32.eqz")
                    with fb.if_():
                        fb.get(last).set(r)
                else:
                    # if cmp(lo, pivot) <= 0: lo += stride
                    self.emit_less(fb, expr_compiler, pivot, lo)
                    fb.emit("i32.eqz")
                    with fb.if_():
                        fb.get(lo).i32(stride).emit("i32.add").set(lo)
                    # if cmp(r - stride, pivot) > 0: r -= stride
                    self.emit_less(fb, expr_compiler, pivot, last)
                    with fb.if_():
                        fb.get(last).set(r)
                fb.br(top)
        fb.get(lo)
        return fb.func_index

    # -- quicksort (Listing 5) + exported driver (Listing 6) ------------------------------

    def qsort_function(self, expr_compiler) -> int:
        """Three-way quicksort: partition ``< pivot`` then ``<= pivot``
        (pivot-equal run drops out), recurse into the smaller side and
        loop on the larger — O(log n) call depth, robust on duplicates.
        """
        stride = self.layout.stride
        cmp_fn = self.cmp_function(expr_compiler)  # cold: median-of-3 only
        part_lt = self.partition_function(expr_compiler, strict=True)
        part_le = self.partition_function(expr_compiler, strict=False)
        fb = self.ctx.mb.function(
            f"{self.name}_qsort",
            params=[("i32", "begin"), ("i32", "end")],
        )
        qsort_index = fb.func_index
        mid = fb.local("i32", "mid")
        med = fb.local("i32", "med")
        m1 = fb.local("i32", "m1")
        m2 = fb.local("i32", "m2")
        with fb.block() as out:
            with fb.loop() as top:
                # while end - begin > 2 * stride
                fb.get(1).get(0).emit("i32.sub")
                fb.i32(2 * stride).emit("i32.le_u")
                fb.br_if(out)
                # mid = begin + ((end - begin) / stride / 2) * stride
                fb.get(0)
                fb.get(1).get(0).emit("i32.sub")
                fb.i32(stride).emit("i32.div_u")
                fb.i32(1).emit("i32.shr_u")
                fb.i32(stride).emit("i32.mul")
                fb.emit("i32.add").set(mid)
                # med = median address of {begin, mid, last}
                last = fb.local("i32", "last")
                fb.get(1).i32(stride).emit("i32.sub").set(last)
                fb.get(0).get(mid).call(cmp_fn).i32(0).emit("i32.lt_s")
                with fb.if_(results=["i32"]) as outer:
                    # begin < mid
                    fb.get(mid).get(last).call(cmp_fn)
                    fb.i32(0).emit("i32.lt_s")
                    with fb.if_(results=["i32"]) as inner:
                        fb.get(mid)                    # begin < mid < last
                        inner.else_()
                        fb.get(0).get(last).call(cmp_fn)
                        fb.i32(0).emit("i32.lt_s")
                        with fb.if_(results=["i32"]) as deepest:
                            fb.get(last)               # begin < last <= mid
                            deepest.else_()
                            fb.get(0)                  # last <= begin < mid
                    outer.else_()
                    # mid <= begin
                    fb.get(0).get(last).call(cmp_fn)
                    fb.i32(0).emit("i32.lt_s")
                    with fb.if_(results=["i32"]) as inner:
                        fb.get(0)                      # mid <= begin < last
                        inner.else_()
                        fb.get(mid).get(last).call(cmp_fn)
                        fb.i32(0).emit("i32.lt_s")
                        with fb.if_(results=["i32"]) as deepest:
                            fb.get(last)               # mid < last <= begin
                            deepest.else_()
                            fb.get(mid)                # last <= mid <= begin
                fb.set(med)
                # park the pivot value outside [begin, end)
                self.copy_tuple(
                    fb,
                    lambda: fb.emit("global.get", self.g_pivot),
                    med,
                )
                # three-way split
                fb.get(0).get(1)
                fb.emit("global.get", self.g_pivot)
                fb.call(part_lt).set(m1)
                fb.get(m1).get(1)
                fb.emit("global.get", self.g_pivot)
                fb.call(part_le).set(m2)
                # recurse into the smaller side, loop on the larger
                fb.get(m1).get(0).emit("i32.sub")       # left size
                fb.get(1).get(m2).emit("i32.sub")       # right size
                fb.emit("i32.le_u")
                with fb.if_() as branch:
                    fb.get(0).get(m1).call(qsort_index)
                    fb.get(m2).set(0)
                    branch.else_()
                    fb.get(m2).get(1).call(qsort_index)
                    fb.get(m1).set(1)
                fb.br(top)
        # ranges of two: one inline compare-and-swap
        fb.get(1).get(0).emit("i32.sub")
        fb.i32(2 * stride).emit("i32.eq")
        with fb.if_():
            second = fb.local("i32", "second")
            fb.get(0).i32(stride).emit("i32.add").set(second)
            self.emit_less(fb, expr_compiler, second, 0)
            with fb.if_():
                self.emit_swap_inline(fb, 0, second)
        return qsort_index

    def sort_driver(self, expr_compiler) -> int:
        """The exported entry point: sorts the whole array (Listing 6)."""
        qsort_fn = self.qsort_function(expr_compiler)
        fb = self.ctx.mb.function(f"{self.name}_sort", export=True)
        stride = self.layout.stride
        fb.emit("global.get", self.g_base)
        fb.emit("global.get", self.g_base)
        fb.emit("global.get", self.g_count).i32(stride).emit("i32.mul")
        fb.emit("i32.add")
        fb.call(qsort_fn)
        return fb.func_index
