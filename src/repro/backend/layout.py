"""Tuple layouts in linear memory.

Materialized tuples (hash-table entries, sort arrays, result rows) are
packed structs.  Fields are laid out largest-alignment-first so every
field is naturally aligned, and the stride is rounded up to 8 bytes so
consecutive tuples stay aligned.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sql.types import DataType

__all__ = ["Field", "TupleLayout"]


@dataclass(frozen=True)
class Field:
    """One field of a packed tuple."""

    name: str
    ty: DataType
    offset: int

    @property
    def size(self) -> int:
        return self.ty.size

    @property
    def load_op(self) -> str:
        """The Wasm load instruction for this field (strings load their
        address, so they have no single load op)."""
        if self.ty.is_string:
            raise ValueError("string fields are accessed by address")
        return {
            ("i32", 1): "i32.load8_s",
            ("i32", 4): "i32.load",
            ("i64", 8): "i64.load",
            ("f64", 8): "f64.load",
        }[(self.ty.wasm_type, self.size)]

    @property
    def store_op(self) -> str:
        if self.ty.is_string:
            raise ValueError("string fields are stored byte-wise")
        return {
            ("i32", 1): "i32.store8",
            ("i32", 4): "i32.store",
            ("i64", 8): "i64.store",
            ("f64", 8): "f64.store",
        }[(self.ty.wasm_type, self.size)]


def _alignment(ty: DataType) -> int:
    if ty.is_string:
        return 1
    return min(ty.size, 8)


class TupleLayout:
    """Packed layout for a list of named, typed fields.

    ``header`` bytes are reserved at offset 0 (e.g. a hash-table entry's
    chain pointer + hash); fields follow, sorted by descending alignment
    to avoid padding, with declaration order as tie-breaker.
    """

    def __init__(self, fields: list[tuple[str, DataType]], header: int = 0):
        self.header = header
        ordered = sorted(
            enumerate(fields),
            key=lambda pair: (-_alignment(pair[1][1]), pair[0]),
        )
        offset = header
        placed: dict[str, Field] = {}
        for _, (name, ty) in ordered:
            align = _alignment(ty)
            offset = (offset + align - 1) & ~(align - 1)
            placed[name] = Field(name, ty, offset)
            offset += ty.size
        self.stride = (offset + 7) & ~7  # keep tuples 8-aligned
        if self.stride == 0:
            self.stride = 8
        self._fields = placed
        self.field_names = [name for name, _ in fields]

    def field(self, name: str) -> Field:
        return self._fields[name]

    def __iter__(self):
        return (self._fields[name] for name in self.field_names)

    def __len__(self) -> int:
        return len(self.field_names)
