"""Shared state of one query compilation.

The :class:`CompilerContext` owns the module builder, the memory plan
(absolute addresses of mapped columns, constants, result window, heap),
the constant pool, and the registry of ad-hoc generated helper functions
(string comparators, ``alloc``, ``memzero``, ...) so each specialized
helper is generated at most once per query module.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import PlanError
from repro.wasm.builder import ModuleBuilder

__all__ = ["MemoryPlan", "CompilerContext", "CONST_REGION_SIZE",
           "RESULT_REGION_SIZE", "MORSEL_SIZE"]

CONST_REGION_SIZE = 4 * 65536      # string literals, LIKE patterns
RESULT_REGION_SIZE = 16 * 65536    # the rewired result window of Figure 5
MORSEL_SIZE = 16384                # rows per morsel (adaptive switch points)


@dataclass
class MemoryPlan:
    """Absolute addresses in the query's rewired address space."""

    consts_base: int
    result_base: int
    heap_base: int
    heap_end: int
    column_addresses: dict[tuple[str, str], int]  # (binding, column) -> addr
    row_counts: dict[str, int] = field(default_factory=dict)  # binding -> rows
    #: binding -> largest row index count a pipeline over that binding may
    #: see per invocation (the chunk window for chunked scans, else the
    #: full row count).  Declared as ``param_range`` contracts on the
    #: generated pipelines so the interval analysis can bound addresses.
    extent_rows: dict[str, int] = field(default_factory=dict)
    #: (binding, column) -> inclusive host-guaranteed bounds on every
    #: value the column's loads can produce (integer storage domains
    #: only; derived from catalog statistics by the plan analysis).
    #: Declared as ``value_range`` contracts on the generated loads so
    #: the interval analysis can bound *loaded* values — the key to
    #: eliding bounds checks on loads addressed by another load (e.g.
    #: index-seek row ids).
    value_ranges: dict[tuple[str, str], tuple[int, int]] = \
        field(default_factory=dict)

    def column_address(self, binding: str, column: str) -> int:
        try:
            return self.column_addresses[(binding, column)]
        except KeyError:
            raise PlanError(
                f"column {binding}.{column} was not mapped"
            ) from None


class CompilerContext:
    """Everything the per-operator code generators share."""

    def __init__(self, name: str, memory: MemoryPlan,
                 short_circuit: bool = False):
        self.memory = memory
        self.short_circuit = short_circuit
        self.mb = ModuleBuilder(name)

        # host imports (declared before any defined function)
        self.flush_results = self.mb.import_function(
            "env", "flush_results", [], []
        )
        self.like_generic = self.mb.import_function(
            "env", "like_generic", ["i32", "i32", "i32"], ["i32"]
        )

        # The module declares a memory as the spec requires, but the host
        # replaces it with its rewired space at instantiation — the
        # paper's SetModuleMemory() patch (Section 6).  The minimum is the
        # true extent of the planned address space (heap is the last
        # region), which the bounds-check elision uses as its proof bound;
        # the host-provided rewired memory always covers it.
        min_pages = max(1, -(-memory.heap_end // 65536))
        self.mb.add_memory(min_pages, 1 << 16, export="memory")

        # module globals
        self.heap_ptr = self.mb.add_global(
            "i32", memory.heap_base, name="heap_ptr"
        )
        self.heap_end = self.mb.add_global(
            "i32", memory.heap_end, name="heap_end"
        )
        self.result_count = self.mb.add_global(
            "i32", 0, name="result_count"
        )
        self.mb.export("heap_ptr", "global", self.heap_ptr)
        self.mb.export("heap_end", "global", self.heap_end)
        self.mb.export("result_count", "global", self.result_count)

        self._constants = bytearray()
        self._constant_cache: dict[bytes, int] = {}
        self._helpers: dict[object, int] = {}
        self._generic_patterns: list[str] = []
        self._alloc_index: int | None = None
        self._init_statements: list = []  # callbacks emitting into init()
        # parameter slots, carved from the top of the constants region
        self._param_slots: dict[int, tuple[int, object]] = {}
        self._param_reserved = 0

    # -- constants ---------------------------------------------------------

    def intern_bytes(self, raw: bytes) -> int:
        """Place constant bytes in the constants region; returns address."""
        cached = self._constant_cache.get(raw)
        if cached is not None:
            return cached
        # 8-align each constant
        pad = (-len(self._constants)) % 8
        self._constants += b"\x00" * pad
        addr = self.memory.consts_base + len(self._constants)
        self._constants += raw
        if len(self._constants) > CONST_REGION_SIZE - self._param_reserved:
            raise PlanError("constant pool exhausted")
        self._constant_cache[raw] = addr
        return addr

    def param_address(self, index: int, ty) -> int:
        """Fixed address of the value slot for parameter ``$index``.

        Slots grow down from the top of the constants region, so the
        layout of every other mapping is untouched.  Generated code
        *loads* from the slot on every execution instead of baking the
        value in — the host rewrites the slot at each EXECUTE, which is
        what makes a compiled module reusable across bindings.
        """
        slot = self._param_slots.get(index)
        if slot is not None:
            return slot[0]
        size = ty.size if ty.is_string else 8
        size = (size + 7) & ~7
        self._param_reserved += size
        addr = self.memory.consts_base + CONST_REGION_SIZE - self._param_reserved
        if addr < self.memory.consts_base + len(self._constants):
            raise PlanError("constant pool exhausted (parameter slots)")
        self._param_slots[index] = (addr, ty)
        return addr

    @property
    def param_layout(self) -> dict[int, tuple[int, object]]:
        """``$index -> (address, type)`` for every parameter slot."""
        return dict(self._param_slots)

    def register_generic_pattern(self, pattern: str) -> int:
        """Host-side LIKE pattern id (generic patterns use a callback)."""
        self._generic_patterns.append(pattern)
        return len(self._generic_patterns) - 1

    @property
    def generic_patterns(self) -> list[str]:
        return self._generic_patterns

    # -- helper functions ---------------------------------------------------

    def helper(self, key, generate) -> int:
        """Memoized ad-hoc helper generation; returns function index.

        ``generate(ctx) -> FunctionBuilder`` runs once per distinct key.
        """
        index = self._helpers.get(key)
        if index is None:
            fb = generate(self)
            index = fb.func_index
            self._helpers[key] = index
        return index

    def alloc_function(self) -> int:
        """The generated bump allocator over the growable heap window."""
        if self._alloc_index is None:
            fb = self.mb.function("alloc", params=[("i32", "n")],
                                  results=["i32"])
            n, out = 0, fb.local("i32", "out")
            # aligned = (n + 7) & ~7
            fb.get(n).i32(7).emit("i32.add").i32(-8).emit("i32.and").set(n)
            # grow if heap_ptr + aligned > heap_end
            fb.emit("global.get", self.heap_ptr).get(n).emit("i32.add")
            fb.emit("global.get", self.heap_end).emit("i32.gt_u")
            with fb.if_():
                # pages = ((need - heap_end) >> 16) + 16
                fb.emit("global.get", self.heap_ptr).get(n).emit("i32.add")
                fb.emit("global.get", self.heap_end).emit("i32.sub")
                fb.i32(16).emit("i32.shr_u").i32(16).emit("i32.add")
                fb.tee(out)
                fb.emit("memory.grow")
                fb.i32(-1).emit("i32.eq")
                with fb.if_():
                    fb.emit("unreachable")  # out of memory
                fb.emit("global.get", self.heap_end)
                fb.get(out).i32(16).emit("i32.shl").emit("i32.add")
                fb.emit("global.set", self.heap_end)
            fb.emit("global.get", self.heap_ptr).tee(out)
            fb.get(n).emit("i32.add")
            fb.emit("global.set", self.heap_ptr)
            fb.get(out)
            self._alloc_index = fb.func_index
        return self._alloc_index

    def memzero_function(self) -> int:
        """Generated zero-fill (8 bytes at a time; size must be 8-aligned)."""
        def generate(ctx):
            fb = ctx.mb.function("memzero",
                                 params=[("i32", "addr"), ("i32", "n")])
            end = fb.local("i32", "end")
            fb.get(0).get(1).emit("i32.add").set(end)
            with fb.block() as done:
                with fb.loop() as top:
                    fb.get(0).get(end).emit("i32.ge_u")
                    fb.br_if(done)
                    fb.get(0).i64(0).store("i64")
                    fb.get(0).i32(8).emit("i32.add").set(0)
                    fb.br(top)
            return fb

        return self.helper("memzero", generate)

    def memcpy_function(self) -> int:
        """Generated byte copy (used when regions may not be 8-aligned)."""
        def generate(ctx):
            fb = ctx.mb.function(
                "memcpy",
                params=[("i32", "dst"), ("i32", "src"), ("i32", "n")],
            )
            end = fb.local("i32", "end")
            fb.get(1).get(2).emit("i32.add").set(end)
            with fb.block() as done:
                with fb.loop() as top:
                    fb.get(1).get(end).emit("i32.ge_u")
                    fb.br_if(done)
                    fb.get(0).get(1).emit("i32.load8_u", 0, 0)
                    fb.emit("i32.store8", 0, 0)
                    fb.get(0).i32(1).emit("i32.add").set(0)
                    fb.get(1).i32(1).emit("i32.add").set(1)
                    fb.br(top)
            return fb

        return self.helper("memcpy", generate)

    # -- init function --------------------------------------------------------

    def add_init(self, emit_callback) -> None:
        """Register ``emit_callback(fb)`` to run inside the generated
        ``init()`` function (hash-table setup, state allocation, ...)."""
        self._init_statements.append(emit_callback)

    def finish(self):
        """Emit init(), the constants data segment; seal the module."""
        init = self.mb.function("init", export=True)
        for emit in self._init_statements:
            emit(init)
        if self._constants:
            self.mb.add_data(self.memory.consts_base, bytes(self._constants))
        return self.mb.finish()
