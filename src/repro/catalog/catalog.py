"""The catalog maps table names to stored tables."""

from __future__ import annotations

from repro.errors import CatalogError

__all__ = ["Catalog"]


class Catalog:
    """A flat namespace of tables.

    The catalog stores :class:`repro.storage.table.Table` objects but only
    relies on them exposing ``.schema`` and ``.statistics`` — the planner
    and analyzer never touch the data through the catalog.
    """

    def __init__(self):
        self._tables: dict[str, object] = {}
        #: Monotonic counter bumped on every schema or data change (DDL,
        #: INSERT, index creation).  Compiled-plan caches key on it, so a
        #: stale plan — mapped buffers, row counts, constants — can never
        #: serve a query after the data it was compiled against changed.
        self.version = 0

    def bump_version(self) -> int:
        """Record a schema/data change; invalidates cached plans."""
        self.version += 1
        return self.version

    def __contains__(self, name: str) -> bool:
        return name.lower() in self._tables

    def __iter__(self):
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> list[str]:
        return sorted(self._tables)

    def add(self, table) -> None:
        name = table.schema.name.lower()
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        self._tables[name] = table
        self.bump_version()

    def get(self, name: str):
        try:
            return self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def drop(self, name: str) -> None:
        try:
            del self._tables[name.lower()]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None
        self.bump_version()
