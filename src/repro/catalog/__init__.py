"""Catalog: table schemas, the catalog itself, and optimizer statistics."""

from repro.catalog.schema import Column, TableSchema
from repro.catalog.catalog import Catalog
from repro.catalog.statistics import ColumnStatistics, TableStatistics

__all__ = [
    "Catalog",
    "Column",
    "ColumnStatistics",
    "TableSchema",
    "TableStatistics",
]
