"""Optimizer statistics: row counts, distinct counts, min/max per column.

Statistics are computed eagerly and cheaply from the stored NumPy columns;
the cardinality estimator (:mod:`repro.plan.cardinality`) consumes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["ColumnStatistics", "TableStatistics"]


@dataclass
class ColumnStatistics:
    """Summary statistics of one stored column."""

    distinct: int = 0
    minimum: object = None
    maximum: object = None

    @classmethod
    def from_array(cls, values: np.ndarray, sample_cap: int = 200_000) -> "ColumnStatistics":
        """Compute statistics, sampling very large columns for NDV.

        For columns longer than ``sample_cap`` the number of distinct values
        is estimated from a prefix sample and scaled with a
        birthday-paradox-style correction; min/max are always exact.
        """
        if values.size == 0:
            return cls()
        if values.dtype.kind == "S":
            sample = values[:sample_cap]
            distinct = int(len(np.unique(sample)))
            ordered = np.sort(sample)
            return cls(distinct, ordered[0], ordered[-1])
        minimum = values.min()
        maximum = values.max()
        if values.size <= sample_cap:
            distinct = int(np.unique(values).size)
        else:
            sample = values[:sample_cap]
            d_sample = int(np.unique(sample).size)
            if d_sample >= 0.9 * sample.size:
                # Nearly all-distinct sample: assume proportionality.
                distinct = int(d_sample * (values.size / sample.size))
            else:
                distinct = d_sample
        return cls(distinct, minimum.item(), maximum.item())


@dataclass
class TableStatistics:
    """Row count plus per-column statistics."""

    row_count: int = 0
    columns: dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        return self.columns.get(name, ColumnStatistics())
