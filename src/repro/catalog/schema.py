"""Table schemas: ordered, typed columns."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError
from repro.sql.types import DataType

__all__ = ["Column", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """One column: a name and a SQL type."""

    name: str
    ty: DataType
    primary_key: bool = False


@dataclass
class TableSchema:
    """An ordered list of columns with unique names."""

    name: str
    columns: list[Column] = field(default_factory=list)

    def __post_init__(self):
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise CatalogError(
                    f"duplicate column {col.name!r} in table {self.name!r}"
                )
            seen.add(col.name)
        self._index = {col.name: i for i, col in enumerate(self.columns)}

    def __len__(self) -> int:
        return len(self.columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __iter__(self):
        return iter(self.columns)

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._index[name]]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def index_of(self, name: str) -> int:
        try:
            return self._index[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    @property
    def column_names(self) -> list[str]:
        return [col.name for col in self.columns]

    @property
    def row_size(self) -> int:
        """Bytes per row when materialized as a packed tuple."""
        return sum(col.ty.size for col in self.columns)

    @property
    def primary_key_columns(self) -> list[Column]:
        return [col for col in self.columns if col.primary_key]
