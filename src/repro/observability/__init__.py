"""Query observability: structured traces, metrics, ``EXPLAIN ANALYZE``.

Three cooperating layers make the engine's temporal behaviour — the
substance of the paper's claims — inspectable:

* :mod:`repro.observability.trace` — a per-query :class:`QueryTrace` of
  timestamped, typed span/event records with an injectable monotonic
  clock (deterministic under :class:`FakeClock`);
* :mod:`repro.observability.metrics` — the process-wide
  :data:`REGISTRY` of counters, gauges, and fixed-bucket histograms
  that every subsystem publishes into, exportable as a dict or in
  Prometheus text format;
* :mod:`repro.observability.explain` — the ``EXPLAIN ANALYZE``
  renderer: the physical plan annotated with per-pipeline morsel
  counts, rows produced, and per-tier timings read back from a trace.

Trace event taxonomy (the kinds producers emit):

==========================  =================================================
``parse``/``analyze``/      frontend and planning phases (spans, emitted by
``plan``                    :class:`~repro.db.Database`)
``translation``             plan -> Wasm translation span, containing one
``codegen.pipeline``        span per generated pipeline function
``validate``/``lint``       module checks inside the engine
``compile.liftoff``/        per-tier compilation spans (``functions`` attr);
``compile.turbofan``/       the interpreter "tier" is an instant event
``compile.interpreter``
``engine.attempt``          one execution attempt starts (``engine`` attr)
``engine.attempt_failed``   ... and failed; the fallback chain advances
``execution``               the morsel-driving span
``pipeline``                one pipeline's span (``morsels``, ``rows_out``)
``morsel``                  one morsel invocation (``pipeline``, ``morsel``,
                            ``begin``, ``end``, ``tier`` that ran it)
``tier_up``                 adaptive recompilation patched in optimized code
``tier_up.failure``         TurboFan bailed out; function pinned to Liftoff
``turbofan.bailout``        enforced-TurboFan compile fell back to Liftoff
``rewire.chunk``            the host re-wired the next chunk of a windowed
                            table (Figure 5)
``governor.check``          a budget check ran (only when budgets are set)
``governor.exhausted``      ... and aborted the query
``fault.injected``          a seeded fault fired (``site`` attr)
``tier_stats``              end-of-query tier accounting snapshot
==========================  =================================================
"""

from repro.observability.explain import (
    PipelineStats,
    pipeline_stats_from_trace,
    render_explain_analyze,
)
from repro.observability.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    REGISTRY,
    get_registry,
)
from repro.observability.trace import (
    FakeClock,
    QueryTrace,
    TraceEvent,
    trace_event,
    trace_span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "FakeClock",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "PipelineStats",
    "QueryTrace",
    "REGISTRY",
    "TraceEvent",
    "get_registry",
    "pipeline_stats_from_trace",
    "render_explain_analyze",
    "trace_event",
    "trace_span",
]
