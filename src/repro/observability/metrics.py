"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

A single :data:`REGISTRY` instance is shared by the whole process — the
engines, the adaptive tier-up controller, the resource governor, the
fallback chain, the linter, and the fault injector all publish into it.
Unlike a :class:`~repro.observability.trace.QueryTrace` (one per query,
opt-in), metrics are always on and aggregate across queries, which is
what a production deployment scrapes.

The registry exports two ways:

* :meth:`MetricsRegistry.as_dict` — a plain JSON-serializable dict for
  programmatic consumers (tests, the bench harness), and
* :meth:`MetricsRegistry.prometheus_text` — the Prometheus text
  exposition format (``# TYPE``/``# HELP`` plus one line per labeled
  sample; histograms as cumulative ``_bucket{le=...}`` series).

Labels are plain keyword arguments::

    MORSELS = REGISTRY.counter("morsels_total", "Morsels executed")
    MORSELS.inc(tier="liftoff")

Histogram buckets are fixed at registration so that scrape-to-scrape
deltas are meaningful; the defaults suit query-latency seconds.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "get_registry",
]

#: Default histogram boundaries (seconds): 100 µs .. 10 s, then +Inf.
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


def _label_text(key: tuple) -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


class Metric:
    """Base class: a named, help-texted family of labeled samples."""

    kind = "untyped"

    def __init__(self, name: str, help: str = ""):
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def clear(self) -> None:
        raise NotImplementedError


class Counter(Metric):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = ""):
        super().__init__(name, help)
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0)

    @property
    def total(self) -> float:
        """Sum over every label set."""
        with self._lock:
            return sum(self._values.values())

    def clear(self) -> None:
        with self._lock:
            self._values.clear()

    def _export_values(self) -> dict:
        with self._lock:
            items = sorted(self._values.items())
        return {_label_text(k): v for k, v in items}

    def _prometheus_lines(self) -> list[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [
            f"{self.name}{_label_text(key)} {value}"
            for key, value in items
        ]


class Gauge(Counter):
    """A value that can go up and down (current pages, active queries)."""

    kind = "gauge"

    def inc(self, amount: float = 1, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0) + amount

    def dec(self, amount: float = 1, **labels) -> None:
        self.inc(-amount, **labels)

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = value


class Histogram(Metric):
    """Observations bucketed at fixed boundaries, per label set.

    Stored per label set as ``(per-bucket counts + overflow, sum,
    count)``; exported cumulatively (Prometheus ``le`` semantics).
    """

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: tuple = DEFAULT_BUCKETS):
        super().__init__(name, help)
        self.buckets = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket boundary")
        self._data: dict[tuple, list] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            data = self._data.get(key)
            if data is None:
                data = [[0] * (len(self.buckets) + 1), 0.0, 0]
                self._data[key] = data
            data[0][bisect_left(self.buckets, value)] += 1
            data[1] += value
            data[2] += 1

    def count(self, **labels) -> int:
        with self._lock:
            data = self._data.get(_label_key(labels))
            return 0 if data is None else data[2]

    def sum(self, **labels) -> float:
        with self._lock:
            data = self._data.get(_label_key(labels))
            return 0.0 if data is None else data[1]

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def _cumulative(self, counts: list[int]) -> list[int]:
        out, running = [], 0
        for n in counts:
            running += n
            out.append(running)
        return out

    def _snapshot(self) -> list[tuple]:
        """A consistent copy of every label set's data under the lock."""
        with self._lock:
            return [
                (key, (list(counts), total, n))
                for key, (counts, total, n) in sorted(self._data.items())
            ]

    def _export_values(self) -> dict:
        exported = {}
        for key, (counts, total, n) in self._snapshot():
            cumulative = self._cumulative(counts)
            exported[_label_text(key)] = {
                "buckets": {
                    str(boundary): cumulative[i]
                    for i, boundary in enumerate(self.buckets)
                } | {"+Inf": cumulative[-1]},
                "sum": total,
                "count": n,
            }
        return exported

    def _prometheus_lines(self) -> list[str]:
        lines = []
        for key, (counts, total, n) in self._snapshot():
            cumulative = self._cumulative(counts)
            for i, boundary in enumerate(self.buckets):
                labeled = _label_key(dict(key) | {"le": str(boundary)})
                lines.append(
                    f"{self.name}_bucket{_label_text(labeled)} {cumulative[i]}"
                )
            labeled = _label_key(dict(key) | {"le": "+Inf"})
            lines.append(
                f"{self.name}_bucket{_label_text(labeled)} {cumulative[-1]}"
            )
            lines.append(f"{self.name}_sum{_label_text(key)} {total}")
            lines.append(f"{self.name}_count{_label_text(key)} {n}")
        return lines


class MetricsRegistry:
    """Named metrics, get-or-create semantics, two export formats."""

    def __init__(self):
        self._metrics: dict[str, Metric] = {}
        self._lock = threading.Lock()

    def _register(self, cls, name: str, help: str, **kwargs) -> Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls:
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}"
                    )
                return existing
            metric = cls(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._register(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._register(Gauge, name, help)

    def histogram(self, name: str, help: str = "",
                  buckets: tuple = DEFAULT_BUCKETS) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str) -> Metric | None:
        with self._lock:
            return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._metrics

    def _snapshot(self) -> list[tuple[str, Metric]]:
        with self._lock:
            return sorted(self._metrics.items())

    def reset(self) -> None:
        """Zero every metric's samples (registrations survive)."""
        for _name, metric in self._snapshot():
            metric.clear()

    # -- export ------------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            name: {
                "type": metric.kind,
                "help": metric.help,
                "values": metric._export_values(),
            }
            for name, metric in self._snapshot()
        }

    def prometheus_text(self) -> str:
        lines = []
        for name, metric in self._snapshot():
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric._prometheus_lines())
        return "\n".join(lines) + "\n"


#: The process-wide registry every subsystem publishes into.
REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return REGISTRY
