"""Structured, zero-dependency query tracing.

The paper's central claims are *temporal*: Liftoff code starts running
immediately, TurboFan replaces it mid-query at morsel boundaries, and
compilation time is traded against execution time.  A
:class:`QueryTrace` makes those claims inspectable: every phase of one
query's life — parse, analyze, plan, per-pipeline codegen, validation,
lint, per-tier compilation, every morsel with the tier that ran it,
tier-ups and their failures, chunk re-wiring, governor budget checks,
fallback transitions, injected faults — is recorded as a timestamped,
typed :class:`TraceEvent`.

Determinism by construction: the trace never reads the wall clock
directly.  All timestamps come from an injectable monotonic *clock*
(default :func:`time.perf_counter`), so tests drive a :class:`FakeClock`
and assert golden span sequences byte-for-byte.  Producers never put
wall-clock-derived values into event attributes for the same reason.

Instrumented code uses the ``None``-tolerant module helpers so that an
untraced query pays one ``is None`` check per site::

    from repro.observability.trace import trace_event, trace_span

    with trace_span(trace, "morsel", pipeline=0, tier="liftoff"):
        instance.invoke(fn, begin, end)
    trace_event(trace, "tier_up", function="pipeline_0")
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager

__all__ = [
    "FakeClock",
    "QueryTrace",
    "TraceEvent",
    "trace_event",
    "trace_span",
]


class TraceEvent:
    """One trace record: an instant event (``end is None``) or a span.

    Events are appended to the trace at *start* time, so the event list
    is ordered by span start — nested spans appear before the events
    they enclose finish, exactly like a flattened flame graph.
    """

    __slots__ = ("kind", "start", "end", "attrs")

    def __init__(self, kind: str, start: float, attrs: dict):
        self.kind = kind
        self.start = start
        self.end: float | None = None
        self.attrs = attrs

    @property
    def duration(self) -> float:
        """Span length in clock seconds; 0.0 for instant events."""
        return 0.0 if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "start": round(self.start, 9),
            "end": None if self.end is None else round(self.end, 9),
            "attrs": self.attrs,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = "" if self.end is None else f"..{self.end:.6f}"
        return f"TraceEvent({self.kind!r}, {self.start:.6f}{span}, {self.attrs})"


class QueryTrace:
    """The ordered trace of one query.

    Args:
        query: the SQL text (or any label) this trace belongs to.
        clock: a zero-argument callable returning monotonic seconds;
            defaults to :func:`time.perf_counter`.  Timestamps are
            recorded relative to the clock value at construction.
    """

    def __init__(self, query: str = "", clock=None):
        self._clock = clock if clock is not None else time.perf_counter
        self._origin = self._clock()
        self.query = query
        self.events: list[TraceEvent] = []

    # -- recording ---------------------------------------------------------

    def now(self) -> float:
        """Seconds on the injected clock since the trace was created."""
        return self._clock() - self._origin

    def event(self, kind: str, **attrs) -> TraceEvent:
        """Record an instant event."""
        record = TraceEvent(kind, self.now(), attrs)
        self.events.append(record)
        return record

    @contextmanager
    def span(self, kind: str, **attrs):
        """Record a span around a ``with`` block.

        The yielded :class:`TraceEvent` is live: the block may add
        attributes discovered during execution (row counts, morsel
        totals).  The end timestamp is recorded even when the block
        raises, so traps and budget aborts leave a well-formed trace.
        """
        record = TraceEvent(kind, self.now(), attrs)
        self.events.append(record)
        try:
            yield record
        finally:
            record.end = self.now()

    # -- inspection --------------------------------------------------------

    def kinds(self) -> list[str]:
        """The ordered sequence of event kinds (golden-test currency)."""
        return [event.kind for event in self.events]

    def find(self, kind: str) -> list[TraceEvent]:
        return [event for event in self.events if event.kind == kind]

    def total_seconds(self, kind: str) -> float:
        """Summed duration of every span of one kind."""
        return sum(event.duration for event in self.find(kind))

    def to_dicts(self) -> list[dict]:
        return [event.to_dict() for event in self.events]

    def to_json(self, indent: int | None = None) -> str:
        """The whole trace as JSON (attrs coerced with ``str`` fallback)."""
        return json.dumps(self.to_dicts(), indent=indent, sort_keys=True,
                          default=str)

    def __len__(self) -> int:
        return len(self.events)


class FakeClock:
    """A deterministic clock for tests: every reading advances it.

    Each call returns the current time and then steps it forward, so a
    trace driven by a ``FakeClock`` is fully deterministic — identical
    code paths produce byte-identical JSON.  ``advance`` injects extra
    elapsed time between readings (to model a slow phase).
    """

    def __init__(self, start: float = 0.0, step: float = 0.001):
        self.t = float(start)
        self.step = float(step)

    def __call__(self) -> float:
        now = self.t
        self.t += self.step
        return now

    def advance(self, seconds: float) -> None:
        self.t += seconds


# -- None-tolerant helpers for instrumented code -----------------------------

def trace_event(trace: QueryTrace | None, kind: str, **attrs):
    """Record an instant event, or do nothing when tracing is off."""
    if trace is None:
        return None
    return trace.event(kind, **attrs)


@contextmanager
def trace_span(trace: QueryTrace | None, kind: str, **attrs):
    """Record a span, or run the block untraced when tracing is off."""
    if trace is None:
        yield None
        return
    with trace.span(kind, **attrs) as record:
        yield record
