"""``EXPLAIN ANALYZE``: the physical plan annotated with observed stats.

The renderer consumes a :class:`~repro.observability.trace.QueryTrace`
recorded during a real execution and folds it back onto the plan:

* per **pipeline** — morsel count, rows handed to the sink (or the
  result), and execution time split by the tier that actually ran each
  morsel (the paper's adaptive story, made visible per query);
* per **tier** — functions compiled, tier-ups and their failures,
  bounds checks the interval analysis elided;
* per **phase** — parse, analyze, plan, translation (with per-pipeline
  codegen), validation, lint, per-tier compilation, execution.

All numbers derive from trace events, so an ``EXPLAIN ANALYZE`` under a
:class:`~repro.observability.trace.FakeClock` is fully deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "PipelineStats",
    "pipeline_stats_from_trace",
    "render_explain_analyze",
]

#: Phase span kinds rendered in the summary line, in lifecycle order.
_PHASE_KINDS = (
    "parse", "analyze", "plan", "plan.analysis", "plan.lint",
    "translation", "validate", "lint",
    "compile.stencil", "compile.liftoff", "compile.turbofan", "execution",
)

#: Execution tiers in ladder order; the ``tiers:`` line is data-driven
#: over whichever ``<tier>_functions`` attributes the trace's
#: ``tier_stats`` event actually carries, so a new tier shows up by
#: being listed here rather than by editing the renderer.
_TIER_ORDER = ("stencil", "liftoff", "turbofan")


@dataclass
class PipelineStats:
    """Observed execution statistics of one pipeline."""

    index: int
    function: str = ""
    source: str = ""
    description: str = ""
    morsels: int = 0
    #: Rows this pipeline handed to its sink (hash-table entries, sort
    #: rows) or, for the final pipeline, rows delivered to the result.
    rows_out: int | None = None
    #: The planner's estimate of ``rows_out`` (set when the plan
    #: dissection is available) — rendered as ``est=`` next to the
    #: measured rows, so misestimates are visible per pipeline.
    est: float | None = None
    tier_morsels: dict[str, int] = field(default_factory=dict)
    tier_seconds: dict[str, float] = field(default_factory=dict)
    rewires: int = 0
    #: Backend operator-shape descriptor (the stencil-cache key's
    #: plan-level counterpart); empty when the engine doesn't report one.
    shape: str = ""


def pipeline_stats_from_trace(trace, pipelines=None) -> list[PipelineStats]:
    """Fold a trace's pipeline/morsel/rewire events into per-pipeline stats.

    ``pipelines`` (the plan dissection) is optional; when given, each
    stat gets the pipeline's human-readable ``describe()`` string.
    """
    stats: dict[int, PipelineStats] = {}

    def stat_for(index) -> PipelineStats:
        if index not in stats:
            stats[index] = PipelineStats(index=index)
        return stats[index]

    for event in trace.events:
        if event.kind == "pipeline":
            stat = stat_for(event.attrs["pipeline"])
            stat.function = event.attrs.get("function", stat.function)
            stat.source = event.attrs.get("source", stat.source)
            if "morsels" in event.attrs:
                stat.morsels = event.attrs["morsels"]
            if "rows_out" in event.attrs:
                stat.rows_out = event.attrs["rows_out"]
        elif event.kind == "morsel":
            stat = stat_for(event.attrs.get("pipeline"))
            tier = event.attrs.get("tier") or "?"
            stat.tier_morsels[tier] = stat.tier_morsels.get(tier, 0) + 1
            stat.tier_seconds[tier] = (
                stat.tier_seconds.get(tier, 0.0) + event.duration
            )
        elif event.kind == "rewire.chunk":
            stat = stat_for(event.attrs.get("pipeline"))
            stat.rewires += 1

    if pipelines is not None:
        from repro.plan.pipeline import estimated_rows_out

        for pipeline in pipelines:
            if pipeline.index in stats:
                stats[pipeline.index].description = pipeline.describe()
                stats[pipeline.index].est = estimated_rows_out(pipeline)
    return [stats[index] for index in sorted(stats)]


def _ms(seconds: float) -> str:
    return f"{seconds * 1000:.3f}ms"


def render_explain_analyze(plan, trace, stats: list[PipelineStats],
                           engine_spec: str,
                           total_rows: int | None = None,
                           cache: str | None = None,
                           feedback_lines: list[str] | None = None,
                           ) -> list[str]:
    """The annotated plan as text lines (one per output row).

    ``cache`` is the plan-cache disposition of this execution —
    ``"hit"`` or ``"miss"`` — when the query ran through the query
    service; ``None`` (standalone execution) omits the line.
    ``feedback_lines`` are the feedback store's ``feedback:`` lines for
    this statement (observation count, worst Q-Error, re-plan and
    routing decisions in force), rendered after the tier summary.
    """
    from repro.plan.physical import explain_physical

    lines = [f"EXPLAIN ANALYZE (engine={engine_spec})"]
    if cache is not None:
        lines.append(f"cache: {cache}")
    lines.extend(explain_physical(plan).split("\n"))

    analysis = getattr(plan, "analysis", None)
    if analysis is not None:
        derived = analysis.describe()
        if derived:
            lines.append("analysis:")
            lines.extend(f"  {line}" for line in derived)

    if stats:
        lines.append("pipelines:")
        for stat in stats:
            header = stat.description or f"P{stat.index}: {stat.function}"
            lines.append(f"  {header}")
            detail = [f"morsels={stat.morsels}"]
            if stat.rows_out is not None:
                detail.append(f"rows={stat.rows_out}")
                if stat.est is not None:
                    detail.append(f"est={stat.est:g}")
            if stat.rewires:
                detail.append(f"rewires={stat.rewires}")
            for tier in sorted(stat.tier_morsels):
                detail.append(
                    f"{tier}={stat.tier_morsels[tier]} morsel(s)"
                    f"/{_ms(stat.tier_seconds.get(tier, 0.0))}"
                )
            lines.append("    " + "  ".join(detail))
            if stat.shape:
                lines.append(f"    shape: {stat.shape}")

    tier_events = trace.find("tier_stats")
    if tier_events:
        attrs = tier_events[-1].attrs
        parts = [
            f"{tier}={attrs[f'{tier}_functions']} fn"
            for tier in _TIER_ORDER if f"{tier}_functions" in attrs
        ]
        parts.append(
            f"tier-ups={attrs.get('tier_ups', 0)} "
            f"(failures={attrs.get('tier_up_failures', 0)}) "
            f"bounds-checks-elided={attrs.get('bounds_checks_elided', 0)}"
        )
        if "stencil_cache_hits" in attrs:
            parts.append(
                f"stencil-cache={attrs['stencil_cache_hits']} hit(s)"
                f"/{attrs.get('stencil_cache_misses', 0)} miss(es)"
            )
        lines.append("tiers: " + " ".join(parts))

    if feedback_lines:
        lines.extend(feedback_lines)

    phases = [
        f"{kind}={_ms(trace.total_seconds(kind))}"
        for kind in _PHASE_KINDS if trace.find(kind)
    ]
    if phases:
        lines.append("phases: " + " ".join(phases))
    if total_rows is not None:
        lines.append(f"result: {total_rows} row(s)")
    return lines
