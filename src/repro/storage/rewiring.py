"""Rewiring: a paged 32-bit address space over host allocations.

The paper (Section 6.1) uses *rewiring* [Schuhknecht et al.] to manipulate
virtual-memory mappings from user space: host allocations (table columns,
result buffers) that live at arbitrary addresses are made to appear as one
consecutive region, which is then handed to the Wasm module as its linear
memory — **without copying**.  Because Wasm (MVP) is limited to 32-bit
addressing, at most 4 GiB can be mapped at once; larger tables are
processed in chunks that are re-wired on demand via a host callback
(``rewire_next_chunk`` in the paper, :meth:`AddressSpace.remap` here).

This module simulates the mechanism faithfully at the level that matters:

* the module-visible address space is an array of 64 KiB pages;
* each page is backed, zero-copy, by a slice of a host buffer
  (``memoryview`` over a NumPy array or ``bytearray``);
* mapping and re-mapping only update the page table — O(pages), no copies;
* loads/stores translate a 32-bit address via ``addr >> 16`` into the page
  table, exactly like an MMU walk.

The Wasm runtime's :class:`~repro.wasm.runtime.memory.LinearMemory` is a
thin facade over an :class:`AddressSpace`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RewiringError

__all__ = ["WASM_PAGE_SIZE", "Mapping", "AddressSpace"]

WASM_PAGE_SIZE = 1 << 16  # 64 KiB, as in the WebAssembly spec
_PAGE_MASK = WASM_PAGE_SIZE - 1
MAX_PAGES = 1 << 16  # 4 GiB / 64 KiB


@dataclass
class Mapping:
    """One mapped region: ``npages`` pages starting at ``address``."""

    name: str
    address: int
    length: int  # bytes of backing buffer actually mapped

    @property
    def npages(self) -> int:
        return -(-self.length // WASM_PAGE_SIZE)

    @property
    def end(self) -> int:
        return self.address + self.npages * WASM_PAGE_SIZE


class AddressSpace:
    """A 32-bit, paged address space with zero-copy mappings.

    Attributes:
        pages: the page table.  Entry ``p`` is ``None`` (unmapped) or a
            ``(buffer, base)`` pair meaning byte ``addr`` of the address
            space is byte ``base + (addr & 0xFFFF)`` of ``buffer``.
    """

    #: Optional per-query :class:`repro.robustness.ResourceGovernor`.
    #: When set, every page reservation is charged against the query's
    #: memory budget *before* it takes effect — the single choke point
    #: through which ``alloc``, ``map_buffer`` and ``memory.grow`` all
    #: pass.
    governor = None

    def __init__(self, max_pages: int = MAX_PAGES, first_page: int = 1):
        """By default page 0 stays unmapped as a NULL guard (address 0 is
        the generated code's null pointer); pass ``first_page=0`` for
        plain spec-conformant memories that must be valid from address 0.
        """
        if not (0 < max_pages <= MAX_PAGES):
            raise RewiringError(f"max_pages must be in 1..{MAX_PAGES}")
        self.max_pages = max_pages
        self.pages: list[tuple[object, int] | None] = [None] * max_pages
        self._next_page = first_page
        self.mappings: dict[str, Mapping] = {}

    # -- mapping ---------------------------------------------------------------

    @property
    def bytes_mapped(self) -> int:
        return sum(m.npages for m in self.mappings.values()) * WASM_PAGE_SIZE

    def _reserve(self, npages: int) -> int:
        start = self._next_page
        if start + npages > self.max_pages:
            raise RewiringError(
                f"address space exhausted: need {npages} pages, "
                f"{self.max_pages - start} free"
            )
        if self.governor is not None:
            # may raise ResourceExhausted; nothing is reserved in that case
            self.governor.charge_pages(npages)
        self._next_page += npages
        return start

    def map_buffer(self, name: str, buffer, writable: bool = False) -> int:
        """Map ``buffer`` at the next free page-aligned address; return it.

        The buffer is aliased, not copied — the essence of rewiring.  The
        last page may be partially backed; accesses past the end of the
        buffer trap, mirroring an access past the high-water mark.
        """
        if name in self.mappings:
            raise RewiringError(f"mapping {name!r} already exists")
        view = memoryview(buffer)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        if writable and view.readonly:
            raise RewiringError(f"mapping {name!r}: buffer is read-only")
        length = view.nbytes
        npages = max(1, -(-length // WASM_PAGE_SIZE))
        start = self._reserve(npages)
        for p in range(npages):
            self.pages[start + p] = (view, p * WASM_PAGE_SIZE)
        addr = start * WASM_PAGE_SIZE
        self.mappings[name] = Mapping(name, addr, length)
        return addr

    def alloc(self, name: str, nbytes: int) -> int:
        """Allocate fresh zeroed, module-owned memory and map it.

        Used for scratch space the generated code owns: hash tables, sort
        buffers, and the result-set window of Figure 5.
        """
        if nbytes <= 0:
            raise RewiringError(f"allocation size must be positive, got {nbytes}")
        # Validate before constructing the backing buffer: an over-budget
        # request must fail fast, not materialise gigabytes first.
        npages = max(1, -(-nbytes // WASM_PAGE_SIZE))
        if self._next_page + npages > self.max_pages:
            raise RewiringError(
                f"address space exhausted: need {npages} pages, "
                f"{self.max_pages - self._next_page} free"
            )
        if self.governor is not None:
            self.governor.ensure_pages(npages)
        buf = bytearray(npages * WASM_PAGE_SIZE)
        addr = self.map_buffer(name, buf, writable=True)
        return addr

    def remap(self, name: str, buffer) -> int:
        """Re-wire an existing mapping to a different host buffer.

        This is the paper's ``rewire_next_chunk`` callback: the module keeps
        addressing the same virtual range while the host swaps which chunk
        of a large table backs it.  The new buffer must fit in the pages of
        the existing mapping.
        """
        try:
            mapping = self.mappings[name]
        except KeyError:
            raise RewiringError(f"unknown mapping {name!r}") from None
        view = memoryview(buffer)
        if view.ndim != 1 or view.itemsize != 1:
            view = view.cast("B")
        if view.nbytes > mapping.npages * WASM_PAGE_SIZE:
            raise RewiringError(
                f"remap {name!r}: buffer of {view.nbytes} bytes exceeds the "
                f"mapped window of {mapping.npages} pages"
            )
        start = mapping.address >> 16
        for p in range(mapping.npages):
            if p * WASM_PAGE_SIZE < view.nbytes:
                self.pages[start + p] = (view, p * WASM_PAGE_SIZE)
            else:
                self.pages[start + p] = None
        mapping.length = view.nbytes
        return mapping.address

    def unmap(self, name: str) -> None:
        """Remove a mapping.  The address range is not recycled (the paper
        tears the whole space down per query, as do we)."""
        try:
            mapping = self.mappings.pop(name)
        except KeyError:
            raise RewiringError(f"unknown mapping {name!r}") from None
        start = mapping.address >> 16
        for p in range(mapping.npages):
            self.pages[start + p] = None

    def address_of(self, name: str) -> int:
        try:
            return self.mappings[name].address
        except KeyError:
            raise RewiringError(f"unknown mapping {name!r}") from None

    # -- byte access (used by hosts and tests; the Wasm runtime has its own
    #    fast path over .pages) -------------------------------------------------

    def read(self, addr: int, size: int) -> bytes:
        """Read ``size`` bytes at ``addr`` (may span pages of one buffer)."""
        out = bytearray()
        while size > 0:
            entry = self.pages[addr >> 16]
            if entry is None:
                raise RewiringError(f"read from unmapped address {addr:#x}")
            buf, base = entry
            off = base + (addr & _PAGE_MASK)
            take = min(size, WASM_PAGE_SIZE - (addr & _PAGE_MASK), len(buf) - off)
            if take <= 0:
                raise RewiringError(f"read past end of mapping at {addr:#x}")
            out += buf[off : off + take]
            addr += take
            size -= take
        return bytes(out)

    def write(self, addr: int, data: bytes) -> None:
        """Write ``data`` at ``addr`` (may span pages of one buffer)."""
        pos = 0
        size = len(data)
        while pos < size:
            entry = self.pages[addr >> 16]
            if entry is None:
                raise RewiringError(f"write to unmapped address {addr:#x}")
            buf, base = entry
            if isinstance(buf, memoryview) and buf.readonly:
                raise RewiringError(f"write to read-only mapping at {addr:#x}")
            off = base + (addr & _PAGE_MASK)
            take = min(size - pos, WASM_PAGE_SIZE - (addr & _PAGE_MASK), len(buf) - off)
            if take <= 0:
                raise RewiringError(f"write past end of mapping at {addr:#x}")
            buf[off : off + take] = data[pos : pos + take]
            addr += take
            pos += take
