"""Ordered secondary indexes.

An :class:`OrderedIndex` is the simplest index that supports the paper's
"index seek" source (Section 4.2): a sorted copy of the key column plus
the row-id permutation.  Both parts are single contiguous arrays, so the
rewiring layer can map them into a Wasm module's linear memory zero-copy
— resolving the "non-consecutive data structures" limitation the paper
defers to future work (its footnote 3 / Section 8.2).

Lookups are range scans: ``positions(low, high)`` returns the half-open
position range within the permutation whose keys fall into the
*inclusive* ``[low, high]`` key interval (either side may be None).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError

__all__ = ["OrderedIndex"]


class OrderedIndex:
    """A sorted-key + row-id-permutation index over one column."""

    def __init__(self, name: str, column_name: str, keys: np.ndarray):
        if keys.dtype.kind not in "ifb":
            raise StorageError(
                f"index {name!r}: only numeric/date keys are supported"
            )
        self.name = name
        self.column_name = column_name
        order = np.argsort(keys, kind="stable")
        self.sorted_keys = np.ascontiguousarray(keys[order])
        self.row_ids = np.ascontiguousarray(order.astype(np.int32))

    def __len__(self) -> int:
        return int(self.sorted_keys.size)

    def positions(self, low=None, high=None, low_strict=False,
                  high_strict=False) -> tuple[int, int]:
        """The position range [lo, hi) of keys within the bounds.

        Bounds are inclusive unless the matching ``*_strict`` flag is
        set; either bound may be None (open)."""
        lo = 0 if low is None else int(np.searchsorted(
            self.sorted_keys, low, side="right" if low_strict else "left"
        ))
        hi = len(self) if high is None else int(np.searchsorted(
            self.sorted_keys, high, side="left" if high_strict else "right"
        ))
        return lo, max(hi, lo)

    def key_buffer(self) -> memoryview:
        return memoryview(self.sorted_keys).cast("B")

    def row_id_buffer(self) -> memoryview:
        return memoryview(self.row_ids).cast("B")
