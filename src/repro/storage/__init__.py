"""Storage: columnar tables on NumPy buffers and the rewired address space."""

from repro.storage.column import Column
from repro.storage.table import Table
from repro.storage.rewiring import WASM_PAGE_SIZE, AddressSpace, Mapping

__all__ = ["AddressSpace", "Column", "Mapping", "Table", "WASM_PAGE_SIZE"]
