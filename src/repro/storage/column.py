"""A single stored column: a typed NumPy buffer.

Columns are the unit the rewiring layer maps into Wasm linear memory:
each column is one contiguous host allocation, so a query engine can map
it zero-copy (Section 6.1 of the paper).
"""

from __future__ import annotations

import numpy as np

from repro.errors import StorageError
from repro.sql.types import DataType

__all__ = ["Column"]


class Column:
    """A typed, contiguous column of values.

    The public accessors (:meth:`__getitem__`, :meth:`to_list`) speak
    Python-level values (dates, floats, strings); :attr:`values` exposes
    the raw storage representation for the engines.
    """

    def __init__(self, name: str, ty: DataType, values: np.ndarray):
        expected = ty.numpy_dtype
        if values.dtype != expected:
            raise StorageError(
                f"column {name!r}: expected dtype {expected}, got {values.dtype}"
            )
        if not values.flags["C_CONTIGUOUS"]:
            values = np.ascontiguousarray(values)
        self.name = name
        self.ty = ty
        self.values = values

    # -- construction --------------------------------------------------------

    @classmethod
    def from_values(cls, name: str, ty: DataType, values) -> "Column":
        """Build a column from Python-level values (converting each)."""
        storage = [ty.to_storage(v) for v in values]
        if ty.is_string:
            arr = np.array(storage, dtype=ty.numpy_dtype)
        else:
            arr = np.asarray(storage, dtype=ty.numpy_dtype)
        return cls(name, ty, arr)

    @classmethod
    def from_storage_array(cls, name: str, ty: DataType, values: np.ndarray) -> "Column":
        """Build a column from an array already in storage representation."""
        return cls(name, ty, np.asarray(values, dtype=ty.numpy_dtype))

    # -- access ---------------------------------------------------------------

    def __len__(self) -> int:
        return int(self.values.size)

    def __getitem__(self, index: int):
        return self.ty.from_storage(self.values[index])

    def to_list(self) -> list:
        return [self.ty.from_storage(v) for v in self.values]

    @property
    def nbytes(self) -> int:
        return int(self.values.nbytes)

    @property
    def element_size(self) -> int:
        return self.ty.size

    def buffer(self) -> memoryview:
        """The raw bytes of the column, for zero-copy mapping."""
        return memoryview(self.values).cast("B")

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Column({self.name!r}, {self.ty}, {len(self)} values)"
