"""Columnar tables.

A :class:`Table` owns one :class:`~repro.storage.column.Column` per schema
column (the paper's experiments all use a columnar layout).  Statistics for
the optimizer are computed lazily and cached.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import TableSchema
from repro.catalog.statistics import ColumnStatistics, TableStatistics
from repro.errors import StorageError
from repro.storage.column import Column

__all__ = ["Table"]


class Table:
    """A columnar, main-memory table."""

    def __init__(self, schema: TableSchema, columns: list[Column]):
        if [c.name for c in columns] != schema.column_names:
            raise StorageError(
                f"columns {[c.name for c in columns]} do not match schema "
                f"{schema.column_names}"
            )
        lengths = {len(c) for c in columns}
        if len(lengths) > 1:
            raise StorageError(f"ragged columns: lengths {sorted(lengths)}")
        self.schema = schema
        self.columns = columns
        self._by_name = {c.name: c for c in columns}
        self._statistics: TableStatistics | None = None
        self.indexes: dict[str, object] = {}  # column name -> OrderedIndex

    # -- construction --------------------------------------------------------

    @classmethod
    def empty(cls, schema: TableSchema) -> "Table":
        columns = [
            Column(col.name, col.ty, np.empty(0, dtype=col.ty.numpy_dtype))
            for col in schema
        ]
        return cls(schema, columns)

    @classmethod
    def from_rows(cls, schema: TableSchema, rows) -> "Table":
        """Build a table from an iterable of Python-level row tuples."""
        rows = list(rows)
        columns = []
        for i, col in enumerate(schema):
            columns.append(
                Column.from_values(col.name, col.ty, [row[i] for row in rows])
            )
        return cls(schema, columns)

    @classmethod
    def from_arrays(cls, schema: TableSchema, arrays: dict[str, np.ndarray]) -> "Table":
        """Build a table from storage-representation arrays, by column name."""
        columns = []
        for col in schema:
            try:
                arr = arrays[col.name]
            except KeyError:
                raise StorageError(f"missing array for column {col.name!r}") from None
            columns.append(Column.from_storage_array(col.name, col.ty, arr))
        return cls(schema, columns)

    # -- access ----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.columns[0]) if self.columns else 0

    @property
    def row_count(self) -> int:
        return len(self)

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise StorageError(
                f"table {self.schema.name!r} has no column {name!r}"
            ) from None

    def rows(self):
        """Iterate Python-level row tuples (slow; for tests and small data)."""
        for i in range(len(self)):
            yield tuple(col[i] for col in self.columns)

    def append_rows(self, rows) -> None:
        """Append Python-level rows (rebuilds column buffers)."""
        rows = list(rows)
        if not rows:
            return
        for i, scol in enumerate(self.schema):
            col = self.columns[i]
            new = Column.from_values(col.name, scol.ty, [row[i] for row in rows])
            col.values = np.concatenate([col.values, new.values])
        self._statistics = None
        for column_name in list(self.indexes):
            self.create_index(column_name,
                              self.indexes[column_name].name)

    # -- indexes ------------------------------------------------------------------

    def create_index(self, column_name: str, index_name: str | None = None):
        """Build an ordered index over ``column_name``."""
        from repro.storage.index import OrderedIndex

        column = self.column(column_name)
        index = OrderedIndex(
            index_name or f"idx_{self.schema.name}_{column_name}",
            column_name, column.values,
        )
        self.indexes[column_name] = index
        return index

    def index_on(self, column_name: str):
        return self.indexes.get(column_name)

    # -- statistics --------------------------------------------------------------

    @property
    def statistics(self) -> TableStatistics:
        if self._statistics is None:
            self._statistics = TableStatistics(
                row_count=len(self),
                columns={
                    c.name: ColumnStatistics.from_array(c.values)
                    for c in self.columns
                },
            )
        return self._statistics

    def invalidate_statistics(self) -> None:
        self._statistics = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.schema.name!r}, {len(self)} rows)"
