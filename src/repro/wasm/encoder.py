"""Encoding of modules to the binary ``.wasm`` format.

Implements the WebAssembly MVP binary format: LEB128 integers, the section
layout (type, import, function, table, memory, global, export, start,
element, code, data) and an optional custom *name* section carrying
function names for debuggability.  Structured instructions are flattened
into the ``end``-terminated byte form.
"""

from __future__ import annotations

import struct

from repro.errors import EncodeError
from repro.wasm.module import Module
from repro.wasm.opcodes import OPS

__all__ = ["encode_module", "encode_uleb", "encode_sleb"]

MAGIC = b"\x00asm"
VERSION = b"\x01\x00\x00\x00"

_VALTYPE_CODE = {"i32": 0x7F, "i64": 0x7E, "f32": 0x7D, "f64": 0x7C}
_FUNCREF = 0x70


def encode_uleb(value: int) -> bytes:
    """Unsigned LEB128."""
    if value < 0:
        raise EncodeError(f"uleb of negative value {value}")
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return bytes(out)


def encode_sleb(value: int) -> bytes:
    """Signed LEB128."""
    out = bytearray()
    while True:
        byte = value & 0x7F
        value >>= 7
        sign = byte & 0x40
        if (value == 0 and not sign) or (value == -1 and sign):
            out.append(byte)
            return bytes(out)
        out.append(byte | 0x80)


def _name(text: str) -> bytes:
    raw = text.encode("utf-8")
    return encode_uleb(len(raw)) + raw


def _limits(minimum: int, maximum: int | None) -> bytes:
    if maximum is None:
        return b"\x00" + encode_uleb(minimum)
    return b"\x01" + encode_uleb(minimum) + encode_uleb(maximum)


def _blocktype(results: list[str]) -> bytes:
    if not results:
        return b"\x40"
    if len(results) == 1:
        return bytes([_VALTYPE_CODE[results[0]]])
    raise EncodeError("multi-value block results are not supported (MVP)")


def _const_expr(valtype: str, value) -> bytes:
    """A constant initializer expression (for globals and segment offsets)."""
    out = bytearray()
    if valtype == "i32":
        out.append(0x41)
        out += encode_sleb(int(value))
    elif valtype == "i64":
        out.append(0x42)
        out += encode_sleb(int(value))
    elif valtype == "f32":
        out.append(0x43)
        out += struct.pack("<f", float(value))
    elif valtype == "f64":
        out.append(0x44)
        out += struct.pack("<d", float(value))
    else:
        raise EncodeError(f"bad const type {valtype!r}")
    out.append(0x0B)  # end
    return bytes(out)


def _encode_instruction(instr: tuple, out: bytearray) -> None:
    op_name = instr[0]

    if op_name == "block" or op_name == "loop":
        out.append(OPS[op_name].code)
        out += _blocktype(instr[1])
        _encode_body(instr[2], out)
        out.append(0x0B)
        return
    if op_name == "if":
        out.append(0x04)
        out += _blocktype(instr[1])
        _encode_body(instr[2], out)
        if instr[3]:
            out.append(0x05)  # else
            _encode_body(instr[3], out)
        out.append(0x0B)
        return

    op = OPS.get(op_name)
    if op is None:
        raise EncodeError(f"unknown instruction {op_name!r}")
    out.append(op.code)
    imm = op.imm
    if imm == "":
        return
    if imm == "i32" or imm == "i64":
        out += encode_sleb(int(instr[1]))
    elif imm == "f32":
        out += struct.pack("<f", float(instr[1]))
    elif imm == "f64":
        out += struct.pack("<d", float(instr[1]))
    elif imm in ("local", "global", "func", "label"):
        out += encode_uleb(int(instr[1]))
    elif imm == "memarg":
        out += encode_uleb(int(instr[1]))  # align (log2)
        out += encode_uleb(int(instr[2]))  # offset
    elif imm == "mem":
        out.append(0x00)
    elif imm == "br_table":
        targets, default = instr[1], instr[2]
        out += encode_uleb(len(targets))
        for t in targets:
            out += encode_uleb(int(t))
        out += encode_uleb(int(default))
    elif imm == "call_indirect":
        out += encode_uleb(int(instr[1]))  # type index
        out += encode_uleb(int(instr[2]))  # table index
    else:  # pragma: no cover - exhaustive
        raise EncodeError(f"unhandled immediate kind {imm!r}")


def _encode_body(body: list, out: bytearray) -> None:
    for instr in body:
        _encode_instruction(instr, out)


def _section(section_id: int, payload: bytes) -> bytes:
    return bytes([section_id]) + encode_uleb(len(payload)) + payload


def encode_module(module: Module, include_names: bool = True) -> bytes:
    """Encode ``module`` to binary ``.wasm`` bytes."""
    out = bytearray(MAGIC + VERSION)

    # 1: types
    if module.types:
        payload = bytearray(encode_uleb(len(module.types)))
        for ft in module.types:
            payload.append(0x60)
            payload += encode_uleb(len(ft.params))
            payload += bytes(_VALTYPE_CODE[t] for t in ft.params)
            payload += encode_uleb(len(ft.results))
            payload += bytes(_VALTYPE_CODE[t] for t in ft.results)
        out += _section(1, bytes(payload))

    # 2: imports
    if module.imports:
        payload = bytearray(encode_uleb(len(module.imports)))
        for imp in module.imports:
            payload += _name(imp.module) + _name(imp.name)
            payload += b"\x00" + encode_uleb(imp.type_index)
        out += _section(2, bytes(payload))

    # 3: function declarations
    if module.functions:
        payload = bytearray(encode_uleb(len(module.functions)))
        for func in module.functions:
            payload += encode_uleb(func.type_index)
        out += _section(3, bytes(payload))

    # 4: tables
    if module.tables:
        payload = bytearray(encode_uleb(len(module.tables)))
        for table in module.tables:
            payload.append(_FUNCREF)
            payload += _limits(table.minimum, table.maximum)
        out += _section(4, bytes(payload))

    # 5: memories
    if module.memories:
        payload = bytearray(encode_uleb(len(module.memories)))
        for mem in module.memories:
            payload += _limits(mem.minimum, mem.maximum)
        out += _section(5, bytes(payload))

    # 6: globals
    if module.globals:
        payload = bytearray(encode_uleb(len(module.globals)))
        for glob in module.globals:
            payload.append(_VALTYPE_CODE[glob.valtype])
            payload.append(0x01 if glob.mutable else 0x00)
            payload += _const_expr(glob.valtype, glob.init)
        out += _section(6, bytes(payload))

    # 7: exports
    if module.exports:
        kinds = {"func": 0, "table": 1, "memory": 2, "global": 3}
        payload = bytearray(encode_uleb(len(module.exports)))
        for export in module.exports:
            payload += _name(export.name)
            payload.append(kinds[export.kind])
            payload += encode_uleb(export.index)
        out += _section(7, bytes(payload))

    # 8: start
    if module.start is not None:
        out += _section(8, encode_uleb(module.start))

    # 9: element segments
    if module.elements:
        payload = bytearray(encode_uleb(len(module.elements)))
        for elem in module.elements:
            payload += encode_uleb(elem.table_index)
            payload += _const_expr("i32", elem.offset)
            payload += encode_uleb(len(elem.func_indices))
            for fi in elem.func_indices:
                payload += encode_uleb(fi)
        out += _section(9, bytes(payload))

    # 10: code
    if module.functions:
        payload = bytearray(encode_uleb(len(module.functions)))
        for func in module.functions:
            body = bytearray()
            # run-length-encode the local declarations
            groups: list[tuple[int, str]] = []
            for ty in func.locals_:
                if groups and groups[-1][1] == ty:
                    groups[-1] = (groups[-1][0] + 1, ty)
                else:
                    groups.append((1, ty))
            body += encode_uleb(len(groups))
            for count, ty in groups:
                body += encode_uleb(count)
                body.append(_VALTYPE_CODE[ty])
            _encode_body(func.body, body)
            body.append(0x0B)  # end of function
            payload += encode_uleb(len(body)) + body
        out += _section(10, bytes(payload))

    # 11: data segments
    if module.data:
        payload = bytearray(encode_uleb(len(module.data)))
        for seg in module.data:
            payload += encode_uleb(seg.memory_index)
            payload += _const_expr("i32", seg.offset)
            payload += encode_uleb(len(seg.payload)) + seg.payload
        out += _section(11, bytes(payload))

    # custom "name" section, for debuggability
    if include_names:
        names = bytearray(_name("name"))
        func_names = [
            (len(module.imports) + i, f.name)
            for i, f in enumerate(module.functions)
            if f.name
        ]
        if func_names:
            sub = bytearray(encode_uleb(len(func_names)))
            for index, fname in func_names:
                sub += encode_uleb(index) + _name(fname)
            names.append(1)  # function-names subsection
            names += encode_uleb(len(sub)) + sub
            out += _section(0, bytes(names))

    return bytes(out)
