"""Convenient construction of Wasm modules and function bodies.

:class:`ModuleBuilder` assembles a :class:`~repro.wasm.module.Module`;
:class:`FunctionBuilder` emits instructions with structured-control
context managers::

    mb = ModuleBuilder("query")
    fb = mb.function("f", params=[("i32", "n")], results=["i32"], export=True)
    acc = fb.local("i32", "acc")
    with fb.block() as done:
        with fb.loop() as top:
            fb.get(fb.param(0))
            fb.emit("i32.eqz")
            fb.br_if(done)
            ...
            fb.br(top)
    fb.get(acc)
    module = mb.finish()

The emitted body is the tuple-IR of :mod:`repro.wasm.opcodes`; the
generated module can be validated, encoded to binary, interpreted, or
tier-compiled.
"""

from __future__ import annotations

from repro.errors import EncodeError
from repro.wasm.module import (
    Data,
    Element,
    Export,
    FuncType,
    Function,
    Global,
    Import,
    MemoryType,
    Module,
    TableType,
)
from repro.wasm.opcodes import OPS, VALUE_TYPES

__all__ = ["ModuleBuilder", "FunctionBuilder", "Label"]


class Label:
    """A branch target created by ``block``/``loop``/``if`` context managers."""

    def __init__(self, builder: "FunctionBuilder", kind: str, position: int):
        self._builder = builder
        self.kind = kind
        self.position = position  # index in the builder's control stack

    def depth(self) -> int:
        """The relative depth for a ``br`` emitted *now*."""
        return len(self._builder._control) - 1 - self.position


class _BlockContext:
    """Context manager that opens and closes one structured instruction."""

    def __init__(self, builder: "FunctionBuilder", kind: str, results: list[str]):
        self._builder = builder
        self._kind = kind
        self._results = list(results)

    def __enter__(self) -> Label:
        builder = self._builder
        body: list = []
        if self._kind == "if":
            else_body: list = []
            instr = ("if", self._results, body, else_body)
            self._else_body = else_body
        else:
            instr = (self._kind, self._results, body)
        builder._current().append(instr)
        builder._bodies.append(body)
        label = Label(builder, self._kind, len(builder._control))
        builder._control.append(label)
        self._label = label
        return label

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._builder._bodies.pop()
            self._builder._control.pop()


class _IfContext(_BlockContext):
    """``if`` context manager with an :meth:`else_` switch.

    Unlike block/loop, entering yields the context itself (so ``else_``
    is reachable); it quacks like a :class:`Label` via :meth:`depth`.
    """

    def __init__(self, builder: "FunctionBuilder", results: list[str]):
        super().__init__(builder, "if", results)
        self._in_else = False

    def __enter__(self) -> "_IfContext":
        super().__enter__()
        return self

    def depth(self) -> int:
        return self._label.depth()

    def else_(self) -> None:
        """Switch emission from the then-branch to the else-branch."""
        if self._in_else:
            raise EncodeError("else_() called twice")
        self._in_else = True
        self._builder._bodies.pop()
        self._builder._bodies.append(self._else_body)


class FunctionBuilder:
    """Emits one function body."""

    def __init__(
        self,
        module_builder: "ModuleBuilder",
        name: str,
        params: list[tuple[str, str]],
        results: list[str],
    ):
        for ty, _ in params:
            if ty not in VALUE_TYPES:
                raise EncodeError(f"bad param type {ty!r}")
        for ty in results:
            if ty not in VALUE_TYPES:
                raise EncodeError(f"bad result type {ty!r}")
        self._mb = module_builder
        self.name = name
        self.param_types = [ty for ty, _ in params]
        self.result_types = list(results)
        self._locals: list[str] = []
        self._local_names: dict[int, str] = {
            i: pname for i, (_, pname) in enumerate(params)
        }
        self.body: list = []
        self._bodies: list[list] = [self.body]
        self._control: list[Label] = []
        self.func_index: int = -1  # assigned by ModuleBuilder
        self._param_ranges: dict[int, tuple[int, int]] = {}
        # (id(body list), position) -> (lo, hi); converted to preorder
        # offsets at finish() time, once bodies stop growing
        self._value_ranges: dict[tuple[int, int], tuple[int, int]] = {}

    # -- locals -----------------------------------------------------------

    def param(self, index: int) -> int:
        """The local index of parameter ``index``."""
        if not (0 <= index < len(self.param_types)):
            raise EncodeError(f"no parameter {index}")
        return index

    def local(self, ty: str, name: str | None = None) -> int:
        """Declare a fresh local of type ``ty``; returns its index."""
        if ty not in VALUE_TYPES:
            raise EncodeError(f"bad local type {ty!r}")
        index = len(self.param_types) + len(self._locals)
        self._locals.append(ty)
        if name:
            self._local_names[index] = name
        return index

    def param_range(self, index: int, lo: int, hi: int) -> "FunctionBuilder":
        """Declare the caller's contract that parameter ``index`` stays in
        ``[lo, hi]`` — advisory metadata consumed by the static analyses."""
        if not (0 <= index < len(self.param_types)):
            raise EncodeError(f"no parameter {index}")
        if lo > hi:
            raise EncodeError(f"empty param range [{lo}, {hi}]")
        self._param_ranges[index] = (int(lo), int(hi))
        return self

    def value_range(self, lo: int, hi: int) -> "FunctionBuilder":
        """Declare the host's contract that the value produced by the
        *last emitted instruction* (a load) stays in ``[lo, hi]`` —
        advisory metadata consumed by the static analyses."""
        if lo > hi:
            raise EncodeError(f"empty value range [{lo}, {hi}]")
        body = self._current()
        if not body:
            raise EncodeError("value_range needs a preceding instruction")
        self._value_ranges[(id(body), len(body) - 1)] = (int(lo), int(hi))
        return self

    def type_of_local(self, index: int) -> str:
        if index < len(self.param_types):
            return self.param_types[index]
        return self._locals[index - len(self.param_types)]

    # -- raw emission --------------------------------------------------------

    def _current(self) -> list:
        return self._bodies[-1]

    def emit(self, op: str, *immediates) -> "FunctionBuilder":
        """Emit one non-structured instruction."""
        if op not in OPS:
            raise EncodeError(f"unknown instruction {op!r}")
        if op in ("block", "loop", "if"):
            raise EncodeError(f"use the {op}() context manager")
        self._current().append((op, *immediates))
        return self

    # -- structured control -----------------------------------------------------

    def block(self, results: list[str] | None = None) -> _BlockContext:
        return _BlockContext(self, "block", results or [])

    def loop(self, results: list[str] | None = None) -> _BlockContext:
        return _BlockContext(self, "loop", results or [])

    def if_(self, results: list[str] | None = None) -> _IfContext:
        return _IfContext(self, results or [])

    def br(self, label: Label) -> "FunctionBuilder":
        return self.emit("br", label.depth())

    def br_if(self, label: Label) -> "FunctionBuilder":
        return self.emit("br_if", label.depth())

    # -- common shorthands -----------------------------------------------------

    def i32(self, value: int) -> "FunctionBuilder":
        return self.emit("i32.const", int(value))

    def i64(self, value: int) -> "FunctionBuilder":
        return self.emit("i64.const", int(value))

    def f32(self, value: float) -> "FunctionBuilder":
        return self.emit("f32.const", float(value))

    def f64(self, value: float) -> "FunctionBuilder":
        return self.emit("f64.const", float(value))

    def const(self, ty: str, value) -> "FunctionBuilder":
        return self.emit(f"{ty}.const", value)

    def get(self, local: int) -> "FunctionBuilder":
        return self.emit("local.get", local)

    def set(self, local: int) -> "FunctionBuilder":
        return self.emit("local.set", local)

    def tee(self, local: int) -> "FunctionBuilder":
        return self.emit("local.tee", local)

    def load(self, ty: str, offset: int = 0, align: int = 0) -> "FunctionBuilder":
        return self.emit(f"{ty}.load", align, offset)

    def store(self, ty: str, offset: int = 0, align: int = 0) -> "FunctionBuilder":
        return self.emit(f"{ty}.store", align, offset)

    def call(self, func_index: int) -> "FunctionBuilder":
        return self.emit("call", func_index)

    def ret(self) -> "FunctionBuilder":
        return self.emit("return")


class ModuleBuilder:
    """Assembles a module: imports first, then functions, memory, exports."""

    def __init__(self, name: str | None = None):
        self._module = Module(name=name)
        self._function_builders: list[FunctionBuilder] = []
        self._exports: list[tuple[str, str, FunctionBuilder | int]] = []
        self._finished = False

    # -- imports (must precede function definitions, as in the index space) --

    def import_function(
        self, module: str, name: str, params: list[str], results: list[str]
    ) -> int:
        """Declare an imported host function; returns its function index."""
        if self._function_builders:
            raise EncodeError("imports must be declared before functions")
        type_index = self._module.add_type(
            FuncType(tuple(params), tuple(results))
        )
        self._module.imports.append(Import(module, name, type_index))
        return len(self._module.imports) - 1

    # -- definitions -------------------------------------------------------------

    def function(
        self,
        name: str,
        params: list[tuple[str, str]] | None = None,
        results: list[str] | None = None,
        export: bool = False,
    ) -> FunctionBuilder:
        fb = FunctionBuilder(self, name, params or [], results or [])
        fb.func_index = len(self._module.imports) + len(self._function_builders)
        self._function_builders.append(fb)
        if export:
            self._exports.append((name, "func", fb))
        return fb

    def add_memory(
        self, minimum: int, maximum: int | None = None, export: str | None = None
    ) -> int:
        self._module.memories.append(MemoryType(minimum, maximum))
        index = len(self._module.memories) - 1
        if export:
            self._exports.append((export, "memory", index))
        return index

    def add_global(
        self, valtype: str, init, mutable: bool = True, name: str | None = None
    ) -> int:
        self._module.globals.append(Global(valtype, mutable, init, name))
        return len(self._module.globals) - 1

    def add_table(self, func_indices: list[int]) -> int:
        """Create a funcref table pre-filled with ``func_indices``."""
        self._module.tables.append(TableType(len(func_indices), len(func_indices)))
        table_index = len(self._module.tables) - 1
        self._module.elements.append(Element(table_index, 0, list(func_indices)))
        return table_index

    def add_data(self, offset: int, payload: bytes, memory_index: int = 0) -> None:
        self._module.data.append(Data(memory_index, offset, bytes(payload)))

    def export(self, name: str, kind: str, index: int) -> None:
        self._exports.append((name, kind, index))

    def type_index(self, params: list[str], results: list[str]) -> int:
        """Intern a signature (needed for ``call_indirect``)."""
        return self._module.add_type(FuncType(tuple(params), tuple(results)))

    # -- finish ---------------------------------------------------------------------

    def finish(self) -> Module:
        """Seal the module.  Idempotent."""
        if self._finished:
            return self._module
        from repro.wasm.analysis.cfg import assign_offsets

        module = self._module
        for fb in self._function_builders:
            type_index = module.add_type(
                FuncType(tuple(fb.param_types), tuple(fb.result_types))
            )
            value_ranges: dict[int, tuple[int, int]] = {}
            if fb._value_ranges:
                # builder-recorded (body list, position) keys become
                # preorder offsets now that the bodies are final
                offsets = assign_offsets(fb.body)
                for key, bounds in fb._value_ranges.items():
                    offset = offsets.get(key)
                    if offset is not None:
                        value_ranges[offset] = bounds
            module.functions.append(
                Function(
                    type_index=type_index,
                    locals_=list(fb._locals),
                    body=fb.body,
                    name=fb.name,
                    local_names=dict(fb._local_names),
                    param_ranges=dict(fb._param_ranges),
                    value_ranges=value_ranges,
                )
            )
        for name, kind, target in self._exports:
            index = target.func_index if isinstance(target, FunctionBuilder) else target
            module.exports.append(Export(name, kind, index))
        self._finished = True
        return module
