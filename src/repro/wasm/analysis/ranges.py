"""Interval abstract interpretation over i32/i64 values.

Forward dataflow over the CFG of :mod:`.cfg`, one :class:`AVal` per
local and per abstract-stack slot.  The domain tracks, per value:

* ``[lo, hi]`` — a signed interval (``None`` bounds for floats and
  values we give up on);
* ``exact`` — whether TurboFan's *raw* (wrap-deferred) expression for
  this value evaluates to the mathematical value itself.  Ring ops
  (``add``/``sub``/``mul``/``shl``) keep exactness only while their
  mathematical result stays inside the type's signed range; everything
  TurboFan computes from ``src`` (wrapped) operands is exact by
  construction.  Bounds-check elision requires ``exact`` *and*
  ``lo >= 0``: only then is the unmasked Python expression guaranteed to
  equal the u32 address (no silent negative indexing into the page
  table);
* ``local`` — provenance: this stack value is a copy of local *n*
  (invalidated when the local is written), which lets a branch on
  ``local.get n ... i32.ge_s`` refine local *n* on both edges —
  exactly the shape of the generated scan-loop guard;
* ``cmp`` — for i32 comparison results, the ``(kind, lhs, rhs)``
  operand snapshot that drives the per-edge refinement.

Facts: for every reachable memory access the analysis records the
address operand's :class:`AVal` keyed by preorder instruction offset
(:class:`MemAccessFact`).  TurboFan uses them to elide the address
mask; lint uses them to flag accesses that are provably out of bounds
for every possible memory size.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.wasm.analysis.cfg import CFG, BasicBlock, build_cfg
from repro.wasm.analysis.dataflow import solve_forward
from repro.wasm.module import Function, Module
from repro.wasm.opcodes import OPS
from repro.wasm.runtime.pycodegen import LOAD_FMT, STORE_FMT

__all__ = ["AVal", "MemAccessFact", "RangeResult", "analyze_ranges",
           "ACCESS_SIZE"]

WASM_PAGE = 65536
INT_RANGE = {32: (-(1 << 31), (1 << 31) - 1), 64: (-(1 << 63), (1 << 63) - 1)}

#: Bytes touched by each memory instruction (from its struct format).
ACCESS_SIZE = {op: struct.calcsize(fmt) for op, fmt in LOAD_FMT.items()}
ACCESS_SIZE.update({op: struct.calcsize(fmt)
                    for op, (fmt, _mask) in STORE_FMT.items()})

_LOAD_RESULT_RANGE = {
    "i32.load8_s": (-128, 127), "i32.load8_u": (0, 255),
    "i32.load16_s": (-32768, 32767), "i32.load16_u": (0, 65535),
    "i64.load8_s": (-128, 127), "i64.load8_u": (0, 255),
    "i64.load16_s": (-32768, 32767), "i64.load16_u": (0, 65535),
    "i64.load32_s": INT_RANGE[32], "i64.load32_u": (0, (1 << 32) - 1),
}

_CMP_KINDS = frozenset({
    "eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u",
    "ge_s", "ge_u",
})
_NEGATE = {
    "eq": "ne", "ne": "eq",
    "lt_s": "ge_s", "ge_s": "lt_s", "gt_s": "le_s", "le_s": "gt_s",
    "lt_u": "ge_u", "ge_u": "lt_u", "gt_u": "le_u", "le_u": "gt_u",
}


def _bits_of(valtype: str) -> int:
    if valtype == "i32":
        return 32
    if valtype == "i64":
        return 64
    return 0


class AVal:
    """One abstract value.  Treat instances as immutable."""

    __slots__ = ("lo", "hi", "bits", "exact", "local", "cmp")

    def __init__(self, bits: int, lo: int | None, hi: int | None,
                 exact: bool = True, local: int | None = None, cmp=None):
        self.bits = bits
        self.lo = lo
        self.hi = hi
        self.exact = exact
        self.local = local
        self.cmp = cmp  # (kind, lhs AVal, rhs AVal) | None

    # -- constructors ------------------------------------------------------

    @staticmethod
    def top(valtype_or_bits) -> "AVal":
        bits = (valtype_or_bits if isinstance(valtype_or_bits, int)
                else _bits_of(valtype_or_bits))
        if bits == 0:
            return AVal(0, None, None)
        lo, hi = INT_RANGE[bits]
        return AVal(bits, lo, hi)

    @staticmethod
    def const(bits: int, value: int) -> "AVal":
        return AVal(bits, value, value)

    def replace(self, **kw) -> "AVal":
        fields = {name: getattr(self, name) for name in self.__slots__}
        fields.update(kw)
        return AVal(**fields)

    # -- lattice -----------------------------------------------------------

    def _key(self):
        cmp = self.cmp
        if cmp is not None:
            cmp = (cmp[0], cmp[1]._key(), cmp[2]._key())
        return (self.bits, self.lo, self.hi, self.exact, self.local, cmp)

    def __eq__(self, other):
        return isinstance(other, AVal) and self._key() == other._key()

    def __hash__(self):
        return hash(self._key())

    def __repr__(self):
        rng = "float" if self.bits == 0 else f"[{self.lo}, {self.hi}]"
        tags = ("" if self.exact else " ~") + (
            f" =L{self.local}" if self.local is not None else "")
        return f"<AVal i{self.bits} {rng}{tags}>"

    def join(self, other: "AVal") -> "AVal":
        if self.bits != other.bits or self.bits == 0:
            return AVal(0, None, None)
        return AVal(
            self.bits,
            min(self.lo, other.lo), max(self.hi, other.hi),
            exact=self.exact and other.exact,
            local=self.local if self.local == other.local else None,
        )

    def widen(self, newer: "AVal") -> "AVal":
        if self.bits != newer.bits or self.bits == 0:
            return AVal(0, None, None)
        type_lo, type_hi = INT_RANGE[self.bits]
        return AVal(
            self.bits,
            self.lo if newer.lo >= self.lo else type_lo,
            self.hi if newer.hi <= self.hi else type_hi,
            exact=self.exact and newer.exact,
            local=self.local if self.local == newer.local else None,
        )

    def strip(self) -> "AVal":
        """Drop the nested ``cmp`` (bounds comparison-snapshot depth)."""
        return self.replace(cmp=None) if self.cmp is not None else self


@dataclass
class MemAccessFact:
    """The address operand of one reachable load/store."""

    op: str
    imm_offset: int
    addr: AVal

    @property
    def access_size(self) -> int:
        return ACCESS_SIZE[self.op]


@dataclass
class RangeResult:
    cfg: CFG
    #: preorder offset -> fact, for every memory access on a reachable path
    facts: dict[int, MemAccessFact]
    #: block index -> (locals, stack) abstract state at block entry
    in_states: dict
    #: preorder offset of every reachable ``if``/``br_if`` -> the joined
    #: abstract value of its condition; a constant interval here means
    #: one arm is dead (the module linter's dead-arm rule)
    branch_conds: dict[int, AVal] = field(default_factory=dict)


class _State:
    """Mutable per-block state: abstract locals + abstract stack."""

    __slots__ = ("locals", "stack")

    def __init__(self, locals_: list[AVal], stack: list[AVal]):
        self.locals = locals_
        self.stack = stack

    def copy(self) -> "_State":
        return _State(list(self.locals), list(self.stack))

    def __eq__(self, other):
        return (isinstance(other, _State)
                and self.locals == other.locals
                and self.stack == other.stack)

    def scrub(self, index: int) -> None:
        """Forget every claim that some value equals local ``index``."""
        for values in (self.locals, self.stack):
            for i, val in enumerate(values):
                changed = val
                if changed.local == index:
                    changed = changed.replace(local=None)
                if changed.cmp is not None and (
                        changed.cmp[1].local == index
                        or changed.cmp[2].local == index):
                    kind, lhs, rhs = changed.cmp
                    if lhs.local == index:
                        lhs = lhs.replace(local=None)
                    if rhs.local == index:
                        rhs = rhs.replace(local=None)
                    changed = changed.replace(cmp=(kind, lhs, rhs))
                if changed is not val:
                    values[i] = changed


def _join_states(a: _State, b: _State) -> _State:
    # Validated code guarantees matching shapes at every join point.
    assert len(a.locals) == len(b.locals) and len(a.stack) == len(b.stack)
    return _State(
        [x.join(y) for x, y in zip(a.locals, b.locals)],
        [x.join(y) for x, y in zip(a.stack, b.stack)],
    )


def _widen_states(old: _State, new: _State) -> _State:
    return _State(
        [x.widen(y) for x, y in zip(old.locals, new.locals)],
        [x.widen(y) for x, y in zip(old.stack, new.stack)],
    )


def _interval_binop(kind: str, bits: int, a: AVal, b: AVal) -> AVal:
    """Ring ops: interval arithmetic with wrap detection."""
    type_lo, type_hi = INT_RANGE[bits]
    lo = hi = None
    if kind == "add":
        lo, hi = a.lo + b.lo, a.hi + b.hi
    elif kind == "sub":
        lo, hi = a.lo - b.hi, a.hi - b.lo
    elif kind == "mul":
        corners = (a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi)
        lo, hi = min(corners), max(corners)
    elif kind == "shl":
        if b.lo == b.hi and 0 <= b.lo < bits:
            lo, hi = a.lo << b.lo, a.hi << b.lo
        else:
            return AVal(bits, type_lo, type_hi, exact=False)
    if lo < type_lo or hi > type_hi:
        # may wrap: the deferred-wrap raw expression can diverge from
        # the true value, and the interval is the full type range
        return AVal(bits, type_lo, type_hi, exact=False)
    return AVal(bits, lo, hi, exact=a.exact and b.exact)


def _interval_bitop(kind: str, bits: int, a: AVal, b: AVal) -> AVal:
    # Bitwise results always stay inside the signed range, and
    # Python's infinite two's complement matches Wasm on exact
    # operands, so exactness is preserved unconditionally.
    exact = a.exact and b.exact
    if a.lo >= 0 and b.lo >= 0:
        if kind == "and":
            return AVal(bits, 0, min(a.hi, b.hi), exact=exact)
        span = (1 << max(a.hi.bit_length(), b.hi.bit_length())) - 1
        return AVal(bits, 0, span, exact=exact)
    type_lo, type_hi = INT_RANGE[bits]
    return AVal(bits, type_lo, type_hi, exact=exact)


def _constrain(kind: str, a: AVal, b: AVal):
    """Bounds implied for ``a`` and ``b`` by ``a <kind> b`` being true.

    Returns ``((a_lo, a_hi), (b_lo, b_hi))`` or ``None`` when the
    comparison kind supports no refinement here.  Unsigned comparisons
    refine only when both sides are known non-negative (where they
    coincide with the signed order).
    """
    if kind.endswith("_u"):
        if a.lo < 0 or b.lo < 0:
            return None
        kind = kind[:-2] + "_s"
    if kind == "lt_s":
        return (a.lo, b.hi - 1), (a.lo + 1, b.hi)
    if kind == "le_s":
        return (a.lo, b.hi), (a.lo, b.hi)
    if kind == "gt_s":
        return (b.lo + 1, a.hi), (b.lo, a.hi - 1)
    if kind == "ge_s":
        return (b.lo, a.hi), (b.lo, a.hi)
    if kind == "eq":
        lo, hi = max(a.lo, b.lo), min(a.hi, b.hi)
        return (lo, hi), (lo, hi)
    if kind == "ne":
        a_lo, a_hi, b_lo, b_hi = a.lo, a.hi, b.lo, b.hi
        if b.lo == b.hi:  # endpoint exclusion against a constant
            if a_lo == b.lo:
                a_lo += 1
            if a_hi == b.lo:
                a_hi -= 1
        if a.lo == a.hi:
            if b_lo == a.lo:
                b_lo += 1
            if b_hi == a.lo:
                b_hi -= 1
        return (a_lo, a_hi), (b_lo, b_hi)
    return None


def _decide_cmp(kind: str, a: AVal, b: AVal) -> int | None:
    """Fold ``a <kind> b`` when the intervals decide it, else ``None``.

    The intervals always bound the true runtime value (inexactness only
    widens them to the full type range), so a verdict read off disjoint
    or pinned intervals is sound.  Unsigned kinds fold only when both
    sides are known non-negative (where they match the signed order).
    """
    if not a.bits or a.bits != b.bits:
        return None
    if kind.endswith("_u"):
        if a.lo < 0 or b.lo < 0:
            return None
        kind = kind[:-2] + "_s"
    if kind in ("gt_s", "ge_s"):
        kind = {"gt_s": "lt_s", "ge_s": "le_s"}[kind]
        a, b = b, a
    if kind == "eq" or kind == "ne":
        flip = 0 if kind == "eq" else 1
        if a.lo == a.hi == b.lo == b.hi:
            return 1 ^ flip
        if a.hi < b.lo or a.lo > b.hi:
            return 0 ^ flip
        return None
    if kind == "lt_s":
        if a.hi < b.lo:
            return 1
        if a.lo >= b.hi:
            return 0
        return None
    if kind == "le_s":
        if a.hi <= b.lo:
            return 1
        if a.lo > b.hi:
            return 0
    return None


class RangeAnalysis:
    """Runs the interval analysis for one function."""

    def __init__(self, module: Module, func: Function,
                 cfg: CFG | None = None):
        self.module = module
        self.func = func
        self.cfg = cfg or build_cfg(module, func)
        func_type = module.types[func.type_index]
        self.param_types = list(func_type.params)
        self.local_types = self.param_types + list(func.locals_)
        self.facts: dict[int, MemAccessFact] = {}
        self.branch_conds: dict[int, AVal] = {}
        self._recording = False

    # -- entry state -------------------------------------------------------

    def entry_state(self) -> _State:
        locals_: list[AVal] = []
        hints = getattr(self.func, "param_ranges", {}) or {}
        for i, ty in enumerate(self.local_types):
            bits = _bits_of(ty)
            if i >= len(self.param_types):
                # non-parameter locals are zero-initialized by the spec
                locals_.append(AVal.const(bits, 0) if bits
                               else AVal(0, None, None))
                continue
            val = AVal.top(bits)
            hint = hints.get(i)
            if hint is not None and bits:
                type_lo, type_hi = INT_RANGE[bits]
                val = AVal(bits, max(hint[0], type_lo), min(hint[1], type_hi))
            locals_.append(val)
        return _State(locals_, [])

    # -- solving -----------------------------------------------------------

    def run(self) -> RangeResult:
        in_states = solve_forward(
            self.cfg, self.entry_state(),
            transfer=self._transfer_block,
            join=_join_states, widen=_widen_states,
        )
        # one recording pass over the fixpoint states
        self._recording = True
        for index, state in in_states.items():
            self._transfer_block(self.cfg.blocks[index], state)
        self._recording = False
        return RangeResult(self.cfg, self.facts, in_states,
                           self.branch_conds)

    # -- transfer ----------------------------------------------------------

    def _transfer_block(self, block: BasicBlock, state: _State):
        st = state.copy()
        out: list[tuple] = []
        instrs = block.instrs
        for position, (off, instr) in enumerate(instrs):
            last = position == len(instrs) - 1
            op = instr[0]
            if last and op in ("if", "br_if"):
                cond = st.stack.pop()
                self._record_branch(off, cond)
                for edge in block.edges:
                    branch = self._apply_edge(st, edge, cond)
                    out.append((edge, branch))
                return out
            if last and op == "br_table":
                st.stack.pop()
                for edge in block.edges:
                    out.append((edge, self._apply_edge(st, edge, None)))
                return out
            if op == "br" or op == "return" or op == "unreachable":
                break  # edges below carry the state (or there are none)
            self._step(st, off, instr)
        for edge in block.edges:
            out.append((edge, self._apply_edge(st, edge, None)))
        return out

    def _apply_edge(self, state: _State, edge, cond: AVal | None):
        st = state.copy()
        if cond is not None and cond.cmp is not None:
            taken = edge.kind == "taken"
            if edge.kind in ("taken", "fallthrough"):
                if not self._refine(st, cond, taken):
                    return None  # edge infeasible
        if edge.trunc is not None:
            height, arity = edge.trunc
            kept = st.stack[len(st.stack) - arity:] if arity else []
            st.stack = st.stack[:height] + kept
        return st

    def _refine(self, st: _State, cond: AVal, taken: bool) -> bool:
        kind, lhs, rhs = cond.cmp
        if not taken:
            kind = _NEGATE[kind]
        bounds = _constrain(kind, lhs, rhs)
        if bounds is None:
            return True
        for operand, (lo, hi) in zip((lhs, rhs), bounds):
            if operand.local is None:
                continue
            current = st.locals[operand.local]
            if current.bits == 0:
                continue
            new_lo, new_hi = max(current.lo, lo), min(current.hi, hi)
            if new_lo > new_hi:
                return False  # contradiction: edge cannot be taken
            st.locals[operand.local] = current.replace(lo=new_lo, hi=new_hi)
        return True

    # -- single instruction ------------------------------------------------

    def _step(self, st: _State, off: int, instr: tuple) -> None:
        op = instr[0]
        stack = st.stack

        if op == "local.get":
            index = instr[1]
            stack.append(st.locals[index].replace(local=index, cmp=None))
        elif op == "local.set":
            index = instr[1]
            value = stack.pop()
            st.scrub(index)
            st.locals[index] = value.replace(local=None, cmp=None)
        elif op == "local.tee":
            index = instr[1]
            value = stack[-1]
            st.scrub(index)
            st.locals[index] = value.replace(local=None, cmp=None)
            stack[-1] = value.replace(local=index, cmp=None)
        elif op == "global.get":
            stack.append(AVal.top(self.module.globals[instr[1]].valtype))
        elif op == "global.set":
            stack.pop()
        elif op == "i32.const":
            stack.append(AVal.const(32, int(instr[1])))
        elif op == "i64.const":
            stack.append(AVal.const(64, int(instr[1])))
        elif op == "f32.const" or op == "f64.const":
            stack.append(AVal(0, None, None))
        elif op in LOAD_FMT:
            addr = stack.pop()
            self._record(off, op, instr[2], addr)
            stack.append(self._load_result(op, off))
        elif op in STORE_FMT:
            stack.pop()  # value
            addr = stack.pop()
            self._record(off, op, instr[2], addr)
        elif op == "drop":
            stack.pop()
        elif op == "select":
            cond = stack.pop()
            b = stack.pop()
            a = stack.pop()
            if cond.lo is not None and cond.lo == cond.hi:
                stack.append((a if cond.lo else b).strip())
            else:
                stack.append(a.strip().join(b.strip()))
        elif op == "call":
            func_type = self.module.func_type_of(instr[1])
            del stack[len(stack) - len(func_type.params):]
            for ty in func_type.results:
                stack.append(AVal.top(ty))
        elif op == "call_indirect":
            func_type = self.module.types[instr[1]]
            del stack[len(stack) - len(func_type.params) - 1:]
            for ty in func_type.results:
                stack.append(AVal.top(ty))
        elif op == "memory.size":
            mem = self.module.memories[0]
            upper = mem.maximum if mem.maximum is not None else 65536
            stack.append(AVal(32, mem.minimum, upper))
        elif op == "memory.grow":
            stack.pop()
            stack.append(AVal(32, -1, 65536))
        elif op == "nop":
            pass
        else:
            self._step_numeric(st, op)

    def _load_result(self, op: str, off: int) -> AVal:
        bits = _bits_of(op.split(".", 1)[0])
        special = _LOAD_RESULT_RANGE.get(op)
        result = (AVal(bits, special[0], special[1]) if special is not None
                  else AVal.top(bits))
        hint = self.func.value_ranges.get(off) if bits else None
        if hint is not None:
            # intersect with the host's value_range contract for this
            # load, clamped to the type range (like param_ranges)
            type_lo, type_hi = INT_RANGE[bits]
            lo = max(result.lo, hint[0], type_lo)
            hi = min(result.hi, hint[1], type_hi)
            if lo <= hi:
                result = AVal(bits, lo, hi)
        return result

    def _record(self, off: int, op: str, imm_offset: int,
                addr: AVal) -> None:
        if not self._recording:
            return
        known = self.facts.get(off)
        snapshot = addr.strip().replace(local=None)
        if known is not None:
            snapshot = known.addr.join(snapshot)
        self.facts[off] = MemAccessFact(op, imm_offset, snapshot)

    def _record_branch(self, off: int, cond: AVal) -> None:
        if not self._recording:
            return
        snapshot = cond.strip().replace(local=None)
        known = self.branch_conds.get(off)
        if known is not None:
            snapshot = known.join(snapshot)
        self.branch_conds[off] = snapshot

    # -- numeric operators -------------------------------------------------

    def _step_numeric(self, st: _State, op: str) -> None:
        stack = st.stack
        prefix, _, kind = op.partition(".")
        bits = _bits_of(prefix)

        if kind in _CMP_KINDS and bits:
            b = stack.pop()
            a = stack.pop()
            cmp = None
            if a.bits and a.bits == b.bits:
                cmp = (kind, a.strip(), b.strip())
            verdict = _decide_cmp(kind, a, b)
            lo, hi = (0, 1) if verdict is None else (verdict, verdict)
            stack.append(AVal(32, lo, hi, cmp=cmp))
            return
        if kind == "eqz":
            a = stack.pop()
            cmp = None
            verdict = None
            if a.bits:
                cmp = ("eq", a.strip(), AVal.const(a.bits, 0))
                verdict = _decide_cmp("eq", a, AVal.const(a.bits, 0))
            lo, hi = (0, 1) if verdict is None else (verdict, verdict)
            stack.append(AVal(32, lo, hi, cmp=cmp))
            return
        if bits and kind in ("add", "sub", "mul", "shl"):
            b = stack.pop()
            a = stack.pop()
            stack.append(_interval_binop(kind, bits, a, b))
            return
        if bits and kind in ("and", "or", "xor"):
            b = stack.pop()
            a = stack.pop()
            stack.append(_interval_bitop(kind, bits, a, b))
            return
        if bits and kind in ("shr_s", "shr_u"):
            b = stack.pop()
            a = stack.pop()
            stack.append(self._shift_right(kind, bits, a, b))
            return
        if bits and kind in ("div_u", "rem_u", "div_s", "rem_s"):
            b = stack.pop()
            a = stack.pop()
            stack.append(self._divide(kind, bits, a, b))
            return
        if op == "i32.wrap_i64":
            a = stack.pop()
            lo, hi = INT_RANGE[32]
            if lo <= a.lo and a.hi <= hi:
                stack.append(AVal(32, a.lo, a.hi))
            else:
                stack.append(AVal.top(32))
            return
        if op == "i64.extend_i32_s":
            a = stack.pop()
            stack.append(AVal(64, a.lo, a.hi))
            return
        if op == "i64.extend_i32_u":
            a = stack.pop()
            if a.lo >= 0:
                stack.append(AVal(64, a.lo, a.hi))
            else:
                stack.append(AVal(64, 0, (1 << 32) - 1))
            return
        if kind in ("clz", "ctz", "popcnt"):
            stack.pop()
            stack.append(AVal(bits, 0, bits))
            return

        # generic fallback: stack shape from the opcode table, top values
        info = OPS[op]
        del stack[len(stack) - len(info.params):]
        for ty in info.results:
            stack.append(AVal.top(ty))

    @staticmethod
    def _shift_right(kind: str, bits: int, a: AVal, b: AVal) -> AVal:
        if b.lo == b.hi and 0 <= b.lo < bits:
            shift = b.lo
            if a.lo >= 0:
                return AVal(bits, a.lo >> shift, a.hi >> shift)
            if kind == "shr_u" and shift > 0:
                unsigned_max = (1 << bits) - 1
                return AVal(bits, 0, unsigned_max >> shift)
            if kind == "shr_s":
                return AVal(bits, a.lo >> shift, a.hi >> shift)
        if kind == "shr_u":
            return AVal(bits, *INT_RANGE[bits]) if bits else AVal.top(bits)
        return AVal.top(bits)

    @staticmethod
    def _divide(kind: str, bits: int, a: AVal, b: AVal) -> AVal:
        if kind == "rem_u" and b.lo == b.hi and b.lo > 0:
            return AVal(bits, 0, b.lo - 1)
        if kind == "div_u" and b.lo == b.hi and b.lo > 0 and a.lo >= 0:
            return AVal(bits, a.lo // b.lo, a.hi // b.lo)
        return AVal.top(bits)


def analyze_ranges(module: Module, func: Function,
                   cfg: CFG | None = None) -> RangeResult:
    """Run the interval analysis over one validated function."""
    return RangeAnalysis(module, func, cfg).run()
