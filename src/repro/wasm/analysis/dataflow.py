"""Generic worklist solvers over the basic-block CFG.

Both directions share the same scheme: keep one abstract state per
block, pull a block off the worklist, run the client's transfer
function, join the result into the neighbours, and re-queue whichever
neighbour changed.  The client supplies the lattice (``join``, state
equality via ``==``) and the transfer:

* **forward** — ``transfer(block, state) -> list[(Edge, state | None)]``.
  Producing one state *per out-edge* lets path-sensitive analyses (the
  interval domain) refine a branch condition differently on the taken
  and fallthrough edges; ``None`` marks an edge proven infeasible.
* **backward** — ``transfer(block, state) -> state`` over the join of
  the successors' states (liveness and friends).

Termination: the forward solver applies the client's ``widen`` operator
once a block has been visited more than ``widen_after`` times, which
caps interval ascent at loop headers; a generous global visit budget
backstops client lattices of unexpected height (:class:`FixpointLimit`
rather than an infinite loop).
"""

from __future__ import annotations

from repro.wasm.analysis.cfg import CFG

__all__ = ["FixpointLimit", "solve_backward", "solve_forward"]


class FixpointLimit(Exception):
    """The solver exceeded its global visit budget (lattice too tall)."""


def solve_forward(cfg: CFG, entry_state, transfer, join, widen=None,
                  widen_after: int = 4, max_visits_per_block: int = 200):
    """Run a forward analysis to fixpoint.

    Returns ``{block_index: entry_state}`` for every reached block;
    blocks absent from the result were never reached (dead code or
    edges proven infeasible).
    """
    in_states = {cfg.entry: entry_state}
    visits = [0] * len(cfg.blocks)
    worklist = [cfg.entry]
    budget = max_visits_per_block * max(1, len(cfg.blocks))
    while worklist:
        index = worklist.pop()
        budget -= 1
        if budget < 0:
            raise FixpointLimit(f"no fixpoint after {visits} visits")
        block = cfg.blocks[index]
        if block.index == cfg.exit:
            continue
        for edge, state in transfer(block, in_states[index]):
            if state is None or edge.target == cfg.exit:
                continue
            old = in_states.get(edge.target)
            if old is None:
                new = state
            else:
                new = join(old, state)
                visits[edge.target] += 1
                if widen is not None and visits[edge.target] > widen_after:
                    new = widen(old, new)
            if old is None or new != old:
                in_states[edge.target] = new
                if edge.target not in worklist:
                    worklist.append(edge.target)
    return in_states


def solve_backward(cfg: CFG, bottom, transfer, join,
                   max_visits_per_block: int = 200):
    """Run a backward analysis to fixpoint.

    Returns ``({block_index: entry_state}, {block_index: exit_state})``
    for every block (unreachable ones included — liveness over dead
    stores is still well-defined and useful for lint).
    """
    in_states = {block.index: bottom for block in cfg.blocks}
    preds = cfg.predecessors()
    worklist = [block.index for block in cfg.blocks]
    budget = max_visits_per_block * max(1, len(cfg.blocks))
    out_states: dict[int, object] = {}
    while worklist:
        index = worklist.pop()
        budget -= 1
        if budget < 0:
            raise FixpointLimit("no fixpoint (backward)")
        block = cfg.blocks[index]
        out = bottom
        for edge in block.edges:
            out = join(out, in_states[edge.target])
        out_states[index] = out
        new_in = transfer(block, out)
        if new_in != in_states[index]:
            in_states[index] = new_in
            for pred in preds[index]:
                if pred not in worklist:
                    worklist.append(pred)
    return in_states, out_states
