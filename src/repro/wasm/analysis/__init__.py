"""Static analysis over decoded Wasm function bodies.

The pipeline: :mod:`.cfg` lowers the structured tuple-IR into a
basic-block CFG, :mod:`.dataflow` provides the generic forward/backward
worklist solvers, :mod:`.ranges` runs an interval abstract
interpretation (the facts behind TurboFan's bounds-check elision), and
:mod:`.liveness` computes local liveness.  :mod:`.lint` packages it all
as the :class:`ModuleLinter` behind ``EngineConfig(lint=...)``.
"""

from repro.wasm.analysis.cfg import (
    BasicBlock,
    CFG,
    Edge,
    assign_offsets,
    build_cfg,
)
from repro.wasm.analysis.dataflow import solve_backward, solve_forward
from repro.wasm.analysis.lint import Diagnostic, ModuleLinter
from repro.wasm.analysis.liveness import LivenessResult, analyze_liveness
from repro.wasm.analysis.ranges import (
    AVal,
    MemAccessFact,
    RangeResult,
    analyze_ranges,
)

__all__ = [
    "AVal",
    "BasicBlock",
    "CFG",
    "Diagnostic",
    "Edge",
    "LivenessResult",
    "MemAccessFact",
    "ModuleLinter",
    "RangeResult",
    "analyze_liveness",
    "analyze_ranges",
    "assign_offsets",
    "build_cfg",
    "solve_backward",
    "solve_forward",
]
