"""The module linter: structured diagnostics over the analysis results.

:class:`ModuleLinter` runs every analysis of this package over every
defined function and turns the raw facts into :class:`Diagnostic`
records:

* ``unreachable-code`` — a basic block with instructions but no path
  from the function entry (code after an unconditional branch);
* ``oob-access`` — a load/store whose interval-analysis address range
  proves the access traps for *every* possible memory size (the
  module's declared maximum, or the 4 GiB ceiling when unbounded);
* ``dead-arm`` — an ``if``/``br_if`` whose condition the interval
  analysis proves constant on every reachable path, so one arm (or the
  branch itself) can never execute;
* ``dead-store`` — a ``local.set``/``local.tee`` whose value is never
  read on any path;
* ``write-only-local`` — a local that is written somewhere but never
  read anywhere (its dead stores are folded into this one diagnostic);
* ``unused-local`` — a declared local that no instruction references.

Diagnostics carry the function name and the *preorder instruction
offset* (see :func:`~repro.wasm.analysis.cfg.assign_offsets`), matching
the numbering ``repro.wasm.wat`` users see when reading the body top to
bottom.  The engine exposes the linter via ``EngineConfig(lint=...)``:
``"warn"`` emits Python warnings, ``"strict"`` raises
:class:`~repro.errors.LintError`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.wasm.analysis.cfg import build_cfg
from repro.wasm.analysis.liveness import analyze_liveness
from repro.wasm.analysis.ranges import WASM_PAGE, analyze_ranges
from repro.wasm.module import Function, Module

__all__ = ["Diagnostic", "ModuleLinter"]


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding, addressable to an instruction."""

    code: str            # "unreachable-code" | "oob-access" | ...
    function: str        # function (debug) name
    offset: int | None   # preorder instruction offset, None if whole-func
    message: str
    severity: str = "warning"

    def __str__(self) -> str:
        where = f"{self.function}" + (
            f"+{self.offset}" if self.offset is not None else "")
        return f"{where}: {self.code}: {self.message}"


class ModuleLinter:
    """Lints every defined function of one module."""

    def __init__(self, module: Module):
        self.module = module

    def lint(self) -> list[Diagnostic]:
        diagnostics: list[Diagnostic] = []
        for i, func in enumerate(self.module.functions):
            diagnostics.extend(self.lint_function(func, i))
        return diagnostics

    # ------------------------------------------------------------------

    def lint_function(self, func: Function,
                      index: int = -1) -> list[Diagnostic]:
        name = func.name or f"f{index}"
        diags: list[Diagnostic] = []
        cfg = build_cfg(self.module, func)
        reachable = cfg.reachable()

        for block in cfg.blocks:
            if block.index not in reachable and block.instrs:
                off, instr = block.instrs[0]
                diags.append(Diagnostic(
                    "unreachable-code", name, off,
                    f"instruction {instr[0]!r} can never execute",
                ))

        ranges = analyze_ranges(self.module, func, cfg=cfg)
        diags.extend(self._lint_accesses(name, ranges))
        diags.extend(self._lint_dead_arms(name, cfg, ranges, reachable))
        diags.extend(self._lint_locals(func, name, cfg, reachable))
        diags.sort(key=lambda d: (d.offset is None, d.offset, d.code))
        return diags

    def _lint_accesses(self, name: str, result) -> list:
        if not self.module.memories:
            return []
        mem = self.module.memories[0]
        max_pages = mem.maximum if mem.maximum is not None else 65536
        max_bytes = max_pages * WASM_PAGE
        diags = []
        for off in sorted(result.facts):
            fact = result.facts[off]
            addr = fact.addr
            if addr.bits != 32 or addr.lo is None:
                continue
            reach = fact.imm_offset + fact.access_size
            if addr.lo >= 0 and addr.lo + reach > max_bytes:
                diags.append(Diagnostic(
                    "oob-access", name, off,
                    f"{fact.op} at address >= {addr.lo + fact.imm_offset:#x} "
                    f"exceeds the maximum memory size of {max_bytes:#x} "
                    "bytes on every path",
                ))
            elif addr.hi < 0 and addr.hi + reach > 0:
                # entirely negative address: as u32 it reaches past 2**32
                diags.append(Diagnostic(
                    "oob-access", name, off,
                    f"{fact.op} wraps past the end of the address space "
                    "on every path",
                ))
        return diags

    def _lint_dead_arms(self, name: str, cfg, result,
                        reachable: set[int]) -> list:
        """Branch conditions the interval analysis proved constant."""
        diags = []
        for block in cfg.blocks:
            if block.index not in reachable or not block.instrs:
                continue
            off, instr = block.instrs[-1]
            op = instr[0]
            if op not in ("if", "br_if"):
                continue
            cond = result.branch_conds.get(off)
            if cond is None or cond.bits == 0 or cond.lo != cond.hi:
                continue
            if op == "if":
                dead = "else arm" if cond.lo else "then arm"
                detail = f"the {dead} can never execute"
            else:
                detail = ("the branch is always taken" if cond.lo
                          else "the branch is never taken")
            # advisory (severity "info"): generated code legitimately
            # specializes branches into constants (e.g. the fixed-length
            # string helpers), so strict mode must not reject it
            diags.append(Diagnostic(
                "dead-arm", name, off,
                f"condition of {op!r} is always {int(bool(cond.lo))}: "
                f"{detail}",
                severity="info",
            ))
        return diags

    def _lint_locals(self, func: Function, name: str, cfg,
                     reachable: set[int]) -> list:
        func_type = self.module.types[func.type_index]
        nparams = len(func_type.params)
        live = analyze_liveness(self.module, func, cfg=cfg)
        diags = []

        def describe(index: int) -> str:
            label = func.local_names.get(index)
            return f"local {index}" + (f" ({label})" if label else "")

        write_only: set[int] = set()
        for index in range(nparams, nparams + len(func.locals_)):
            if index in live.used_locals:
                continue
            if index in live.written_locals:
                write_only.add(index)
                diags.append(Diagnostic(
                    "write-only-local", name, live.first_write.get(index),
                    f"{describe(index)} is written but never read",
                ))
            else:
                diags.append(Diagnostic(
                    "unused-local", name, None,
                    f"{describe(index)} is never referenced",
                ))

        for off, index, block in live.dead_stores:
            if index in write_only or block not in reachable:
                continue  # folded into write-only-local / unreachable-code
            diags.append(Diagnostic(
                "dead-store", name, off,
                f"value stored to {describe(index)} is never read",
            ))
        return diags
