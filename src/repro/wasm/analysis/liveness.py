"""Local liveness: dead stores and never-read locals.

Classic backward bit-vector analysis over the CFG — the abstract state
is the set of locals whose current value may still be read.  A
``local.get`` *gens* its index, ``local.set``/``local.tee`` *kill*
theirs; no other instruction touches the frame's locals (calls cannot:
Wasm locals are strictly per-activation).

Two consumers: the lint pass reports stores whose value is provably
never read (``dead_stores``, with the preorder offset of the store),
and the module-level "written but never read" / "never referenced"
local diagnostics use the plain ``used_locals``/``written_locals``
sets collected on the way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wasm.analysis.cfg import CFG, build_cfg
from repro.wasm.analysis.dataflow import solve_backward
from repro.wasm.module import Function, Module

__all__ = ["LivenessResult", "analyze_liveness"]


@dataclass
class LivenessResult:
    cfg: CFG
    #: ``(preorder_offset, local_index, block_index)`` per dead store
    dead_stores: list[tuple[int, int, int]] = field(default_factory=list)
    used_locals: set[int] = field(default_factory=set)
    written_locals: set[int] = field(default_factory=set)
    #: local index -> preorder offset of its first write
    first_write: dict[int, int] = field(default_factory=dict)


def _transfer(block, live: frozenset) -> frozenset:
    out = set(live)
    for _off, instr in reversed(block.instrs):
        op = instr[0]
        if op == "local.get":
            out.add(instr[1])
        elif op == "local.set" or op == "local.tee":
            out.discard(instr[1])
    return frozenset(out)


def analyze_liveness(module: Module, func: Function,
                     cfg: CFG | None = None) -> LivenessResult:
    cfg = cfg or build_cfg(module, func)
    _in, out_states = solve_backward(
        cfg, frozenset(), transfer=_transfer,
        join=lambda a, b: a | b,
    )
    result = LivenessResult(cfg)
    for block in cfg.blocks:
        live = set(out_states.get(block.index, frozenset()))
        for off, instr in reversed(block.instrs):
            op = instr[0]
            if op == "local.get":
                live.add(instr[1])
                result.used_locals.add(instr[1])
            elif op == "local.set" or op == "local.tee":
                index = instr[1]
                if index not in live:
                    result.dead_stores.append((off, index, block.index))
                live.discard(index)
                result.written_locals.add(index)
                prev = result.first_write.get(index)
                if prev is None or off < prev:
                    result.first_write[index] = off
    result.dead_stores.sort()
    return result
