"""Basic-block CFG over the structured tuple-IR.

Wasm has structured control flow only — ``block``/``loop``/``if`` nest
bodies, and ``br``/``br_if``/``br_table`` target enclosing labels.  The
analyses in this package (intervals, liveness) want the classic shape
instead: basic blocks and edges.  :func:`build_cfg` lowers a function
body by walking the nesting once:

* every structured instruction eagerly creates its *continuation* block
  (and a loop its *header* block), so every label has a block to target;
* a branch becomes an edge to the frame's target carrying the stack
  *truncation* of the label — ``(entry_height, arity)`` — so transfer
  functions can reshape their abstract stack exactly like the branch
  reshapes the real one;
* conditional terminators (``if``, ``br_if``) stay as the last
  instruction of their block and their two out-edges are tagged
  ``"taken"``/``"fallthrough"`` so a solver can refine the condition's
  operands per edge;
* code after an unconditional terminator collects into a fresh block
  with no in-edges — the lint pass reports those as unreachable.

Instructions are addressed by a *preorder offset* (:func:`assign_offsets`)
rather than by list position: the tuple-IR nests bodies, and consumers
(diagnostics, the TurboFan elision hook) need one flat, stable numbering
that survives skipping dead or constant-folded branches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.wasm.module import Function, Module
from repro.wasm.opcodes import OPS

__all__ = ["BasicBlock", "CFG", "Edge", "assign_offsets", "build_cfg",
           "stack_effect"]


def assign_offsets(body: list) -> dict[tuple[int, int], int]:
    """Preorder instruction numbering of a (nested) function body.

    Returns ``{(id(body_list), position): offset}``; nested bodies of
    ``block``/``loop``/``if`` are numbered right after their parent
    instruction.  Keying by list identity lets any recursive walk over
    the same body objects look its offsets up without threading a
    counter through control flow.
    """
    table: dict[tuple[int, int], int] = {}

    def walk(b: list, counter: int) -> int:
        for pos, instr in enumerate(b):
            table[(id(b), pos)] = counter
            counter += 1
            op = instr[0]
            if op == "block" or op == "loop":
                counter = walk(instr[2], counter)
            elif op == "if":
                counter = walk(instr[2], counter)
                counter = walk(instr[3], counter)
        return counter

    walk(body, 0)
    return table


def stack_effect(module: Module, instr: tuple) -> tuple[int, int]:
    """``(pops, pushes)`` of one non-control instruction."""
    op = instr[0]
    if op == "call":
        ft = module.func_type_of(instr[1])
        return len(ft.params), len(ft.results)
    if op == "call_indirect":
        ft = module.types[instr[1]]
        return len(ft.params) + 1, len(ft.results)
    if op == "drop":
        return 1, 0
    if op == "select":
        return 3, 1
    if op == "local.get" or op == "global.get":
        return 0, 1
    if op == "local.set" or op == "global.set":
        return 1, 0
    if op == "local.tee":
        return 1, 1
    info = OPS[op]
    return len(info.params), len(info.results)


@dataclass
class Edge:
    """One CFG edge.

    ``kind`` is ``"jump"`` (unconditional / structured fallthrough),
    ``"taken"``/``"fallthrough"`` (the two sides of an ``if`` or
    ``br_if``), or ``"table"`` (one ``br_table`` arm).  ``trunc`` is the
    ``(entry_height, arity)`` of the branched-to label, or ``None`` when
    the branch does not reshape the stack (structured fallthrough, edges
    into an ``if`` arm, edges to the exit block).
    """

    target: int
    kind: str = "jump"
    trunc: tuple[int, int] | None = None


@dataclass
class BasicBlock:
    index: int
    #: ``(preorder_offset, instruction_tuple)`` pairs.  A conditional
    #: terminator (``if``/``br_if``/``br_table``) is the last entry.
    instrs: list[tuple[int, tuple]] = field(default_factory=list)
    edges: list[Edge] = field(default_factory=list)
    #: Operand-stack height on entry; ``None`` for blocks created inside
    #: syntactically dead code (they have no in-edges).
    entry_height: int | None = None
    is_loop_header: bool = False


@dataclass
class CFG:
    blocks: list[BasicBlock]
    entry: int
    exit: int
    offsets: dict[tuple[int, int], int]

    def reachable(self) -> set[int]:
        """Block indices reachable from the entry block."""
        seen = {self.entry}
        work = [self.entry]
        while work:
            for edge in self.blocks[work.pop()].edges:
                if edge.target not in seen:
                    seen.add(edge.target)
                    work.append(edge.target)
        return seen

    def predecessors(self) -> dict[int, list[int]]:
        preds: dict[int, list[int]] = {b.index: [] for b in self.blocks}
        for block in self.blocks:
            for edge in block.edges:
                preds[edge.target].append(block.index)
        return preds


class _Frame:
    """One enclosing label during the lowering walk."""

    __slots__ = ("kind", "entry_height", "arity", "target")

    def __init__(self, kind: str, entry_height: int | None, arity: int,
                 target: int):
        self.kind = kind  # "func" | "block" | "loop" | "if"
        self.entry_height = entry_height
        self.arity = arity
        self.target = target  # block index a br to this label jumps to


def _plus(height: int | None, n: int) -> int | None:
    return None if height is None else height + n


class _Builder:
    def __init__(self, module: Module, func: Function,
                 offsets: dict[tuple[int, int], int]):
        self.module = module
        self.func = func
        self.offsets = offsets
        self.blocks: list[BasicBlock] = []
        self.current = self._new_block(0)
        self.exit = self._new_block(None)
        self.height: int | None = 0

    def _new_block(self, entry_height: int | None) -> BasicBlock:
        block = BasicBlock(len(self.blocks), entry_height=entry_height)
        self.blocks.append(block)
        return block

    @property
    def alive(self) -> bool:
        return self.height is not None

    def _dead(self) -> None:
        """Open a successor-less block for syntactically dead code."""
        self.current = self._new_block(None)
        self.height = None

    def _goto(self, block: BasicBlock) -> None:
        """Fall through into ``block`` (edge only if the flow is live)."""
        if self.alive:
            self.current.edges.append(Edge(block.index))
        self.current = block
        self.height = block.entry_height

    def _branch_edge(self, frames: list[_Frame], depth: int,
                     kind: str) -> None:
        frame = frames[-1 - depth]
        if frame.kind == "func":
            self.current.edges.append(Edge(self.exit.index, kind))
        else:
            arity = frame.arity if frame.kind != "loop" else 0
            self.current.edges.append(
                Edge(frame.target, kind, trunc=(frame.entry_height, arity))
            )

    # -- the walk ---------------------------------------------------------

    def walk(self, body: list, frames: list[_Frame]) -> None:
        for pos, instr in enumerate(body):
            off = self.offsets[(id(body), pos)]
            op = instr[0]

            if op == "block":
                cont = self._new_block(_plus(self.height, len(instr[1])))
                frames.append(_Frame("block", self.height, len(instr[1]),
                                     cont.index))
                self.walk(instr[2], frames)
                frames.pop()
                self._goto(cont)
            elif op == "loop":
                header = self._new_block(self.height)
                header.is_loop_header = True
                cont = self._new_block(_plus(self.height, len(instr[1])))
                self._goto(header)
                frames.append(_Frame("loop", self.height, len(instr[1]),
                                     header.index))
                self.walk(instr[2], frames)
                frames.pop()
                self._goto(cont)
            elif op == "if":
                self.current.instrs.append((off, instr))
                inner_height = _plus(self.height, -1)  # condition popped
                then_block = self._new_block(inner_height)
                else_block = self._new_block(inner_height)
                cont = self._new_block(_plus(inner_height, len(instr[1])))
                if self.alive:
                    self.current.edges.append(Edge(then_block.index, "taken"))
                    self.current.edges.append(
                        Edge(else_block.index, "fallthrough"))
                frames.append(_Frame("if", inner_height, len(instr[1]),
                                     cont.index))
                self.current, self.height = then_block, inner_height
                self.walk(instr[2], frames)
                if self.alive:
                    self.current.edges.append(Edge(cont.index))
                self.current, self.height = else_block, inner_height
                self.walk(instr[3], frames)
                frames.pop()
                self._goto(cont)
            elif op == "br":
                self.current.instrs.append((off, instr))
                if self.alive:
                    self._branch_edge(frames, instr[1], "jump")
                self._dead()
            elif op == "br_if":
                self.current.instrs.append((off, instr))
                after = _plus(self.height, -1)
                fallthrough = self._new_block(after)
                if self.alive:
                    self._branch_edge(frames, instr[1], "taken")
                    self.current.edges.append(
                        Edge(fallthrough.index, "fallthrough"))
                self.current, self.height = fallthrough, after
            elif op == "br_table":
                self.current.instrs.append((off, instr))
                if self.alive:
                    for target in instr[1]:
                        self._branch_edge(frames, target, "table")
                    self._branch_edge(frames, instr[2], "table")
                self._dead()
            elif op == "return":
                self.current.instrs.append((off, instr))
                if self.alive:
                    self.current.edges.append(Edge(self.exit.index))
                self._dead()
            elif op == "unreachable":
                self.current.instrs.append((off, instr))
                self._dead()
            else:
                self.current.instrs.append((off, instr))
                if self.alive:
                    pops, pushes = stack_effect(self.module, instr)
                    self.height += pushes - pops


def build_cfg(module: Module, func: Function,
              offsets: dict[tuple[int, int], int] | None = None) -> CFG:
    """Lower one validated function body into a basic-block CFG."""
    if offsets is None:
        offsets = assign_offsets(func.body)
    builder = _Builder(module, func, offsets)
    func_type = module.types[func.type_index]
    frames = [_Frame("func", 0, len(func_type.results), builder.exit.index)]
    builder.walk(func.body, frames)
    if builder.alive:
        builder.current.edges.append(Edge(builder.exit.index))
    return CFG(builder.blocks, entry=0, exit=builder.exit.index,
               offsets=offsets)
