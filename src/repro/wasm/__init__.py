"""A from-scratch WebAssembly (MVP subset) substrate.

This package replaces the paper's use of V8 as an off-the-shelf engine:

* :mod:`repro.wasm.module` / :mod:`repro.wasm.builder` — an in-memory IR
  for Wasm modules and a convenient emitter API,
* :mod:`repro.wasm.encoder` / :mod:`repro.wasm.decoder` — the real binary
  ``.wasm`` format (LEB128, sections), round-trippable,
* :mod:`repro.wasm.validator` — spec-style stack type checking,
* :mod:`repro.wasm.wat` — text-format printing for debugging,
* :mod:`repro.wasm.runtime` — the engine: a reference interpreter plus two
  compilation tiers ("Liftoff" and "TurboFan") with adaptive tier-up.
"""

from repro.wasm.module import (
    Data,
    Element,
    Export,
    FuncType,
    Function,
    Global,
    Import,
    MemoryType,
    Module,
    TableType,
)
from repro.wasm.builder import FunctionBuilder, ModuleBuilder
from repro.wasm.encoder import encode_module
from repro.wasm.decoder import decode_module
from repro.wasm.validator import validate_module
from repro.wasm.wat import module_to_wat

__all__ = [
    "Data",
    "Element",
    "Export",
    "FuncType",
    "Function",
    "FunctionBuilder",
    "Global",
    "Import",
    "MemoryType",
    "Module",
    "ModuleBuilder",
    "TableType",
    "decode_module",
    "encode_module",
    "module_to_wat",
    "validate_module",
]
