"""In-memory representation of a WebAssembly module.

A :class:`Module` mirrors the section structure of the binary format:
types, imports, functions, tables, memories, globals, exports, element
segments, and data segments.  Function bodies hold the tuple-based
instruction representation described in :mod:`repro.wasm.opcodes`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "FuncType",
    "Function",
    "Global",
    "Import",
    "Export",
    "MemoryType",
    "TableType",
    "Element",
    "Data",
    "Module",
]


@dataclass(frozen=True)
class FuncType:
    """A function signature: parameter and result value types."""

    params: tuple[str, ...]
    results: tuple[str, ...]

    def __str__(self) -> str:
        p = " ".join(self.params)
        r = " ".join(self.results)
        return f"({p}) -> ({r})"


@dataclass
class Function:
    """One defined function.

    ``type_index`` points into :attr:`Module.types`; ``locals_`` lists the
    value types of the *extra* locals (parameters are locals 0..n-1);
    ``body`` is a list of instruction tuples.
    """

    type_index: int
    locals_: list[str] = field(default_factory=list)
    body: list = field(default_factory=list)
    name: str | None = None
    local_names: dict[int, str] = field(default_factory=dict)
    #: Host-contract value hints: parameter index -> inclusive ``(lo, hi)``
    #: range the caller promises to respect.  Purely advisory metadata for
    #: the static analyses (not encoded to binary): the codegen declares
    #: the ``[0, extent_rows]`` contract of ``pipeline_i(begin, end)``
    #: here, which lets the interval analysis bound scan addresses.
    param_ranges: dict[int, tuple[int, int]] = field(default_factory=dict)
    #: Host-contract load hints: preorder instruction offset of a load ->
    #: inclusive ``(lo, hi)`` range of every value that load can produce
    #: (the codegen declares the catalog-statistics bounds of column
    #: loads here).  Advisory, like ``param_ranges``: the interval
    #: analysis intersects the load result with the hint, which lets it
    #: bound values no address arithmetic could (index-seek row ids).
    value_ranges: dict[int, tuple[int, int]] = field(default_factory=dict)


@dataclass
class Global:
    valtype: str
    mutable: bool
    init: object  # constant initial value
    name: str | None = None


@dataclass(frozen=True)
class MemoryType:
    minimum: int  # pages
    maximum: int | None = None


@dataclass(frozen=True)
class TableType:
    minimum: int
    maximum: int | None = None
    elemtype: str = "funcref"


@dataclass(frozen=True)
class Import:
    """An imported function (only functions are importable here, which is
    what the paper's host callbacks need: ``rewire_next_chunk`` etc.)."""

    module: str
    name: str
    type_index: int


@dataclass(frozen=True)
class Export:
    name: str
    kind: str  # "func" | "memory" | "global" | "table"
    index: int


@dataclass
class Element:
    """An active element segment: function indices placed into the table."""

    table_index: int
    offset: int
    func_indices: list[int]


@dataclass
class Data:
    """An active data segment: bytes placed into linear memory."""

    memory_index: int
    offset: int
    payload: bytes


@dataclass
class Module:
    """A complete module."""

    types: list[FuncType] = field(default_factory=list)
    imports: list[Import] = field(default_factory=list)
    functions: list[Function] = field(default_factory=list)
    tables: list[TableType] = field(default_factory=list)
    memories: list[MemoryType] = field(default_factory=list)
    globals: list[Global] = field(default_factory=list)
    exports: list[Export] = field(default_factory=list)
    elements: list[Element] = field(default_factory=list)
    data: list[Data] = field(default_factory=list)
    start: int | None = None
    name: str | None = None

    # -- indexing helpers (function index space = imports then definitions) --

    @property
    def num_imported_functions(self) -> int:
        return len(self.imports)

    def func_type_of(self, func_index: int) -> FuncType:
        """The signature of a function by its index-space index."""
        if func_index < len(self.imports):
            return self.types[self.imports[func_index].type_index]
        defined = self.functions[func_index - len(self.imports)]
        return self.types[defined.type_index]

    def function_by_name(self, name: str) -> tuple[int, Function]:
        """Find a *defined* function by its debug name."""
        for i, func in enumerate(self.functions):
            if func.name == name:
                return len(self.imports) + i, func
        raise KeyError(name)

    def export_by_name(self, name: str) -> Export:
        for export in self.exports:
            if export.name == name:
                return export
        raise KeyError(name)

    def add_type(self, functype: FuncType) -> int:
        """Intern a function type, returning its index."""
        try:
            return self.types.index(functype)
        except ValueError:
            self.types.append(functype)
            return len(self.types) - 1
