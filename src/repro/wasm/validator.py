"""Module validation: spec-style stack type checking.

Implements the type-checking algorithm of the WebAssembly specification
appendix ("Validation Algorithm"): an operand stack of value types with an
``unknown`` bottom type for unreachable code, and a control stack holding
one frame per structured instruction whose label types govern branches.

Every module the backend generates is validated before execution; the
tier compilers may assume validated input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ValidationError
from repro.wasm.module import Function, Module
from repro.wasm.opcodes import OPS

__all__ = ["validate_module", "validate_function"]

_UNKNOWN = "unknown"
_MAX_PAGES = 65536  # 4 GiB / 64 KiB: the 32-bit address-space cap
_NATURAL_ALIGN = {
    "i32.load": 2, "i64.load": 3, "f32.load": 2, "f64.load": 3,
    "i32.load8_s": 0, "i32.load8_u": 0, "i32.load16_s": 1, "i32.load16_u": 1,
    "i64.load8_s": 0, "i64.load8_u": 0, "i64.load16_s": 1, "i64.load16_u": 1,
    "i64.load32_s": 2, "i64.load32_u": 2,
    "i32.store": 2, "i64.store": 3, "f32.store": 2, "f64.store": 3,
    "i32.store8": 0, "i32.store16": 1,
    "i64.store8": 0, "i64.store16": 1, "i64.store32": 2,
}


@dataclass
class _Frame:
    """One control frame: the label's branch types and entry stack height."""

    opcode: str
    start_types: list[str]
    end_types: list[str]
    height: int
    unreachable: bool = False

    @property
    def label_types(self) -> list[str]:
        # A branch to a loop re-enters it: the label takes the *start* types.
        return self.start_types if self.opcode == "loop" else self.end_types


@dataclass
class _Checker:
    module: Module
    func: Function
    locals_: list[str]
    stack: list[str] = field(default_factory=list)
    ctrls: list[_Frame] = field(default_factory=list)

    # -- operand stack --------------------------------------------------------

    def push(self, ty: str) -> None:
        self.stack.append(ty)

    def pop(self, expect: str | None = None) -> str:
        frame = self.ctrls[-1]
        if len(self.stack) == frame.height:
            if frame.unreachable:
                return expect or _UNKNOWN
            raise ValidationError(
                f"{self._where()}: stack underflow (wanted {expect or 'a value'})"
            )
        actual = self.stack.pop()
        if expect is not None and actual != expect and actual != _UNKNOWN:
            raise ValidationError(
                f"{self._where()}: expected {expect}, found {actual}"
            )
        return actual

    def _where(self) -> str:
        return f"function {self.func.name or '?'}"

    # -- control stack ----------------------------------------------------------

    def push_ctrl(self, opcode: str, start: list[str], end: list[str]) -> None:
        self.ctrls.append(_Frame(opcode, start, end, len(self.stack)))

    def pop_ctrl(self) -> _Frame:
        frame = self.ctrls[-1]
        for ty in reversed(frame.end_types):
            self.pop(ty)
        if len(self.stack) != frame.height:
            raise ValidationError(
                f"{self._where()}: values left on stack at end of "
                f"{frame.opcode} ({len(self.stack) - frame.height} extra)"
            )
        self.ctrls.pop()
        return frame

    def set_unreachable(self) -> None:
        frame = self.ctrls[-1]
        del self.stack[frame.height :]
        frame.unreachable = True

    def label(self, depth: int) -> _Frame:
        if not (0 <= depth < len(self.ctrls)):
            raise ValidationError(
                f"{self._where()}: branch depth {depth} out of range"
            )
        return self.ctrls[-1 - depth]

    # -- instruction checking -------------------------------------------------------

    def check_body(self, body: list) -> None:
        for instr in body:
            self.check_instruction(instr)

    def check_instruction(self, instr: tuple) -> None:
        name = instr[0]

        if name == "block" or name == "loop":
            results = list(instr[1])
            self.push_ctrl(name, [], results)
            self.check_body(instr[2])
            frame = self.pop_ctrl()
            for ty in frame.end_types:
                self.push(ty)
            return
        if name == "if":
            self.pop("i32")
            results = list(instr[1])
            self.push_ctrl("if", [], results)
            self.check_body(instr[2])
            frame = self.pop_ctrl()
            if instr[3] or results:
                self.push_ctrl("else", [], results)
                self.check_body(instr[3])
                frame = self.pop_ctrl()
            for ty in frame.end_types:
                self.push(ty)
            return

        if name == "unreachable":
            self.set_unreachable()
            return
        if name == "nop":
            return
        if name == "br":
            for ty in reversed(self.label(instr[1]).label_types):
                self.pop(ty)
            self.set_unreachable()
            return
        if name == "br_if":
            self.pop("i32")
            types = self.label(instr[1]).label_types
            for ty in reversed(types):
                self.pop(ty)
            for ty in types:
                self.push(ty)
            return
        if name == "br_table":
            self.pop("i32")
            default_types = self.label(instr[2]).label_types
            for target in instr[1]:
                if self.label(target).label_types != default_types:
                    raise ValidationError(
                        f"{self._where()}: br_table label type mismatch"
                    )
            for ty in reversed(default_types):
                self.pop(ty)
            self.set_unreachable()
            return
        if name == "return":
            func_type = self.module.types[self.func.type_index]
            for ty in reversed(func_type.results):
                self.pop(ty)
            self.set_unreachable()
            return
        if name == "call":
            func_index = instr[1]
            total = len(self.module.imports) + len(self.module.functions)
            if not (0 <= func_index < total):
                raise ValidationError(
                    f"{self._where()}: call to unknown function {func_index}"
                )
            callee = self.module.func_type_of(func_index)
            for ty in reversed(callee.params):
                self.pop(ty)
            for ty in callee.results:
                self.push(ty)
            return
        if name == "call_indirect":
            type_index, table_index = instr[1], instr[2]
            if not (0 <= type_index < len(self.module.types)):
                raise ValidationError(f"{self._where()}: bad type index")
            if not (0 <= table_index < len(self.module.tables)):
                raise ValidationError(f"{self._where()}: no table {table_index}")
            self.pop("i32")
            callee = self.module.types[type_index]
            for ty in reversed(callee.params):
                self.pop(ty)
            for ty in callee.results:
                self.push(ty)
            return

        if name == "drop":
            self.pop()
            return
        if name == "select":
            self.pop("i32")
            t1 = self.pop()
            t2 = self.pop()
            if t1 != t2 and _UNKNOWN not in (t1, t2):
                raise ValidationError(
                    f"{self._where()}: select operand mismatch {t1} vs {t2}"
                )
            self.push(t2 if t1 == _UNKNOWN else t1)
            return

        if name in ("local.get", "local.set", "local.tee"):
            index = instr[1]
            if not (0 <= index < len(self.locals_)):
                raise ValidationError(
                    f"{self._where()}: unknown local {index}"
                )
            ty = self.locals_[index]
            if name == "local.get":
                self.push(ty)
            elif name == "local.set":
                self.pop(ty)
            else:
                self.pop(ty)
                self.push(ty)
            return
        if name in ("global.get", "global.set"):
            index = instr[1]
            if not (0 <= index < len(self.module.globals)):
                raise ValidationError(
                    f"{self._where()}: unknown global {index}"
                )
            glob = self.module.globals[index]
            if name == "global.get":
                self.push(glob.valtype)
            else:
                if not glob.mutable:
                    raise ValidationError(
                        f"{self._where()}: assignment to immutable global {index}"
                    )
                self.pop(glob.valtype)
            return

        op = OPS.get(name)
        if op is None:
            raise ValidationError(f"{self._where()}: unknown instruction {name!r}")

        if op.imm == "memarg":
            if not self.module.memories:
                raise ValidationError(
                    f"{self._where()}: {name} without a memory"
                )
            align = instr[1]
            if align > _NATURAL_ALIGN[name]:
                raise ValidationError(
                    f"{self._where()}: alignment 2**{align} exceeds natural "
                    f"alignment of {name}"
                )
        elif op.imm == "mem" and not self.module.memories:
            raise ValidationError(f"{self._where()}: {name} without a memory")

        for ty in reversed(op.params):
            self.pop(ty)
        for ty in op.results:
            self.push(ty)


def validate_function(module: Module, func: Function) -> None:
    """Validate one defined function."""
    if not (0 <= func.type_index < len(module.types)):
        raise ValidationError(f"function {func.name!r}: bad type index")
    func_type = module.types[func.type_index]
    locals_ = list(func_type.params) + list(func.locals_)
    checker = _Checker(module, func, locals_)
    checker.push_ctrl("func", [], list(func_type.results))
    checker.check_body(func.body)
    frame = checker.pop_ctrl()
    for ty in frame.end_types:
        checker.push(ty)


def validate_module(module: Module) -> None:
    """Validate a whole module.

    Raises:
        ValidationError: describing the first problem found.
    """
    for imp in module.imports:
        if not (0 <= imp.type_index < len(module.types)):
            raise ValidationError(f"import {imp.module}.{imp.name}: bad type index")
    if len(module.memories) > 1:
        raise ValidationError("at most one memory is allowed (MVP)")
    for mem in module.memories:
        if mem.minimum < 0 or mem.minimum > _MAX_PAGES:
            raise ValidationError(
                f"memory minimum {mem.minimum} exceeds {_MAX_PAGES} pages "
                f"(the 4 GiB 32-bit address space)"
            )
        if mem.maximum is not None:
            if mem.maximum > _MAX_PAGES:
                raise ValidationError(
                    f"memory maximum {mem.maximum} exceeds {_MAX_PAGES} pages"
                )
            if mem.maximum < mem.minimum:
                raise ValidationError("memory maximum below minimum")
    _GLOBAL_INIT_PYTYPE = {"i32": int, "i64": int, "f32": float, "f64": float}
    _INT_INIT_RANGE = {"i32": (-(1 << 31), (1 << 32) - 1),
                       "i64": (-(1 << 63), (1 << 64) - 1)}
    for i, glob in enumerate(module.globals):
        if glob.valtype not in _GLOBAL_INIT_PYTYPE:
            raise ValidationError(
                f"global {i}: unknown value type {glob.valtype!r}"
            )
        init = glob.init
        if init is None:
            continue  # zero-initialized by the engine
        expected = _GLOBAL_INIT_PYTYPE[glob.valtype]
        if expected is int:
            # bool is an int subclass but not a Wasm constant
            if not isinstance(init, int) or isinstance(init, bool):
                raise ValidationError(
                    f"global {i}: initializer {init!r} is not a "
                    f"{glob.valtype} constant"
                )
            lo, hi = _INT_INIT_RANGE[glob.valtype]
            if not (lo <= init <= hi):
                raise ValidationError(
                    f"global {i}: initializer {init} out of {glob.valtype} "
                    f"range"
                )
        elif not isinstance(init, (int, float)) or isinstance(init, bool):
            raise ValidationError(
                f"global {i}: initializer {init!r} is not a "
                f"{glob.valtype} constant"
            )
    total_funcs = len(module.imports) + len(module.functions)
    seen_exports: set[str] = set()
    for export in module.exports:
        if export.name in seen_exports:
            raise ValidationError(
                f"duplicate export name {export.name!r}"
            )
        seen_exports.add(export.name)
        limit = {
            "func": total_funcs,
            "memory": len(module.memories),
            "global": len(module.globals),
            "table": len(module.tables),
        }[export.kind]
        if not (0 <= export.index < limit):
            raise ValidationError(
                f"export {export.name!r}: index {export.index} out of range"
            )
    for elem in module.elements:
        if not (0 <= elem.table_index < len(module.tables)):
            raise ValidationError("element segment references unknown table")
        for func_index in elem.func_indices:
            if not (0 <= func_index < total_funcs):
                raise ValidationError(
                    f"element segment references unknown function {func_index}"
                )
    if module.start is not None:
        if not (0 <= module.start < total_funcs):
            raise ValidationError("start function index out of range")
        start_type = module.func_type_of(module.start)
        if start_type.params or start_type.results:
            raise ValidationError("start function must have type () -> ()")
    for seg in module.data:
        if not (0 <= seg.memory_index < len(module.memories)):
            raise ValidationError("data segment references unknown memory")
    for func in module.functions:
        validate_function(module, func)
