"""Decoding of binary ``.wasm`` bytes back into a :class:`Module`.

The inverse of :mod:`repro.wasm.encoder`; together they round-trip, which
the property-based tests exercise.  Decoding rebuilds the nested
structured-instruction representation from the flat ``end``-terminated
byte form.
"""

from __future__ import annotations

import struct

from repro.errors import DecodeError
from repro.wasm.module import (
    Data,
    Element,
    Export,
    FuncType,
    Function,
    Global,
    Import,
    MemoryType,
    Module,
    TableType,
)
from repro.wasm.opcodes import BY_CODE

__all__ = ["decode_module"]

_VALTYPE_BY_CODE = {0x7F: "i32", 0x7E: "i64", 0x7D: "f32", 0x7C: "f64"}
_EXPORT_KINDS = {0: "func", 1: "table", 2: "memory", 3: "global"}


class _Reader:
    """A cursor over the module bytes."""

    def __init__(self, data: bytes):
        self.data = data
        self.pos = 0

    def eof(self) -> bool:
        return self.pos >= len(self.data)

    def byte(self) -> int:
        if self.pos >= len(self.data):
            raise DecodeError("unexpected end of module")
        b = self.data[self.pos]
        self.pos += 1
        return b

    def bytes_(self, n: int) -> bytes:
        if self.pos + n > len(self.data):
            raise DecodeError("unexpected end of module")
        chunk = self.data[self.pos : self.pos + n]
        self.pos += n
        return chunk

    def uleb(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            if not (b & 0x80):
                return result
            shift += 7
            if shift > 63:
                raise DecodeError("uleb128 too long")

    def sleb(self) -> int:
        result = 0
        shift = 0
        while True:
            b = self.byte()
            result |= (b & 0x7F) << shift
            shift += 7
            if not (b & 0x80):
                if b & 0x40:
                    result -= 1 << shift
                return result
            if shift > 70:
                raise DecodeError("sleb128 too long")

    def name(self) -> str:
        length = self.uleb()
        raw = self.bytes_(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError:
            raise DecodeError(f"name is not valid UTF-8: {raw!r}") from None

    def valtype(self) -> str:
        code = self.byte()
        try:
            return _VALTYPE_BY_CODE[code]
        except KeyError:
            raise DecodeError(f"bad value type {code:#x}") from None

    def limits(self) -> tuple[int, int | None]:
        flag = self.byte()
        minimum = self.uleb()
        if flag == 0:
            return minimum, None
        if flag == 1:
            return minimum, self.uleb()
        raise DecodeError(f"bad limits flag {flag:#x}")

    def blocktype(self) -> list[str]:
        code = self.byte()
        if code == 0x40:
            return []
        if code in _VALTYPE_BY_CODE:
            return [_VALTYPE_BY_CODE[code]]
        raise DecodeError(f"unsupported block type {code:#x}")

    def const_expr(self) -> tuple[str, object]:
        opcode = self.byte()
        if opcode == 0x41:
            value: object = self.sleb()
            ty = "i32"
        elif opcode == 0x42:
            value = self.sleb()
            ty = "i64"
        elif opcode == 0x43:
            value = struct.unpack("<f", self.bytes_(4))[0]
            ty = "f32"
        elif opcode == 0x44:
            value = struct.unpack("<d", self.bytes_(8))[0]
            ty = "f64"
        else:
            raise DecodeError(f"unsupported const expr opcode {opcode:#x}")
        if self.byte() != 0x0B:
            raise DecodeError("const expr missing end")
        return ty, value


_END = object()
_ELSE = object()


def _decode_body(reader: _Reader) -> tuple[list, object]:
    """Decode instructions until ``end`` or ``else``; returns (body, stopper)."""
    body: list = []
    while True:
        opcode = reader.byte()
        if opcode == 0x0B:
            return body, _END
        if opcode == 0x05:
            return body, _ELSE
        if opcode == 0x02 or opcode == 0x03:  # block / loop
            results = reader.blocktype()
            inner, stop = _decode_body(reader)
            if stop is not _END:
                raise DecodeError("else outside if")
            body.append(("block" if opcode == 0x02 else "loop", results, inner))
            continue
        if opcode == 0x04:  # if
            results = reader.blocktype()
            then_body, stop = _decode_body(reader)
            else_body: list = []
            if stop is _ELSE:
                else_body, stop = _decode_body(reader)
                if stop is not _END:
                    raise DecodeError("nested else")
            body.append(("if", results, then_body, else_body))
            continue

        op = BY_CODE.get(opcode)
        if op is None:
            raise DecodeError(f"unknown opcode {opcode:#x}")
        imm = op.imm
        if imm == "":
            body.append((op.name,))
        elif imm == "i32" or imm == "i64":
            body.append((op.name, reader.sleb()))
        elif imm == "f32":
            body.append((op.name, struct.unpack("<f", reader.bytes_(4))[0]))
        elif imm == "f64":
            body.append((op.name, struct.unpack("<d", reader.bytes_(8))[0]))
        elif imm in ("local", "global", "func", "label"):
            body.append((op.name, reader.uleb()))
        elif imm == "memarg":
            align = reader.uleb()
            offset = reader.uleb()
            body.append((op.name, align, offset))
        elif imm == "mem":
            reader.byte()
            body.append((op.name,))
        elif imm == "br_table":
            count = reader.uleb()
            targets = [reader.uleb() for _ in range(count)]
            default = reader.uleb()
            body.append((op.name, targets, default))
        elif imm == "call_indirect":
            type_index = reader.uleb()
            table_index = reader.uleb()
            body.append((op.name, type_index, table_index))
        else:  # pragma: no cover - exhaustive
            raise DecodeError(f"unhandled immediate kind {imm!r}")


def decode_module(data: bytes) -> Module:
    """Decode binary ``.wasm`` bytes into a :class:`Module`."""
    reader = _Reader(data)
    if reader.bytes_(4) != b"\x00asm":
        raise DecodeError("bad magic")
    if reader.bytes_(4) != b"\x01\x00\x00\x00":
        raise DecodeError("unsupported version")

    module = Module()
    while not reader.eof():
        section_id = reader.byte()
        size = reader.uleb()
        section = _Reader(reader.bytes_(size))
        if section_id == 1:
            for _ in range(section.uleb()):
                if section.byte() != 0x60:
                    raise DecodeError("bad functype tag")
                params = tuple(section.valtype() for _ in range(section.uleb()))
                results = tuple(section.valtype() for _ in range(section.uleb()))
                module.types.append(FuncType(params, results))
        elif section_id == 2:
            for _ in range(section.uleb()):
                mod_name = section.name()
                item_name = section.name()
                kind = section.byte()
                if kind != 0x00:
                    raise DecodeError("only function imports are supported")
                module.imports.append(
                    Import(mod_name, item_name, section.uleb())
                )
        elif section_id == 3:
            for _ in range(section.uleb()):
                module.functions.append(Function(type_index=section.uleb()))
        elif section_id == 4:
            for _ in range(section.uleb()):
                if section.byte() != 0x70:
                    raise DecodeError("bad table element type")
                minimum, maximum = section.limits()
                module.tables.append(TableType(minimum, maximum))
        elif section_id == 5:
            for _ in range(section.uleb()):
                minimum, maximum = section.limits()
                module.memories.append(MemoryType(minimum, maximum))
        elif section_id == 6:
            for _ in range(section.uleb()):
                valtype = section.valtype()
                mutable = section.byte() == 1
                _, value = section.const_expr()
                module.globals.append(Global(valtype, mutable, value))
        elif section_id == 7:
            for _ in range(section.uleb()):
                name = section.name()
                kind = _EXPORT_KINDS.get(section.byte())
                if kind is None:
                    raise DecodeError("bad export kind")
                module.exports.append(Export(name, kind, section.uleb()))
        elif section_id == 8:
            module.start = section.uleb()
        elif section_id == 9:
            for _ in range(section.uleb()):
                table_index = section.uleb()
                _, offset = section.const_expr()
                count = section.uleb()
                indices = [section.uleb() for _ in range(count)]
                module.elements.append(Element(table_index, int(offset), indices))
        elif section_id == 10:
            count = section.uleb()
            if count != len(module.functions):
                raise DecodeError("code/function section count mismatch")
            for func in module.functions:
                body_size = section.uleb()
                body_reader = _Reader(section.bytes_(body_size))
                for _ in range(body_reader.uleb()):
                    n = body_reader.uleb()
                    ty = body_reader.valtype()
                    func.locals_.extend([ty] * n)
                body, stop = _decode_body(body_reader)
                if stop is not _END:
                    raise DecodeError("function body missing end")
                func.body = body
        elif section_id == 11:
            for _ in range(section.uleb()):
                memory_index = section.uleb()
                _, offset = section.const_expr()
                length = section.uleb()
                module.data.append(
                    Data(memory_index, int(offset), section.bytes_(length))
                )
        elif section_id == 0:
            name = section.name()
            if name == "name":
                _decode_name_section(section, module)
        else:
            raise DecodeError(f"unknown section id {section_id}")
    return module


def _decode_name_section(section: _Reader, module: Module) -> None:
    while not section.eof():
        sub_id = section.byte()
        sub_size = section.uleb()
        sub = _Reader(section.bytes_(sub_size))
        if sub_id == 1:  # function names
            for _ in range(sub.uleb()):
                index = sub.uleb()
                fname = sub.name()
                defined_index = index - len(module.imports)
                if 0 <= defined_index < len(module.functions):
                    module.functions[defined_index].name = fname
