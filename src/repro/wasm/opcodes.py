"""The WebAssembly MVP instruction table.

Each instruction is described by an :class:`Op`: its binary opcode, the
kind of immediate operands it carries, and its stack signature (parameter
and result value types) used by the validator, the interpreter, and the
tier compilers.

Instructions in function bodies are represented as plain tuples::

    ("i32.add",)
    ("i32.const", 42)
    ("local.get", 3)
    ("i32.load", 2, 8)            # align, offset
    ("block", ["i32"], [ ...body... ])
    ("loop",  [],      [ ...body... ])
    ("if",    [], [ ...then... ], [ ...else... ])
    ("br_table", [0, 1, 2], 0)    # targets, default

The structured control instructions (``block``/``loop``/``if``) nest their
bodies directly; the encoder flattens them into the binary format's
``end``-terminated form and the decoder rebuilds the nesting.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Op", "OPS", "VALUE_TYPES", "CONTROL_OPS"]

VALUE_TYPES = ("i32", "i64", "f32", "f64")

# Immediate kinds:
#   ""         no immediates
#   "i32"/"i64"/"f32"/"f64"  one constant
#   "local"    local index
#   "global"   global index
#   "func"     function index
#   "label"    label (relative depth)
#   "br_table" list of labels + default label
#   "memarg"   (align, offset)
#   "mem"      memory index (always 0 in MVP)
#   "call_indirect"  (type index, table index)
#   "block"    structured: block type + nested bodies


@dataclass(frozen=True)
class Op:
    """Static description of one instruction."""

    name: str
    code: int
    imm: str
    params: tuple[str, ...]
    results: tuple[str, ...]


def _op(name: str, code: int, imm: str, params, results) -> Op:
    return Op(name, code, imm, tuple(params), tuple(results))


OPS: dict[str, Op] = {}


def _add(name: str, code: int, imm: str = "", params=(), results=()):
    OPS[name] = _op(name, code, imm, params, results)


# -- control ---------------------------------------------------------------
_add("unreachable", 0x00)
_add("nop", 0x01)
_add("block", 0x02, "block")
_add("loop", 0x03, "block")
_add("if", 0x04, "block", params=("i32",))
_add("br", 0x0C, "label")
_add("br_if", 0x0D, "label", params=("i32",))
_add("br_table", 0x0E, "br_table", params=("i32",))
_add("return", 0x0F)
_add("call", 0x10, "func")
_add("call_indirect", 0x11, "call_indirect")

# -- parametric -------------------------------------------------------------
_add("drop", 0x1A)        # polymorphic; validator special-cases
_add("select", 0x1B)      # polymorphic; validator special-cases

# -- variables ---------------------------------------------------------------
_add("local.get", 0x20, "local")
_add("local.set", 0x21, "local")
_add("local.tee", 0x22, "local")
_add("global.get", 0x23, "global")
_add("global.set", 0x24, "global")

# -- memory -------------------------------------------------------------------
for _name, _code, _ty, _width in [
    ("i32.load", 0x28, "i32", 4),
    ("i64.load", 0x29, "i64", 8),
    ("f32.load", 0x2A, "f32", 4),
    ("f64.load", 0x2B, "f64", 8),
    ("i32.load8_s", 0x2C, "i32", 1),
    ("i32.load8_u", 0x2D, "i32", 1),
    ("i32.load16_s", 0x2E, "i32", 2),
    ("i32.load16_u", 0x2F, "i32", 2),
    ("i64.load8_s", 0x30, "i64", 1),
    ("i64.load8_u", 0x31, "i64", 1),
    ("i64.load16_s", 0x32, "i64", 2),
    ("i64.load16_u", 0x33, "i64", 2),
    ("i64.load32_s", 0x34, "i64", 4),
    ("i64.load32_u", 0x35, "i64", 4),
]:
    _add(_name, _code, "memarg", params=("i32",), results=(_ty,))

for _name, _code, _ty in [
    ("i32.store", 0x36, "i32"),
    ("i64.store", 0x37, "i64"),
    ("f32.store", 0x38, "f32"),
    ("f64.store", 0x39, "f64"),
    ("i32.store8", 0x3A, "i32"),
    ("i32.store16", 0x3B, "i32"),
    ("i64.store8", 0x3C, "i64"),
    ("i64.store16", 0x3D, "i64"),
    ("i64.store32", 0x3E, "i64"),
]:
    _add(_name, _code, "memarg", params=("i32", _ty))

_add("memory.size", 0x3F, "mem", results=("i32",))
_add("memory.grow", 0x40, "mem", params=("i32",), results=("i32",))

# -- constants ------------------------------------------------------------------
_add("i32.const", 0x41, "i32", results=("i32",))
_add("i64.const", 0x42, "i64", results=("i64",))
_add("f32.const", 0x43, "f32", results=("f32",))
_add("f64.const", 0x44, "f64", results=("f64",))

# -- comparisons -------------------------------------------------------------------
_add("i32.eqz", 0x45, params=("i32",), results=("i32",))
for _i, _name in enumerate(
    ["eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"]
):
    _add(f"i32.{_name}", 0x46 + _i, params=("i32", "i32"), results=("i32",))
_add("i64.eqz", 0x50, params=("i64",), results=("i32",))
for _i, _name in enumerate(
    ["eq", "ne", "lt_s", "lt_u", "gt_s", "gt_u", "le_s", "le_u", "ge_s", "ge_u"]
):
    _add(f"i64.{_name}", 0x51 + _i, params=("i64", "i64"), results=("i32",))
for _i, _name in enumerate(["eq", "ne", "lt", "gt", "le", "ge"]):
    _add(f"f32.{_name}", 0x5B + _i, params=("f32", "f32"), results=("i32",))
for _i, _name in enumerate(["eq", "ne", "lt", "gt", "le", "ge"]):
    _add(f"f64.{_name}", 0x61 + _i, params=("f64", "f64"), results=("i32",))

# -- numeric -------------------------------------------------------------------------
for _i, _name in enumerate(["clz", "ctz", "popcnt"]):
    _add(f"i32.{_name}", 0x67 + _i, params=("i32",), results=("i32",))
for _i, _name in enumerate(
    ["add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
     "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr"]
):
    _add(f"i32.{_name}", 0x6A + _i, params=("i32", "i32"), results=("i32",))
for _i, _name in enumerate(["clz", "ctz", "popcnt"]):
    _add(f"i64.{_name}", 0x79 + _i, params=("i64",), results=("i64",))
for _i, _name in enumerate(
    ["add", "sub", "mul", "div_s", "div_u", "rem_s", "rem_u",
     "and", "or", "xor", "shl", "shr_s", "shr_u", "rotl", "rotr"]
):
    _add(f"i64.{_name}", 0x7C + _i, params=("i64", "i64"), results=("i64",))
for _i, _name in enumerate(
    ["abs", "neg", "ceil", "floor", "trunc", "nearest", "sqrt"]
):
    _add(f"f32.{_name}", 0x8B + _i, params=("f32",), results=("f32",))
for _i, _name in enumerate(["add", "sub", "mul", "div", "min", "max", "copysign"]):
    _add(f"f32.{_name}", 0x92 + _i, params=("f32", "f32"), results=("f32",))
for _i, _name in enumerate(
    ["abs", "neg", "ceil", "floor", "trunc", "nearest", "sqrt"]
):
    _add(f"f64.{_name}", 0x99 + _i, params=("f64",), results=("f64",))
for _i, _name in enumerate(["add", "sub", "mul", "div", "min", "max", "copysign"]):
    _add(f"f64.{_name}", 0xA0 + _i, params=("f64", "f64"), results=("f64",))

# -- conversions ---------------------------------------------------------------------
for _name, _code, _src, _dst in [
    ("i32.wrap_i64", 0xA7, "i64", "i32"),
    ("i32.trunc_f32_s", 0xA8, "f32", "i32"),
    ("i32.trunc_f32_u", 0xA9, "f32", "i32"),
    ("i32.trunc_f64_s", 0xAA, "f64", "i32"),
    ("i32.trunc_f64_u", 0xAB, "f64", "i32"),
    ("i64.extend_i32_s", 0xAC, "i32", "i64"),
    ("i64.extend_i32_u", 0xAD, "i32", "i64"),
    ("i64.trunc_f32_s", 0xAE, "f32", "i64"),
    ("i64.trunc_f32_u", 0xAF, "f32", "i64"),
    ("i64.trunc_f64_s", 0xB0, "f64", "i64"),
    ("i64.trunc_f64_u", 0xB1, "f64", "i64"),
    ("f32.convert_i32_s", 0xB2, "i32", "f32"),
    ("f32.convert_i32_u", 0xB3, "i32", "f32"),
    ("f32.convert_i64_s", 0xB4, "i64", "f32"),
    ("f32.convert_i64_u", 0xB5, "i64", "f32"),
    ("f32.demote_f64", 0xB6, "f64", "f32"),
    ("f64.convert_i32_s", 0xB7, "i32", "f64"),
    ("f64.convert_i32_u", 0xB8, "i32", "f64"),
    ("f64.convert_i64_s", 0xB9, "i64", "f64"),
    ("f64.convert_i64_u", 0xBA, "i64", "f64"),
    ("f64.promote_f32", 0xBB, "f32", "f64"),
    ("i32.reinterpret_f32", 0xBC, "f32", "i32"),
    ("i64.reinterpret_f64", 0xBD, "f64", "i64"),
    ("f32.reinterpret_i32", 0xBE, "i32", "f32"),
    ("f64.reinterpret_i64", 0xBF, "i64", "f64"),
]:
    _add(_name, _code, params=(_src,), results=(_dst,))

CONTROL_OPS = frozenset({"block", "loop", "if"})

# Reverse lookup for the decoder.
BY_CODE: dict[int, Op] = {op.code: op for op in OPS.values()}
