"""Tier-0 stencil execution: copy-and-patch assembly below Liftoff.

The tier the adaptive ladder starts on when compile latency matters
most — a cold query's very first morsel.  Instead of a per-query
compile pass (Liftoff generates and ``compile()``s Python source), this
tier *assembles* runnable code from a library of pre-compiled,
parameterized per-operation stencils by concatenation plus
constant/offset patching (Copy-and-Patch, Xu & Kjolstad; TPDE).

* :mod:`~repro.wasm.stencil.library` — the stencils themselves,
* :mod:`~repro.wasm.stencil.assemble` — flattening + patching,
* :mod:`~repro.wasm.stencil.shape` — code-shape keys (what may share),
* :mod:`~repro.wasm.stencil.cache` — the process-wide shape-keyed LRU
  that lands cross-query code sharing by construction.

Engine integration lives in :mod:`repro.wasm.runtime.engine`: modes
``"stencil"`` (pure tier-0) and ``"adaptive_stencil"`` (the full
stencil -> Liftoff -> TurboFan ladder).
"""

from repro.wasm.stencil.assemble import (
    StencilFunction,
    assemble_function,
    assemble_module,
)
from repro.wasm.stencil.cache import (
    StencilCache,
    get_stencil_cache,
    reset_stencil_cache,
)
from repro.wasm.stencil.shape import function_shape_key, module_shape_key

__all__ = [
    "StencilCache",
    "StencilFunction",
    "assemble_function",
    "assemble_module",
    "function_shape_key",
    "get_stencil_cache",
    "module_shape_key",
    "reset_stencil_cache",
]
