"""The stencil library: pre-compiled, parameterized code fragments.

Every factory below is a *stencil* in the Copy-and-Patch sense: a piece
of executable code compiled **once, at import time** (to CPython
bytecode), with holes for the values that vary per use — immediate
constants, local indices, memory offsets, branch targets.  Assembling a
function (:mod:`repro.wasm.stencil.assemble`) never runs a compiler; it
only *instantiates* stencils by calling these factories with the holes
filled in, which is the Python analogue of memcpy-ing a machine-code
fragment and patching its relocations.

A stencil instance is a closure ``op(st, L, ctx) -> next_ip`` executing
one Wasm instruction over the operand stack ``st`` and locals ``L``:

* ``ctx`` is the per-instance binding tuple (see the ``CTX_*`` indices
  below), created at :meth:`StencilFunction.bind` time — so assembled
  code is **instance-independent** and shareable across queries,
* the returned integer is the next instruction pointer; straight-line
  stencils return their statically patched successor, branch stencils
  return their patched target.

Arithmetic semantics are correct by construction: the factories reuse
the reference interpreter's operator lambdas
(:data:`repro.wasm.runtime.interpreter._BINOPS`/``_UNOPS``), so the
stencil tier cannot diverge from the oracle on any numeric edge case
(NaN, -0.0, wraparound, shift masking, division traps).  Memory access
mirrors the Liftoff fast path byte for byte: mask to 32 bits, index the
page table, ``struct`` (un)pack within the page.
"""

from __future__ import annotations

from struct import pack_into, unpack_from

from repro.errors import Trap
from repro.wasm.runtime import values as V
from repro.wasm.runtime.interpreter import _BINOPS, _UNOPS
from repro.wasm.runtime.pycodegen import LOAD_FMT, STORE_FMT

__all__ = [
    "BINOP_FNS", "UNOP_FNS",
    "CTX_FUNCS", "CTX_GLOBALS", "CTX_PAGES", "CTX_MEMSIZE", "CTX_MEMGROW",
    "CTX_TABLE",
]

# Indices into the per-instance ctx tuple bound at bind() time.
CTX_FUNCS = 0     # instance.funcs — the live function table (tier-up visible)
CTX_GLOBALS = 1   # instance.globals
CTX_PAGES = 2     # instance.memory.pages — the rewired page table
CTX_MEMSIZE = 3   # () -> pages
CTX_MEMGROW = 4   # (delta) -> old pages | -1
CTX_TABLE = 5     # instance.table_lookup (call_indirect resolution)

#: Exact-semantics operator implementations, shared with the oracle.
BINOP_FNS = _BINOPS
UNOP_FNS = _UNOPS


# -- value stencils ----------------------------------------------------------

def local_get(i, nip):
    def op(st, L, ctx):
        st.append(L[i])
        return nip
    return op


def local_set(i, nip):
    def op(st, L, ctx):
        L[i] = st.pop()
        return nip
    return op


def local_tee(i, nip):
    def op(st, L, ctx):
        L[i] = st[-1]
        return nip
    return op


def global_get(i, nip):
    def op(st, L, ctx):
        st.append(ctx[1][i])
        return nip
    return op


def global_set(i, nip):
    def op(st, L, ctx):
        ctx[1][i] = st.pop()
        return nip
    return op


def const(v, nip):
    def op(st, L, ctx):
        st.append(v)
        return nip
    return op


def binop(fn, nip):
    def op(st, L, ctx):
        b = st.pop()
        a = st.pop()
        st.append(fn(a, b))
        return nip
    return op


def unop(fn, nip):
    def op(st, L, ctx):
        st.append(fn(st.pop()))
        return nip
    return op


def drop(nip):
    def op(st, L, ctx):
        st.pop()
        return nip
    return op


def select(nip):
    def op(st, L, ctx):
        c = st.pop()
        b = st.pop()
        a = st.pop()
        st.append(a if c else b)
        return nip
    return op


def unreachable(nip):
    def op(st, L, ctx):
        raise Trap("unreachable")
    return op


# -- memory stencils ---------------------------------------------------------
# Byte-for-byte the Liftoff fast path: the surrounding dispatch loop maps
# (TypeError, IndexError, struct.error) to the out-of-bounds trap.

def load(op_name, offset, nip):
    fmt = LOAD_FMT[op_name]
    if offset:
        def op(st, L, ctx):
            a = (st.pop() + offset) & 4294967295
            e = ctx[2][a >> 16]
            st.append(unpack_from(fmt, e[0], e[1] + (a & 65535))[0])
            return nip
    else:
        def op(st, L, ctx):
            a = st.pop() & 4294967295
            e = ctx[2][a >> 16]
            st.append(unpack_from(fmt, e[0], e[1] + (a & 65535))[0])
            return nip
    return op


def store(op_name, offset, nip):
    fmt, mask = STORE_FMT[op_name]
    if mask is not None:
        def op(st, L, ctx):
            v = st.pop()
            a = (st.pop() + offset) & 4294967295
            e = ctx[2][a >> 16]
            pack_into(fmt, e[0], e[1] + (a & 65535), v & mask)
            return nip
    else:
        def op(st, L, ctx):
            v = st.pop()
            a = (st.pop() + offset) & 4294967295
            e = ctx[2][a >> 16]
            pack_into(fmt, e[0], e[1] + (a & 65535), v)
            return nip
    return op


def memory_size(nip):
    def op(st, L, ctx):
        st.append(ctx[3]())
        return nip
    return op


def memory_grow(nip):
    def op(st, L, ctx):
        st.append(ctx[4](st.pop()))
        return nip
    return op


# -- call stencils -----------------------------------------------------------
# The callee is fetched from ctx[CTX_FUNCS] on every call, so a function
# tiered up mid-query is picked up by stencil call sites immediately —
# the same live-table indirection the compiled tiers use.

def call(func_index, nparams, nresults, nip):
    if nparams == 0:
        if nresults:
            def op(st, L, ctx):
                st.append(ctx[0][func_index]())
                return nip
        else:
            def op(st, L, ctx):
                ctx[0][func_index]()
                return nip
    elif nresults == 1:
        def op(st, L, ctx):
            args = st[-nparams:]
            del st[-nparams:]
            st.append(ctx[0][func_index](*args))
            return nip
    else:
        def op(st, L, ctx):
            args = st[-nparams:]
            del st[-nparams:]
            r = ctx[0][func_index](*args)
            if nresults:
                st.extend(r)
            return nip
    return op


def call_indirect(type_index, nparams, nresults, nip):
    def op(st, L, ctx):
        fi = ctx[5](st.pop(), type_index)
        if nparams:
            args = st[-nparams:]
            del st[-nparams:]
            r = ctx[0][fi](*args)
        else:
            r = ctx[0][fi]()
        if nresults == 1:
            st.append(r)
        elif nresults:
            st.extend(r)
        return nip
    return op


# -- control stencils --------------------------------------------------------
# Branch stencils are where "offset patching" is literal: the assembler
# reserves a slot, and once the target's instruction pointer is known the
# slot is overwritten with a stencil instantiated for that target.  The
# ``h``/``n`` holes encode the static stack discipline (trim height and
# values carried), known exactly from validated structured control flow.

def jump(t):
    def op(st, L, ctx):
        return t
    return op


def br_trim0(h, t):
    def op(st, L, ctx):
        del st[h:]
        return t
    return op


def br_trimn(h, n, t):
    def op(st, L, ctx):
        st[h:] = st[len(st) - n:]
        return t
    return op


def br_if(t, nip):
    def op(st, L, ctx):
        return t if st.pop() else nip
    return op


def br_if_trim0(h, t, nip):
    def op(st, L, ctx):
        if st.pop():
            del st[h:]
            return t
        return nip
    return op


def br_if_trimn(h, n, t, nip):
    def op(st, L, ctx):
        if st.pop():
            st[h:] = st[len(st) - n:]
            return t
        return nip
    return op


def if_false(else_ip, nip):
    def op(st, L, ctx):
        return nip if st.pop() else else_ip
    return op


def br_table(entries):
    """``entries[i]`` is ``(target, trim_height | -1, carried)``; the
    last entry is the default."""
    last = len(entries) - 1

    def op(st, L, ctx):
        i = st.pop()
        t, h, n = entries[i] if 0 <= i < last else entries[last]
        if h >= 0:
            if n:
                st[h:] = st[len(st) - n:]
            else:
                del st[h:]
        return t
    return op


def f32const(v, nip):
    return const(V.f32round(float(v)), nip)
