"""Tier-0 assembly: flatten a function body into a line of stencils.

Assembly is **not** compilation: there is no source generation, no
parsing, no ``compile()``.  One pass walks the validated structured body
and, per instruction, instantiates one pre-compiled stencil from
:mod:`repro.wasm.stencil.library` — concatenation — filling in the
holes (constants, local indices, memory offsets, successor/branch
instruction pointers) — patching.  The output is a
:class:`StencilFunction`: a flat ``list`` of ``op(st, L, ctx) -> ip``
closures plus the tiny prologue facts needed to run it.

Two static facts make branch patching exact:

* validated Wasm has deterministic stack heights at every reachable
  instruction, so each branch stencil can be patched with the precise
  trim height and carried-value count (no runtime height bookkeeping);
* structured control flow cannot jump *into* code that follows an
  unconditional terminator, so the assembler simply skips such dead
  code instead of tracking polymorphic stack states.

Forward branch targets (to the end of an enclosing ``block``/``if``)
are resolved with a patch list per frame: the assembler reserves the
slot, and when the frame closes it overwrites the slot with a stencil
instantiated for the now-known target — relocation, in list form.
``loop`` and function-level targets are known immediately (backward,
and the epilogue sentinel).

Blocks and loops themselves assemble to **zero** stencils: a label is
an instruction pointer, not code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from struct import error as _StructError

from repro.errors import StencilError, Trap
from repro.wasm.module import Function, Module
from repro.wasm.runtime.pycodegen import LOAD_FMT, STORE_FMT
from repro.wasm.stencil import library as L

__all__ = ["StencilFunction", "assemble_function", "assemble_module"]

#: The epilogue "instruction pointer": any ip past the end stops the
#: dispatch loop, so ``return`` patches to this sentinel without needing
#: the (unknown at emit time) final code length.
_END = 1 << 30

_DEFAULTS = {"i32": 0, "i64": 0, "f32": 0.0, "f64": 0.0}


@dataclass
class StencilFunction:
    """One assembled function: instance-independent, cache-shareable.

    ``code`` is the stencil line; ``bind`` attaches it to one instance
    by building the ctx tuple and wrapping the dispatch loop with the
    same trap mapping the Liftoff tier uses, so all four execution
    paths agree on failure classification byte for byte.
    """

    name: str
    tier: str = "stencil"
    code: list = field(default_factory=list, repr=False)
    n_params: int = 0
    local_defaults: tuple = ()
    has_result: bool = False
    #: Source instructions assembled (bench/metrics accounting).
    n_instrs: int = 0

    def bind(self, instance, profile=None):
        """Attach to one instance; returns the callable for ``funcs``.

        With a ``profile`` the dispatch loop counts the stencils it
        executes into ``profile.instructions`` — each stencil covers
        one source instruction, so instrumented runs account tier-0
        work on the same scale as the interpreter and the compiled
        tiers.
        """
        memory = instance.memory
        ctx = (
            instance.funcs,
            instance.globals,
            memory.pages if memory is not None else None,
            (lambda: memory.size_pages) if memory is not None else None,
            memory.grow if memory is not None else None,
            instance.table_lookup,
        )
        code = self.code
        n = len(code)
        n_params = self.n_params
        defaults = self.local_defaults
        has_result = self.has_result
        name = self.name

        if profile is None:
            def fn(*args):
                if len(args) != n_params:
                    raise Trap("call argument count mismatch", name)
                locals_ = list(args)
                if defaults:
                    locals_.extend(defaults)
                st = []
                ip = 0
                try:
                    while ip < n:
                        ip = code[ip](st, locals_, ctx)
                except (TypeError, IndexError, _StructError) as e:
                    raise Trap("out of bounds memory access", repr(e))
                except RecursionError:
                    raise Trap("call stack exhausted")
                return st[-1] if has_result else None
        else:
            def fn(*args):
                if len(args) != n_params:
                    raise Trap("call argument count mismatch", name)
                locals_ = list(args)
                if defaults:
                    locals_.extend(defaults)
                st = []
                ip = 0
                dispatched = 0
                try:
                    while ip < n:
                        dispatched += 1
                        ip = code[ip](st, locals_, ctx)
                except (TypeError, IndexError, _StructError) as e:
                    raise Trap("out of bounds memory access", repr(e))
                except RecursionError:
                    raise Trap("call stack exhausted")
                finally:
                    profile.instructions += dispatched
                return st[-1] if has_result else None

        fn.tier = self.tier
        fn.compiled = self
        return fn


class _Frame:
    """One open control frame during flattening."""

    __slots__ = ("kind", "height", "nresults", "start_ip", "pending")

    def __init__(self, kind, height, nresults, start_ip=-1):
        self.kind = kind            # "func" | "block" | "loop"
        self.height = height        # operand-stack height at entry
        self.nresults = nresults    # values a branch to this label carries
        self.start_ip = start_ip    # loop: the backward target
        self.pending = []           # callbacks(target_ip) run at close


class _Assembler:
    """Assembles one function; cheap enough to be throwaway."""

    def __init__(self, module: Module, func: Function, func_index: int):
        self.module = module
        self.func = func
        self.func_index = func_index
        self.code: list = []
        self.n_instrs = 0

    def assemble(self) -> StencilFunction:
        func = self.func
        func_type = self.module.types[func.type_index]
        frame = _Frame("func", 0, len(func_type.results))
        self._flatten(func.body, [frame], 0)
        # function-frame branches were patched to _END immediately;
        # nothing is pending on it, but keep the invariant explicit
        for callback in frame.pending:  # pragma: no cover - always empty
            callback(_END)
        return StencilFunction(
            name=func.name or f"f{self.func_index}",
            code=self.code,
            n_params=len(func_type.params),
            local_defaults=tuple(_DEFAULTS[t] for t in func.locals_),
            has_result=bool(func_type.results),
            n_instrs=self.n_instrs,
        )

    # -- flattening --------------------------------------------------------

    def _flatten(self, body: list, frames: list, height: int) -> int:
        """Emit stencils for ``body``; returns the exit stack height.

        Stops at the first unconditional terminator (the rest of the
        body is statically dead — structured control flow cannot reach
        it).
        """
        code = self.code
        module = self.module
        for instr in body:
            op = instr[0]
            self.n_instrs += 1
            nip = len(code) + 1

            if op == "local.get":
                code.append(L.local_get(instr[1], nip))
                height += 1
            elif op == "local.set":
                code.append(L.local_set(instr[1], nip))
                height -= 1
            elif op == "local.tee":
                code.append(L.local_tee(instr[1], nip))
            elif op == "i32.const" or op == "i64.const":
                code.append(L.const(int(instr[1]), nip))
                height += 1
            elif op == "f64.const":
                code.append(L.const(float(instr[1]), nip))
                height += 1
            elif op == "f32.const":
                code.append(L.f32const(instr[1], nip))
                height += 1
            elif op in L.BINOP_FNS:
                code.append(L.binop(L.BINOP_FNS[op], nip))
                height -= 1
            elif op in L.UNOP_FNS:
                code.append(L.unop(L.UNOP_FNS[op], nip))
            elif op in LOAD_FMT:
                code.append(L.load(op, instr[2], nip))
            elif op in STORE_FMT:
                code.append(L.store(op, instr[2], nip))
                height -= 2
            elif op == "block":
                nres = len(instr[1])
                frame = _Frame("block", height, nres)
                frames.append(frame)
                self._flatten(instr[2], frames, height)
                frames.pop()
                self._close(frame, len(code))
                height += nres
            elif op == "loop":
                frame = _Frame("loop", height, 0, start_ip=len(code))
                frames.append(frame)
                self._flatten(instr[2], frames, height)
                frames.pop()
                self._close(frame, len(code))
                height += len(instr[1])
            elif op == "if":
                height = self._emit_if(instr, frames, height)
            elif op == "br":
                self._emit_branch(frames[-1 - instr[1]], height, cond=False)
                return height
            elif op == "br_if":
                height -= 1
                self._emit_branch(frames[-1 - instr[1]], height, cond=True)
            elif op == "br_table":
                height -= 1
                self._emit_br_table(instr[1], instr[2], frames, height)
                return height
            elif op == "return":
                code.append(L.jump(_END))
                return height
            elif op == "call":
                ft = module.func_type_of(instr[1])
                code.append(L.call(instr[1], len(ft.params),
                                   len(ft.results), nip))
                height += len(ft.results) - len(ft.params)
            elif op == "call_indirect":
                ft = module.types[instr[1]]
                code.append(L.call_indirect(instr[1], len(ft.params),
                                            len(ft.results), nip))
                height += len(ft.results) - len(ft.params) - 1
            elif op == "drop":
                code.append(L.drop(nip))
                height -= 1
            elif op == "select":
                code.append(L.select(nip))
                height -= 2
            elif op == "unreachable":
                code.append(L.unreachable(nip))
                return height
            elif op == "nop":
                self.n_instrs -= 1  # assembles to nothing
            elif op == "memory.size":
                code.append(L.memory_size(nip))
                height += 1
            elif op == "memory.grow":
                code.append(L.memory_grow(nip))
            elif op == "global.get":
                code.append(L.global_get(instr[1], nip))
                height += 1
            elif op == "global.set":
                code.append(L.global_set(instr[1], nip))
                height -= 1
            else:
                raise StencilError(
                    f"stencil: no stencil for op {op!r} "
                    f"in {self.func.name or self.func_index}"
                )
        return height

    def _emit_if(self, instr, frames: list, height: int) -> int:
        code = self.code
        nres = len(instr[1])
        height -= 1  # the condition
        cond_slot = len(code)
        code.append(None)
        frame = _Frame("block", height, nres)
        frames.append(frame)
        self._flatten(instr[2], frames, height)
        jump_slot = len(code)
        code.append(None)  # jump over the else arm
        else_start = len(code)
        self._flatten(instr[3], frames, height)
        frames.pop()
        end = len(code)
        self._close(frame, end)
        code[cond_slot] = L.if_false(else_start, cond_slot + 1)
        code[jump_slot] = L.jump(end)
        return height + nres

    # -- branches ----------------------------------------------------------

    def _branch_shape(self, frame: _Frame, height: int):
        """(trim_height, carried, needs_trim) for a branch at ``height``.

        The function frame never trims: the epilogue reads the top of
        the stack, so a ``br`` to it is a bare jump to the sentinel.
        """
        if frame.kind == "func":
            return 0, 0, False
        n = 0 if frame.kind == "loop" else frame.nresults
        return frame.height, n, height != frame.height + n

    def _patch(self, frame: _Frame, slot: int, builder) -> None:
        """Patch ``slot`` now (backward/known target) or at frame close."""
        code = self.code
        if frame.kind == "loop":
            code[slot] = builder(frame.start_ip)
        elif frame.kind == "func":
            code[slot] = builder(_END)
        else:
            frame.pending.append(
                lambda target: code.__setitem__(slot, builder(target))
            )

    def _close(self, frame: _Frame, end_ip: int) -> None:
        for callback in frame.pending:
            callback(end_ip)
        frame.pending.clear()

    def _emit_branch(self, frame: _Frame, height: int, cond: bool) -> None:
        slot = len(self.code)
        self.code.append(None)
        nip = slot + 1
        h, n, trim = self._branch_shape(frame, height)
        if cond:
            if not trim:
                builder = (lambda t: L.br_if(t, nip))
            elif n == 0:
                builder = (lambda t: L.br_if_trim0(h, t, nip))
            else:
                builder = (lambda t: L.br_if_trimn(h, n, t, nip))
        else:
            if not trim:
                builder = L.jump
            elif n == 0:
                builder = (lambda t: L.br_trim0(h, t))
            else:
                builder = (lambda t: L.br_trimn(h, n, t))
        self._patch(frame, slot, builder)

    def _emit_br_table(self, targets, default, frames: list,
                       height: int) -> None:
        code = self.code
        slot = len(code)
        code.append(None)
        depths = list(targets) + [default]
        entries: list = [None] * len(depths)
        remaining = [len(depths)]

        def settle(j, action):
            entries[j] = action
            remaining[0] -= 1
            if remaining[0] == 0:
                code[slot] = L.br_table(tuple(entries))

        for j, depth in enumerate(depths):
            frame = frames[-1 - depth]
            h, n, trim = self._branch_shape(frame, height)
            trim_h = h if trim else -1

            def make(target, j=j, trim_h=trim_h, n=n):
                settle(j, (target, trim_h, n))

            if frame.kind == "loop":
                make(frame.start_ip)
            elif frame.kind == "func":
                make(_END)
            else:
                frame.pending.append(make)


def assemble_function(module: Module, func: Function,
                      func_index: int) -> StencilFunction:
    """Assemble one function into runnable stencil code."""
    return _Assembler(module, func, func_index).assemble()


def assemble_module(module: Module) -> tuple[StencilFunction, ...]:
    """Assemble every function of a module (the cacheable artifact)."""
    n_imports = len(module.imports)
    return tuple(
        assemble_function(module, func, n_imports + i)
        for i, func in enumerate(module.functions)
    )
