"""The process-wide, shape-keyed stencil artifact cache.

Stencil artifacts are instance-independent (see
:mod:`repro.wasm.stencil.shape`), so one assembly serves every query
whose module has the same code shape — across fingerprints, plan-cache
entries, database instances, and worker tasks within one process.  This
is the "cross-query Wasm code sharing" the plan cache cannot provide on
its own: the plan cache is keyed by statement fingerprint, this cache
by what the code *is*.

The plan cache consults it indirectly: a plan-cache **miss** still runs
through :meth:`repro.wasm.runtime.engine.Engine._compile_all`, whose
tier-0 path calls :meth:`StencilCache.get` — so a structurally familiar
but textually new statement starts its first morsel on already-
assembled code.

Thread-safe bounded LRU; hit/miss/assembly counts are published as
``stencil_*`` Prometheus counters and mirrored per instance in
:class:`~repro.wasm.runtime.engine.TierStats`.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

from repro.observability.metrics import get_registry
from repro.wasm.module import Module
from repro.wasm.stencil.assemble import StencilFunction, assemble_module
from repro.wasm.stencil.shape import module_shape_key

__all__ = ["StencilCache", "get_stencil_cache", "reset_stencil_cache"]


class StencilCache:
    """Bounded LRU: code-shape key -> assembled module artifacts."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("stencil cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, tuple[StencilFunction, ...]] = \
            OrderedDict()
        self._lock = threading.Lock()
        self._counts = {"hits": 0, "misses": 0, "evictions": 0}
        registry = get_registry()
        self._hits = registry.counter(
            "stencil_cache_hits_total",
            "Module assemblies served from the shape-keyed cache",
        )
        self._misses = registry.counter(
            "stencil_cache_misses_total",
            "Module shapes that had to be assembled",
        )
        self._assembles = registry.counter(
            "stencil_assembles_total",
            "Functions assembled into stencil code",
        )

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def get(self, module: Module) -> tuple[tuple[StencilFunction, ...], bool]:
        """``(artifacts, was_hit)`` for a module, assembling on miss.

        Assembly runs outside the lock (it allocates closures, never
        blocks); a racing assembly of the same shape is harmless — the
        first insert wins and both callers hold equivalent artifacts.
        """
        key = module_shape_key(module)
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
                self._counts["hits"] += 1
                self._hits.inc()
                return entry, True
        artifacts = assemble_module(module)
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                self._counts["hits"] += 1
                self._hits.inc()
                return existing, True
            self._entries[key] = artifacts
            self._counts["misses"] += 1
            self._misses.inc()
            self._assembles.inc(len(artifacts))
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self._counts["evictions"] += 1
            return artifacts, False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    @property
    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                **self._counts,
            }


_cache_lock = threading.Lock()
_cache: StencilCache | None = None


def get_stencil_cache() -> StencilCache:
    """The process-wide cache (created on first use)."""
    global _cache
    with _cache_lock:
        if _cache is None:
            _cache = StencilCache()
        return _cache


def reset_stencil_cache() -> None:
    """Drop the process-wide cache (test isolation)."""
    global _cache
    with _cache_lock:
        _cache = None
