"""Code-shape keys: what makes two modules share stencil artifacts.

An assembled :class:`~repro.wasm.stencil.assemble.StencilFunction` is
instance-independent — every per-instance value (globals, memory pages,
the live function table) is reached through the ctx tuple at bind time.
Its closures therefore depend on exactly:

* the **type section** and the **import count/signatures** (call
  stencils bake callee index and arity),
* each function's ``(type_index, locals, body)`` — opcodes, immediates,
  memory offsets, structure.

That dependency set is the *code shape*.  Everything else a module
carries — data-segment payloads (query constants, strings), global
initializers, export names, element segments, memory minimums, the
optimizer's ``param_ranges``/``value_ranges`` hints — is instance or
optimizer state and deliberately **excluded**, which is what makes the
cache cross-query: two structurally identical queries over the same
tables produce byte-identical code shapes even when their literals (in
the constants region) differ, because the rewired address space lays
columns out deterministically.

This is the issue's "operator shape" (operator kind x column types x
layout) materialized at the module level: the generated code *is* a
function of those three, so hashing the code hashes the shape without
re-deriving it from the plan.  Per-pipeline shape descriptors for
observability are extracted separately by the backend
(:meth:`repro.backend.codegen.QueryCompiler`).
"""

from __future__ import annotations

import hashlib

from repro.wasm.module import Module

__all__ = ["module_shape_key", "function_shape_key"]

#: Bump when assembly output changes incompatibly (cache keys roll over).
_SHAPE_VERSION = b"stencil-shape-v1\0"


def _hash_function(h, func) -> None:
    h.update(repr(func.type_index).encode())
    h.update(repr(func.locals_).encode())
    h.update(repr(func.body).encode())
    h.update(b"\0")


def module_shape_key(module: Module) -> str:
    """A stable digest of the module's code shape (memoized).

    Memoized on the module object: modules are immutable after
    construction (the backend builds, then hands off), and the plan
    cache re-serves the same object, so the digest is paid once per
    compiled module, not once per instantiation.
    """
    cached = getattr(module, "_stencil_shape_key", None)
    if cached is not None:
        return cached
    h = hashlib.sha256(_SHAPE_VERSION)
    h.update(repr([(t.params, t.results) for t in module.types]).encode())
    h.update(repr([imp.type_index for imp in module.imports]).encode())
    h.update(b"\0")
    for func in module.functions:
        _hash_function(h, func)
    key = h.hexdigest()
    try:
        module._stencil_shape_key = key
    except AttributeError:  # pragma: no cover - slotted module variants
        pass
    return key


def function_shape_key(module: Module, func_index: int) -> str:
    """The shape digest of one function (diagnostics, tests)."""
    module_key = module_shape_key(module)
    n_imports = len(module.imports)
    func = module.functions[func_index - n_imports]
    h = hashlib.sha256(module_key.encode())
    _hash_function(h, func)
    return h.hexdigest()
