"""Printing modules in the WebAssembly text format (WAT).

Used for debugging generated queries and in tests that assert on the
shape of generated code.  The output is standard folded-less WAT with
one instruction per line.
"""

from __future__ import annotations

from repro.wasm.module import Module

__all__ = ["module_to_wat", "body_to_wat"]


def _fmt_functype(params, results) -> str:
    text = ""
    if params:
        text += " (param " + " ".join(params) + ")"
    if results:
        text += " (result " + " ".join(results) + ")"
    return text


def body_to_wat(body: list, indent: int = 2, lines: list[str] | None = None) -> list[str]:
    """Render an instruction list as WAT lines."""
    if lines is None:
        lines = []
    pad = "  " * indent
    for instr in body:
        name = instr[0]
        if name in ("block", "loop"):
            results = instr[1]
            head = f"{pad}{name}" + (f" (result {' '.join(results)})" if results else "")
            lines.append(head)
            body_to_wat(instr[2], indent + 1, lines)
            lines.append(f"{pad}end")
        elif name == "if":
            results = instr[1]
            head = f"{pad}if" + (f" (result {' '.join(results)})" if results else "")
            lines.append(head)
            body_to_wat(instr[2], indent + 1, lines)
            if instr[3]:
                lines.append(f"{pad}else")
                body_to_wat(instr[3], indent + 1, lines)
            lines.append(f"{pad}end")
        elif name == "br_table":
            targets = " ".join(str(t) for t in instr[1])
            lines.append(f"{pad}br_table {targets} {instr[2]}")
        elif len(instr) == 1:
            lines.append(f"{pad}{name}")
        elif name.endswith(".load") or name.endswith(".store") or ".load" in name or ".store" in name:
            align, offset = instr[1], instr[2]
            suffix = ""
            if offset:
                suffix += f" offset={offset}"
            if align:
                suffix += f" align={1 << align}"
            lines.append(f"{pad}{name}{suffix}")
        elif name == "call_indirect":
            lines.append(f"{pad}call_indirect (type {instr[1]})")
        else:
            args = " ".join(str(x) for x in instr[1:])
            lines.append(f"{pad}{name} {args}")
    return lines


def module_to_wat(module: Module) -> str:
    """Render a whole module as WAT text."""
    lines: list[str] = ["(module" + (f" ${module.name}" if module.name else "")]

    for i, ft in enumerate(module.types):
        lines.append(
            f"  (type (;{i};) (func{_fmt_functype(ft.params, ft.results)}))"
        )
    for i, imp in enumerate(module.imports):
        ft = module.types[imp.type_index]
        lines.append(
            f'  (import "{imp.module}" "{imp.name}" '
            f"(func (;{i};){_fmt_functype(ft.params, ft.results)}))"
        )
    for i, table in enumerate(module.tables):
        maximum = f" {table.maximum}" if table.maximum is not None else ""
        lines.append(f"  (table (;{i};) {table.minimum}{maximum} funcref)")
    for i, mem in enumerate(module.memories):
        maximum = f" {mem.maximum}" if mem.maximum is not None else ""
        lines.append(f"  (memory (;{i};) {mem.minimum}{maximum})")
    for i, glob in enumerate(module.globals):
        ty = f"(mut {glob.valtype})" if glob.mutable else glob.valtype
        lines.append(
            f"  (global (;{i};) {ty} ({glob.valtype}.const {glob.init}))"
        )

    for i, func in enumerate(module.functions):
        ft = module.types[func.type_index]
        index = len(module.imports) + i
        name = f" ${func.name}" if func.name else ""
        lines.append(f"  (func{name} (;{index};){_fmt_functype(ft.params, ft.results)}")
        if func.locals_:
            lines.append("    (local " + " ".join(func.locals_) + ")")
        body_to_wat(func.body, 2, lines)
        lines.append("  )")

    for export in module.exports:
        lines.append(f'  (export "{export.name}" ({export.kind} {export.index}))')
    for elem in module.elements:
        funcs = " ".join(str(f) for f in elem.func_indices)
        lines.append(f"  (elem (i32.const {elem.offset}) func {funcs})")
    for seg in module.data:
        preview = seg.payload[:32]
        escaped = "".join(
            chr(b) if 32 <= b < 127 and chr(b) not in '"\\' else f"\\{b:02x}"
            for b in preview
        )
        suffix = "..." if len(seg.payload) > 32 else ""
        lines.append(f'  (data (i32.const {seg.offset}) "{escaped}{suffix}")')
    if module.start is not None:
        lines.append(f"  (start {module.start})")
    lines.append(")")
    return "\n".join(lines)
