"""Exact WebAssembly value semantics for i32/i64/f32/f64.

These helpers are shared by the reference interpreter and by the code the
tier compilers generate (they are injected into the compiled namespace).
Integer values are represented as Python ints in signed range
([-2**31, 2**31) for i32, [-2**63, 2**63) for i64); floats as Python
floats, with f32 results rounded to single precision.
"""

from __future__ import annotations

import math
import struct

from repro.errors import Trap

__all__ = [
    "wrap32", "wrap64", "u32", "u64",
    "idiv_s", "irem_s", "idiv_u32", "irem_u32", "idiv_u64", "irem_u64",
    "shl32", "shr_s32", "shr_u32", "rotl32", "rotr32",
    "shl64", "shr_s64", "shr_u64", "rotl64", "rotr64",
    "clz32", "ctz32", "popcnt32", "clz64", "ctz64", "popcnt64",
    "f32round", "fdiv", "fmin", "fmax", "fnearest", "ftrunc_float",
    "trunc_to_i32_s", "trunc_to_i32_u", "trunc_to_i64_s", "trunc_to_i64_u",
    "reinterpret_f2i32", "reinterpret_f2i64",
    "reinterpret_i2f32", "reinterpret_i2f64",
    "trap",
]

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF
_SIGN32 = 0x80000000
_SIGN64 = 0x8000000000000000


def trap(kind: str, message: str = "") -> None:
    raise Trap(kind, message)


def wrap32(x: int) -> int:
    """Wrap to signed i32."""
    return ((x + _SIGN32) & _MASK32) - _SIGN32


def wrap64(x: int) -> int:
    """Wrap to signed i64."""
    return ((x + _SIGN64) & _MASK64) - _SIGN64


def u32(x: int) -> int:
    """The unsigned interpretation of an i32."""
    return x & _MASK32


def u64(x: int) -> int:
    """The unsigned interpretation of an i64."""
    return x & _MASK64


# -- integer division (trunc semantics + traps) ------------------------------

def idiv_s(a: int, b: int, bits: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    q = abs(a) // abs(b)
    if (a < 0) != (b < 0):
        q = -q
    limit = 1 << (bits - 1)
    if q >= limit:  # only INT_MIN / -1
        raise Trap("integer overflow")
    return q


def irem_s(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    r = abs(a) % abs(b)
    return -r if a < 0 else r


def idiv_u32(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return wrap32((a & _MASK32) // (b & _MASK32))


def irem_u32(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return wrap32((a & _MASK32) % (b & _MASK32))


def idiv_u64(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return wrap64((a & _MASK64) // (b & _MASK64))


def irem_u64(a: int, b: int) -> int:
    if b == 0:
        raise Trap("integer divide by zero")
    return wrap64((a & _MASK64) % (b & _MASK64))


# -- shifts and rotates ----------------------------------------------------------

def shl32(a: int, b: int) -> int:
    return wrap32(a << (b & 31))


def shr_s32(a: int, b: int) -> int:
    return a >> (b & 31)


def shr_u32(a: int, b: int) -> int:
    return wrap32((a & _MASK32) >> (b & 31))


def rotl32(a: int, b: int) -> int:
    b &= 31
    ua = a & _MASK32
    return wrap32(((ua << b) | (ua >> (32 - b))) & _MASK32) if b else a


def rotr32(a: int, b: int) -> int:
    b &= 31
    ua = a & _MASK32
    return wrap32(((ua >> b) | (ua << (32 - b))) & _MASK32) if b else a


def shl64(a: int, b: int) -> int:
    return wrap64(a << (b & 63))


def shr_s64(a: int, b: int) -> int:
    return a >> (b & 63)


def shr_u64(a: int, b: int) -> int:
    return wrap64((a & _MASK64) >> (b & 63))


def rotl64(a: int, b: int) -> int:
    b &= 63
    ua = a & _MASK64
    return wrap64(((ua << b) | (ua >> (64 - b))) & _MASK64) if b else a


def rotr64(a: int, b: int) -> int:
    b &= 63
    ua = a & _MASK64
    return wrap64(((ua >> b) | (ua << (64 - b))) & _MASK64) if b else a


# -- bit counting ------------------------------------------------------------------

def clz32(a: int) -> int:
    return 32 - (a & _MASK32).bit_length()


def ctz32(a: int) -> int:
    ua = a & _MASK32
    return 32 if ua == 0 else (ua & -ua).bit_length() - 1


def popcnt32(a: int) -> int:
    return (a & _MASK32).bit_count()


def clz64(a: int) -> int:
    return 64 - (a & _MASK64).bit_length()


def ctz64(a: int) -> int:
    ua = a & _MASK64
    return 64 if ua == 0 else (ua & -ua).bit_length() - 1


def popcnt64(a: int) -> int:
    return (a & _MASK64).bit_count()


# -- floating point ------------------------------------------------------------------

def f32round(x: float) -> float:
    """Round a Python float to f32 precision."""
    return struct.unpack("<f", struct.pack("<f", x))[0]


def fdiv(a: float, b: float) -> float:
    if b == 0.0:
        if a == 0.0 or math.isnan(a):
            return math.nan
        sign = math.copysign(1.0, a) * math.copysign(1.0, b)
        return math.inf * sign
    return a / b


def fmin(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == 0.0 and b == 0.0:  # -0 < +0 in wasm min
        return a if math.copysign(1.0, a) < 0 else b
    return min(a, b)


def fmax(a: float, b: float) -> float:
    if math.isnan(a) or math.isnan(b):
        return math.nan
    if a == 0.0 and b == 0.0:
        return a if math.copysign(1.0, a) > 0 else b
    return max(a, b)


def fnearest(x: float) -> float:
    """Round-half-to-even, keeping the sign of zero."""
    if math.isnan(x) or math.isinf(x):
        return x
    r = float(round(x))  # Python's round is half-to-even
    if r == 0.0:
        return math.copysign(0.0, x)
    return r


def ftrunc_float(x: float) -> float:
    if math.isnan(x) or math.isinf(x):
        return x
    return float(math.trunc(x))


# -- float -> int truncation (trapping) ----------------------------------------------

def _trunc_checked(x: float, lo: int, hi: int) -> int:
    if math.isnan(x):
        raise Trap("invalid conversion to integer")
    if not (lo - 1 < x < hi + 1):
        raise Trap("integer overflow")
    v = math.trunc(x)
    if not (lo <= v <= hi):
        raise Trap("integer overflow")
    return int(v)


def trunc_to_i32_s(x: float) -> int:
    return _trunc_checked(x, -(1 << 31), (1 << 31) - 1)


def trunc_to_i32_u(x: float) -> int:
    return wrap32(_trunc_checked(x, 0, (1 << 32) - 1))


def trunc_to_i64_s(x: float) -> int:
    return _trunc_checked(x, -(1 << 63), (1 << 63) - 1)


def trunc_to_i64_u(x: float) -> int:
    return wrap64(_trunc_checked(x, 0, (1 << 64) - 1))


# -- reinterpret casts ---------------------------------------------------------------

def reinterpret_f2i32(x: float) -> int:
    return wrap32(struct.unpack("<i", struct.pack("<f", x))[0])


def reinterpret_f2i64(x: float) -> int:
    return struct.unpack("<q", struct.pack("<d", x))[0]


def reinterpret_i2f32(x: int) -> float:
    return struct.unpack("<f", struct.pack("<i", wrap32(x)))[0]


def reinterpret_i2f64(x: int) -> float:
    return struct.unpack("<d", struct.pack("<q", x))[0]
