"""Shared infrastructure of the two tier compilers.

Both tiers compile Wasm functions to Python source and ``compile()`` it;
they share the operator translation tables and the execution namespace
(the injected helpers below).  The *Liftoff* tier calls out-of-line
helpers (cheap to emit); the *TurboFan* tier inlines arithmetic and
elides redundant wrapping (cheap to execute).
"""

from __future__ import annotations

import math
import struct

from repro.errors import Trap
from repro.wasm.runtime import values as V

__all__ = [
    "BASE_NAMESPACE",
    "SIMPLE_BINOPS",
    "SIMPLE_UNOPS",
    "LOAD_FMT",
    "STORE_FMT",
    "RING_OPS_32",
    "make_namespace",
]

# struct formats (and widths) per memory instruction
LOAD_FMT = {
    "i32.load": "<i", "i64.load": "<q", "f32.load": "<f", "f64.load": "<d",
    "i32.load8_s": "<b", "i32.load8_u": "<B",
    "i32.load16_s": "<h", "i32.load16_u": "<H",
    "i64.load8_s": "<b", "i64.load8_u": "<B",
    "i64.load16_s": "<h", "i64.load16_u": "<H",
    "i64.load32_s": "<i", "i64.load32_u": "<I",
}
# store: (format, mask applied to the value before packing)
STORE_FMT = {
    "i32.store": ("<I", 0xFFFFFFFF),
    "i64.store": ("<Q", 0xFFFFFFFFFFFFFFFF),
    "f32.store": ("<f", None),
    "f64.store": ("<d", None),
    "i32.store8": ("<B", 0xFF),
    "i32.store16": ("<H", 0xFFFF),
    "i64.store8": ("<B", 0xFF),
    "i64.store16": ("<H", 0xFFFF),
    "i64.store32": ("<I", 0xFFFFFFFF),
}

# Binary operators rendered as Python expressions.  ``{a}``/``{b}`` are the
# operand sources.  These templates produce *signed-correct* results (they
# include wrapping); TurboFan additionally has raw (mod-ring) variants.
SIMPLE_BINOPS = {
    "i32.add": "_w32({a} + {b})",
    "i32.sub": "_w32({a} - {b})",
    "i32.mul": "_w32({a} * {b})",
    "i32.div_s": "_idiv_s32({a}, {b})",
    "i32.div_u": "_idiv_u32({a}, {b})",
    "i32.rem_s": "_irem_s({a}, {b})",
    "i32.rem_u": "_irem_u32({a}, {b})",
    "i32.and": "{a} & {b}",
    "i32.or": "{a} | {b}",
    "i32.xor": "{a} ^ {b}",
    "i32.shl": "_w32({a} << ({b} & 31))",
    "i32.shr_s": "{a} >> ({b} & 31)",
    "i32.shr_u": "_w32(({a} & 4294967295) >> ({b} & 31))",
    "i32.rotl": "_rotl32({a}, {b})",
    "i32.rotr": "_rotr32({a}, {b})",
    "i64.add": "_w64({a} + {b})",
    "i64.sub": "_w64({a} - {b})",
    "i64.mul": "_w64({a} * {b})",
    "i64.div_s": "_idiv_s64({a}, {b})",
    "i64.div_u": "_idiv_u64({a}, {b})",
    "i64.rem_s": "_irem_s({a}, {b})",
    "i64.rem_u": "_irem_u64({a}, {b})",
    "i64.and": "{a} & {b}",
    "i64.or": "{a} | {b}",
    "i64.xor": "{a} ^ {b}",
    "i64.shl": "_w64({a} << ({b} & 63))",
    "i64.shr_s": "{a} >> ({b} & 63)",
    "i64.shr_u": "_w64(({a} & 18446744073709551615) >> ({b} & 63))",
    "i64.rotl": "_rotl64({a}, {b})",
    "i64.rotr": "_rotr64({a}, {b})",
    "f32.add": "_f32r({a} + {b})",
    "f32.sub": "_f32r({a} - {b})",
    "f32.mul": "_f32r({a} * {b})",
    "f32.div": "_f32r(_fdiv({a}, {b}))",
    "f32.min": "_f32r(_fmin({a}, {b}))",
    "f32.max": "_f32r(_fmax({a}, {b}))",
    "f32.copysign": "_f32r(_copysign({a}, {b}))",
    "f64.add": "{a} + {b}",
    "f64.sub": "{a} - {b}",
    "f64.mul": "{a} * {b}",
    "f64.div": "_fdiv({a}, {b})",
    "f64.min": "_fmin({a}, {b})",
    "f64.max": "_fmax({a}, {b})",
    "f64.copysign": "_copysign({a}, {b})",
    # comparisons
    "i32.eq": "({a} == {b}) * 1",
    "i32.ne": "({a} != {b}) * 1",
    "i32.lt_s": "({a} < {b}) * 1",
    "i32.lt_u": "(({a} & 4294967295) < ({b} & 4294967295)) * 1",
    "i32.gt_s": "({a} > {b}) * 1",
    "i32.gt_u": "(({a} & 4294967295) > ({b} & 4294967295)) * 1",
    "i32.le_s": "({a} <= {b}) * 1",
    "i32.le_u": "(({a} & 4294967295) <= ({b} & 4294967295)) * 1",
    "i32.ge_s": "({a} >= {b}) * 1",
    "i32.ge_u": "(({a} & 4294967295) >= ({b} & 4294967295)) * 1",
    "i64.eq": "({a} == {b}) * 1",
    "i64.ne": "({a} != {b}) * 1",
    "i64.lt_s": "({a} < {b}) * 1",
    "i64.lt_u": "(({a} & 18446744073709551615) < ({b} & 18446744073709551615)) * 1",
    "i64.gt_s": "({a} > {b}) * 1",
    "i64.gt_u": "(({a} & 18446744073709551615) > ({b} & 18446744073709551615)) * 1",
    "i64.le_s": "({a} <= {b}) * 1",
    "i64.le_u": "(({a} & 18446744073709551615) <= ({b} & 18446744073709551615)) * 1",
    "i64.ge_s": "({a} >= {b}) * 1",
    "i64.ge_u": "(({a} & 18446744073709551615) >= ({b} & 18446744073709551615)) * 1",
    "f32.eq": "({a} == {b}) * 1",
    "f32.ne": "({a} != {b}) * 1",
    "f32.lt": "({a} < {b}) * 1",
    "f32.gt": "({a} > {b}) * 1",
    "f32.le": "({a} <= {b}) * 1",
    "f32.ge": "({a} >= {b}) * 1",
    "f64.eq": "({a} == {b}) * 1",
    "f64.ne": "({a} != {b}) * 1",
    "f64.lt": "({a} < {b}) * 1",
    "f64.gt": "({a} > {b}) * 1",
    "f64.le": "({a} <= {b}) * 1",
    "f64.ge": "({a} >= {b}) * 1",
}

SIMPLE_UNOPS = {
    "i32.eqz": "({a} == 0) * 1",
    "i64.eqz": "({a} == 0) * 1",
    "i32.clz": "_clz32({a})",
    "i32.ctz": "_ctz32({a})",
    "i32.popcnt": "({a} & 4294967295).bit_count()",
    "i64.clz": "_clz64({a})",
    "i64.ctz": "_ctz64({a})",
    "i64.popcnt": "({a} & 18446744073709551615).bit_count()",
    "f32.abs": "_f32r(abs({a}))",
    "f32.neg": "_f32r(-({a}))",
    "f32.ceil": "_f32r(_fceil({a}))",
    "f32.floor": "_f32r(_ffloor({a}))",
    "f32.trunc": "_f32r(_ftrunc({a}))",
    "f32.nearest": "_f32r(_fnearest({a}))",
    "f32.sqrt": "_f32r(_fsqrt({a}))",
    "f64.abs": "abs({a})",
    "f64.neg": "-({a})",
    "f64.ceil": "_fceil({a})",
    "f64.floor": "_ffloor({a})",
    "f64.trunc": "_ftrunc({a})",
    "f64.nearest": "_fnearest({a})",
    "f64.sqrt": "_fsqrt({a})",
    "i32.wrap_i64": "_w32({a})",
    "i64.extend_i32_s": "{a}",
    "i64.extend_i32_u": "{a} & 4294967295",
    "i32.trunc_f32_s": "_trunc_i32_s({a})",
    "i32.trunc_f32_u": "_trunc_i32_u({a})",
    "i32.trunc_f64_s": "_trunc_i32_s({a})",
    "i32.trunc_f64_u": "_trunc_i32_u({a})",
    "i64.trunc_f32_s": "_trunc_i64_s({a})",
    "i64.trunc_f32_u": "_trunc_i64_u({a})",
    "i64.trunc_f64_s": "_trunc_i64_s({a})",
    "i64.trunc_f64_u": "_trunc_i64_u({a})",
    "f32.convert_i32_s": "_f32r(float({a}))",
    "f32.convert_i32_u": "_f32r(float({a} & 4294967295))",
    "f32.convert_i64_s": "_f32r(float({a}))",
    "f32.convert_i64_u": "_f32r(float({a} & 18446744073709551615))",
    "f64.convert_i32_s": "float({a})",
    "f64.convert_i32_u": "float({a} & 4294967295)",
    "f64.convert_i64_s": "float({a})",
    "f64.convert_i64_u": "float({a} & 18446744073709551615)",
    "f32.demote_f64": "_f32r({a})",
    "f64.promote_f32": "{a}",
    "i32.reinterpret_f32": "_ri_f2i32({a})",
    "i64.reinterpret_f64": "_ri_f2i64({a})",
    "f32.reinterpret_i32": "_ri_i2f32({a})",
    "f64.reinterpret_i64": "_ri_i2f64({a})",
}

# i32 operators that are ring homomorphisms mod 2**32: applying them to
# unwrapped (mod-equal) operands yields mod-equal results, so TurboFan may
# postpone the signed wrap across chains of these.
RING_OPS_32 = frozenset({
    "i32.add", "i32.sub", "i32.mul", "i32.and", "i32.or", "i32.xor", "i32.shl",
})
RING_OPS_64 = frozenset({
    "i64.add", "i64.sub", "i64.mul", "i64.and", "i64.or", "i64.xor", "i64.shl",
})


def _safe_sqrt(x: float) -> float:
    return math.sqrt(x) if x >= 0 else math.nan


def _safe_ceil(x: float) -> float:
    return float(math.ceil(x)) if math.isfinite(x) else x


def _safe_floor(x: float) -> float:
    return float(math.floor(x)) if math.isfinite(x) else x


BASE_NAMESPACE = {
    "_w32": V.wrap32,
    "_w64": V.wrap64,
    "_idiv_s32": lambda a, b: V.idiv_s(a, b, 32),
    "_idiv_s64": lambda a, b: V.idiv_s(a, b, 64),
    "_idiv_u32": V.idiv_u32,
    "_idiv_u64": V.idiv_u64,
    "_irem_s": V.irem_s,
    "_irem_u32": V.irem_u32,
    "_irem_u64": V.irem_u64,
    "_rotl32": V.rotl32,
    "_rotr32": V.rotr32,
    "_rotl64": V.rotl64,
    "_rotr64": V.rotr64,
    "_clz32": V.clz32,
    "_ctz32": V.ctz32,
    "_clz64": V.clz64,
    "_ctz64": V.ctz64,
    "_f32r": V.f32round,
    "_fdiv": V.fdiv,
    "_fmin": V.fmin,
    "_fmax": V.fmax,
    "_fnearest": V.fnearest,
    "_ftrunc": V.ftrunc_float,
    "_fsqrt": _safe_sqrt,
    "_fceil": _safe_ceil,
    "_ffloor": _safe_floor,
    "_copysign": math.copysign,
    "_trunc_i32_s": V.trunc_to_i32_s,
    "_trunc_i32_u": V.trunc_to_i32_u,
    "_trunc_i64_s": V.trunc_to_i64_s,
    "_trunc_i64_u": V.trunc_to_i64_u,
    "_ri_f2i32": V.reinterpret_f2i32,
    "_ri_f2i64": V.reinterpret_f2i64,
    "_ri_i2f32": V.reinterpret_i2f32,
    "_ri_i2f64": V.reinterpret_i2f64,
    "_unpack_from": struct.unpack_from,
    "_pack_into": struct.pack_into,
    "_Trap": Trap,
}


def make_namespace(instance, profile=None) -> dict:
    """The globals dict compiled code executes in, bound to one instance."""
    ns = dict(BASE_NAMESPACE)
    ns["_funcs"] = instance.funcs
    ns["_G"] = instance.globals
    ns["_pages"] = instance.memory.pages if instance.memory is not None else None
    ns["_memsize"] = (
        (lambda: instance.memory.size_pages) if instance.memory else None
    )
    ns["_memgrow"] = (
        (lambda d: instance.memory.grow(d)) if instance.memory else None
    )
    ns["_tbl"] = instance.table_lookup

    def _trap(kind, message=""):
        raise Trap(kind, message)

    ns["_trap"] = _trap
    if profile is not None:
        ns["_P"] = profile
        ns["_Pb"] = profile.branch
        ns["_Pm"] = profile.memory_access
    return ns
