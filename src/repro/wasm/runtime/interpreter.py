"""Reference interpreter for the tuple-IR.

Executes validated functions directly over the structured instruction
representation.  It is the semantic oracle the tier compilers are tested
against (differential testing in ``tests/wasm``), and the slowest but
simplest execution path of the engine.

Branches are implemented by signal values: executing a body returns
``None`` for fall-through, a non-negative ``int`` for a branch that still
has to unwind that many more levels, or :data:`_RETURN` for ``return``.
"""

from __future__ import annotations

import math

from repro.errors import Trap
from repro.wasm.module import Function, Module
from repro.wasm.runtime import values as V

__all__ = ["Interpreter"]

_RETURN = "return"

_DEFAULTS = {"i32": 0, "i64": 0, "f32": 0.0, "f64": 0.0}

# Simple binary operators: op -> (lambda, needs-f32-rounding)
_BINOPS = {
    "i32.add": lambda a, b: V.wrap32(a + b),
    "i32.sub": lambda a, b: V.wrap32(a - b),
    "i32.mul": lambda a, b: V.wrap32(a * b),
    "i32.div_s": lambda a, b: V.idiv_s(a, b, 32),
    "i32.div_u": V.idiv_u32,
    "i32.rem_s": V.irem_s,
    "i32.rem_u": V.irem_u32,
    "i32.and": lambda a, b: V.wrap32(a & b),
    "i32.or": lambda a, b: V.wrap32(a | b),
    "i32.xor": lambda a, b: V.wrap32(a ^ b),
    "i32.shl": V.shl32,
    "i32.shr_s": V.shr_s32,
    "i32.shr_u": V.shr_u32,
    "i32.rotl": V.rotl32,
    "i32.rotr": V.rotr32,
    "i64.add": lambda a, b: V.wrap64(a + b),
    "i64.sub": lambda a, b: V.wrap64(a - b),
    "i64.mul": lambda a, b: V.wrap64(a * b),
    "i64.div_s": lambda a, b: V.idiv_s(a, b, 64),
    "i64.div_u": V.idiv_u64,
    "i64.rem_s": V.irem_s,
    "i64.rem_u": V.irem_u64,
    "i64.and": lambda a, b: V.wrap64(a & b),
    "i64.or": lambda a, b: V.wrap64(a | b),
    "i64.xor": lambda a, b: V.wrap64(a ^ b),
    "i64.shl": V.shl64,
    "i64.shr_s": V.shr_s64,
    "i64.shr_u": V.shr_u64,
    "i64.rotl": V.rotl64,
    "i64.rotr": V.rotr64,
    "f32.add": lambda a, b: V.f32round(a + b),
    "f32.sub": lambda a, b: V.f32round(a - b),
    "f32.mul": lambda a, b: V.f32round(a * b),
    "f32.div": lambda a, b: V.f32round(V.fdiv(a, b)),
    "f32.min": lambda a, b: V.f32round(V.fmin(a, b)),
    "f32.max": lambda a, b: V.f32round(V.fmax(a, b)),
    "f32.copysign": lambda a, b: V.f32round(math.copysign(a, b)),
    "f64.add": lambda a, b: a + b,
    "f64.sub": lambda a, b: a - b,
    "f64.mul": lambda a, b: a * b,
    "f64.div": V.fdiv,
    "f64.min": V.fmin,
    "f64.max": V.fmax,
    "f64.copysign": lambda a, b: math.copysign(a, b),
    # comparisons (return i32 0/1)
    "i32.eq": lambda a, b: int(a == b),
    "i32.ne": lambda a, b: int(a != b),
    "i32.lt_s": lambda a, b: int(a < b),
    "i32.lt_u": lambda a, b: int(V.u32(a) < V.u32(b)),
    "i32.gt_s": lambda a, b: int(a > b),
    "i32.gt_u": lambda a, b: int(V.u32(a) > V.u32(b)),
    "i32.le_s": lambda a, b: int(a <= b),
    "i32.le_u": lambda a, b: int(V.u32(a) <= V.u32(b)),
    "i32.ge_s": lambda a, b: int(a >= b),
    "i32.ge_u": lambda a, b: int(V.u32(a) >= V.u32(b)),
    "i64.eq": lambda a, b: int(a == b),
    "i64.ne": lambda a, b: int(a != b),
    "i64.lt_s": lambda a, b: int(a < b),
    "i64.lt_u": lambda a, b: int(V.u64(a) < V.u64(b)),
    "i64.gt_s": lambda a, b: int(a > b),
    "i64.gt_u": lambda a, b: int(V.u64(a) > V.u64(b)),
    "i64.le_s": lambda a, b: int(a <= b),
    "i64.le_u": lambda a, b: int(V.u64(a) <= V.u64(b)),
    "i64.ge_s": lambda a, b: int(a >= b),
    "i64.ge_u": lambda a, b: int(V.u64(a) >= V.u64(b)),
    "f32.eq": lambda a, b: int(a == b),
    "f32.ne": lambda a, b: int(a != b),
    "f32.lt": lambda a, b: int(a < b),
    "f32.gt": lambda a, b: int(a > b),
    "f32.le": lambda a, b: int(a <= b),
    "f32.ge": lambda a, b: int(a >= b),
    "f64.eq": lambda a, b: int(a == b),
    "f64.ne": lambda a, b: int(a != b),
    "f64.lt": lambda a, b: int(a < b),
    "f64.gt": lambda a, b: int(a > b),
    "f64.le": lambda a, b: int(a <= b),
    "f64.ge": lambda a, b: int(a >= b),
}

_UNOPS = {
    "i32.eqz": lambda a: int(a == 0),
    "i64.eqz": lambda a: int(a == 0),
    "i32.clz": V.clz32,
    "i32.ctz": V.ctz32,
    "i32.popcnt": V.popcnt32,
    "i64.clz": V.clz64,
    "i64.ctz": V.ctz64,
    "i64.popcnt": V.popcnt64,
    "f32.abs": lambda a: V.f32round(abs(a)),
    "f32.neg": lambda a: V.f32round(-a),
    "f32.ceil": lambda a: V.f32round(math.ceil(a)) if math.isfinite(a) else a,
    "f32.floor": lambda a: V.f32round(math.floor(a)) if math.isfinite(a) else a,
    "f32.trunc": lambda a: V.f32round(V.ftrunc_float(a)),
    "f32.nearest": lambda a: V.f32round(V.fnearest(a)),
    "f32.sqrt": lambda a: V.f32round(math.sqrt(a)) if a >= 0 else math.nan,
    "f64.abs": abs,
    "f64.neg": lambda a: -a,
    "f64.ceil": lambda a: float(math.ceil(a)) if math.isfinite(a) else a,
    "f64.floor": lambda a: float(math.floor(a)) if math.isfinite(a) else a,
    "f64.trunc": V.ftrunc_float,
    "f64.nearest": V.fnearest,
    "f64.sqrt": lambda a: math.sqrt(a) if a >= 0 else math.nan,
    # conversions
    "i32.wrap_i64": V.wrap32,
    "i64.extend_i32_s": lambda a: a,
    "i64.extend_i32_u": V.u32,
    "i32.trunc_f32_s": V.trunc_to_i32_s,
    "i32.trunc_f32_u": V.trunc_to_i32_u,
    "i32.trunc_f64_s": V.trunc_to_i32_s,
    "i32.trunc_f64_u": V.trunc_to_i32_u,
    "i64.trunc_f32_s": V.trunc_to_i64_s,
    "i64.trunc_f32_u": V.trunc_to_i64_u,
    "i64.trunc_f64_s": V.trunc_to_i64_s,
    "i64.trunc_f64_u": V.trunc_to_i64_u,
    "f32.convert_i32_s": lambda a: V.f32round(float(a)),
    "f32.convert_i32_u": lambda a: V.f32round(float(V.u32(a))),
    "f32.convert_i64_s": lambda a: V.f32round(float(a)),
    "f32.convert_i64_u": lambda a: V.f32round(float(V.u64(a))),
    "f64.convert_i32_s": float,
    "f64.convert_i32_u": lambda a: float(V.u32(a)),
    "f64.convert_i64_s": float,
    "f64.convert_i64_u": lambda a: float(V.u64(a)),
    "f32.demote_f64": V.f32round,
    "f64.promote_f32": lambda a: a,
    "i32.reinterpret_f32": V.reinterpret_f2i32,
    "i64.reinterpret_f64": V.reinterpret_f2i64,
    "f32.reinterpret_i32": V.reinterpret_i2f32,
    "f64.reinterpret_i64": V.reinterpret_i2f64,
}


class Interpreter:
    """Interprets functions of one instance.

    The instance provides ``module``, ``memory``, ``globals`` (mutable
    list), ``funcs`` (current callable per function index), and ``table``
    (list of function indices for ``call_indirect``).
    """

    def __init__(self, instance):
        self.instance = instance
        self.call_depth = 0
        # kept well below Python's own recursion limit: each Wasm call
        # and block level consumes Python frames in this interpreter
        self.max_call_depth = 200

    def make_callable(self, func: Function):
        """A Python callable executing ``func`` by interpretation."""
        def interpreted(*args):
            return self.call_function(func, list(args))
        interpreted.tier = "interp"
        interpreted.wasm_function = func
        return interpreted

    def call_function(self, func: Function, args: list):
        module: Module = self.instance.module
        func_type = module.types[func.type_index]
        if len(args) != len(func_type.params):
            raise Trap("call argument count mismatch", func.name or "?")
        locals_ = list(args) + [_DEFAULTS[t] for t in func.locals_]
        stack: list = []
        self.call_depth += 1
        if self.call_depth > self.max_call_depth:
            self.call_depth -= 1
            raise Trap("call stack exhausted")
        try:
            signal = self._exec(func.body, locals_, stack, 0)
        except RecursionError:
            raise Trap("call stack exhausted") from None
        finally:
            self.call_depth -= 1
        if signal is not None and signal is not _RETURN and signal != 0:
            raise Trap("branch escaped function", func.name or "?")
        results = func_type.results
        if not results:
            return None
        if len(stack) < len(results):
            raise Trap("function did not produce its results", func.name or "?")
        if len(results) == 1:
            return stack[-1]
        return tuple(stack[-len(results):])

    # The `depth` argument tracks the current block nesting (labels).
    def _exec(self, body: list, locals_: list, stack: list, depth: int):
        instance = self.instance
        memory = instance.memory
        profile = instance.profile
        for instr in body:
            if profile is not None:
                profile.instructions += 1
            op = instr[0]

            # -- hottest ops first ------------------------------------------
            if op == "local.get":
                stack.append(locals_[instr[1]])
                continue
            if op == "local.set":
                locals_[instr[1]] = stack.pop()
                continue
            if op == "local.tee":
                locals_[instr[1]] = stack[-1]
                continue
            if op == "i32.const" or op == "i64.const" or op == "f64.const":
                stack.append(instr[1])
                continue
            if op == "f32.const":
                stack.append(V.f32round(instr[1]))
                continue

            fn = _BINOPS.get(op)
            if fn is not None:
                b = stack.pop()
                a = stack.pop()
                stack.append(fn(a, b))
                continue
            fn = _UNOPS.get(op)
            if fn is not None:
                stack.append(fn(stack.pop()))
                continue

            # -- control ------------------------------------------------------
            if op == "block":
                height = len(stack)
                signal = self._exec(instr[2], locals_, stack, depth + 1)
                if signal is None:
                    continue
                if signal is _RETURN:
                    return _RETURN
                if signal == 0:
                    # branch to this block: jump past its end, keep results
                    results = instr[1]
                    kept = stack[len(stack) - len(results):] if results else []
                    del stack[height:]
                    stack.extend(kept)
                    continue
                return signal - 1
            if op == "loop":
                height = len(stack)
                while True:
                    signal = self._exec(instr[2], locals_, stack, depth + 1)
                    if signal is None:
                        break
                    if signal is _RETURN:
                        return _RETURN
                    if signal == 0:
                        del stack[height:]  # branch to loop: restart it
                        continue
                    return signal - 1
                continue
            if op == "if":
                cond = stack.pop()
                height = len(stack)
                chosen = instr[2] if cond else instr[3]
                signal = self._exec(chosen, locals_, stack, depth + 1)
                if signal is None:
                    continue
                if signal is _RETURN:
                    return _RETURN
                if signal == 0:
                    results = instr[1]
                    kept = stack[len(stack) - len(results):] if results else []
                    del stack[height:]
                    stack.extend(kept)
                    continue
                return signal - 1
            if op == "br":
                return instr[1]
            if op == "br_if":
                if stack.pop():
                    if profile is not None:
                        profile.branch(id(instr), True)
                    return instr[1]
                if profile is not None:
                    profile.branch(id(instr), False)
                continue
            if op == "br_table":
                index = stack.pop()
                targets = instr[1]
                if 0 <= index < len(targets):
                    return targets[index]
                return instr[2]
            if op == "return":
                return _RETURN
            if op == "call":
                stack_args = self._pop_call_args(stack, instr[1])
                result = instance.funcs[instr[1]](*stack_args)
                self._push_call_result(stack, instr[1], result)
                continue
            if op == "call_indirect":
                elem_index = stack.pop()
                func_index = instance.table_lookup(elem_index, instr[1])
                stack_args = self._pop_call_args(stack, func_index)
                result = instance.funcs[func_index](*stack_args)
                self._push_call_result(stack, func_index, result)
                continue
            if op == "unreachable":
                raise Trap("unreachable")
            if op == "nop":
                continue
            if op == "drop":
                stack.pop()
                continue
            if op == "select":
                cond = stack.pop()
                b = stack.pop()
                a = stack.pop()
                stack.append(a if cond else b)
                continue

            # -- globals ---------------------------------------------------------
            if op == "global.get":
                stack.append(instance.globals[instr[1]])
                continue
            if op == "global.set":
                instance.globals[instr[1]] = stack.pop()
                continue

            # -- memory ------------------------------------------------------------
            if ".load" in op:
                addr = stack.pop() + instr[2]
                stack.append(memory.load(op, addr))
                if profile is not None:
                    profile.memory_access(id(instr), addr)
                continue
            if ".store" in op:
                value = stack.pop()
                addr = stack.pop() + instr[2]
                memory.store(op, addr, value)
                if profile is not None:
                    profile.memory_access(id(instr), addr)
                continue
            if op == "memory.size":
                stack.append(memory.size_pages)
                continue
            if op == "memory.grow":
                stack.append(memory.grow(stack.pop()))
                continue

            raise Trap("unimplemented instruction", op)  # pragma: no cover
        return None

    def _pop_call_args(self, stack: list, func_index: int) -> list:
        func_type = self.instance.module.func_type_of(func_index)
        n = len(func_type.params)
        if n == 0:
            return []
        args = stack[-n:]
        del stack[-n:]
        return args

    def _push_call_result(self, stack: list, func_index: int, result) -> None:
        func_type = self.instance.module.func_type_of(func_index)
        if len(func_type.results) == 1:
            stack.append(result)
        elif len(func_type.results) > 1:
            stack.extend(result)
