"""The TurboFan tier: optimizing compilation.

Mirrors V8's TurboFan in role: it spends more time compiling and produces
considerably faster code than Liftoff.  The pipeline:

1. **Tree recovery** — the stack machine is symbolically executed; pure
   operator chains become nested Python expressions instead of list
   push/pop traffic.  Loads, stores, and calls materialize immediately
   (preserving effect order); pure values are spilled to temporaries only
   when a conflicting ``local.set`` or a control-flow boundary requires it.
2. **Constant folding & algebraic simplification** — performed during
   tree building, using the reference interpreter's operator semantics,
   so folding is correct by construction (``x+0``, ``x*1``, ``x*0``,
   comparisons of constants, ...).
3. **Wrap elision (mod-ring reasoning)** — ``add/sub/mul/and/or/xor/shl``
   are ring homomorphisms mod 2**N, so the signed wrap can be postponed
   across chains of them and dropped entirely at consumers that mask
   anyway (memory addresses, stores, unsigned comparisons).
4. **Branch lowering** — a ``br`` whose target is the function becomes
   ``return``; depth-0 branches become plain ``break``/``continue``;
   only genuinely multi-level branches pay for the pending-depth cascade.
5. **Dead code elimination** — unused pure temporaries are deleted
   (fixpoint over the emitted statements).

The emitted source is compiled with ``compile()``; binding happens per
instance, exactly like the Liftoff tier.
"""

from __future__ import annotations

import re

from repro.errors import CompilationError, Trap
from repro.observability.metrics import get_registry
from repro.wasm.module import Function, Module
from repro.wasm.runtime import values as V
from repro.wasm.runtime.interpreter import _BINOPS as _FOLD_BIN
from repro.wasm.runtime.interpreter import _UNOPS as _FOLD_UN
from repro.wasm.runtime.liftoff import CompiledFunction, _Emitter
from repro.wasm.runtime.pycodegen import (
    LOAD_FMT,
    RING_OPS_32,
    SIMPLE_BINOPS,
    SIMPLE_UNOPS,
    STORE_FMT,
)
from repro.wasm.runtime.pycodegen import RING_OPS_64

__all__ = ["TurboFanCompiler"]

_NO_CONST = object()
_MAX_EXPR_LEN = 240  # spill huge expressions to keep lines/evaluation sane

# Operators that may trap at runtime: their evaluation is an *effect* and
# must not be delayed, reordered past control flow, or dead-code-eliminated.
_TRAPPING_OPS = frozenset({
    "i32.div_s", "i32.div_u", "i32.rem_s", "i32.rem_u",
    "i64.div_s", "i64.div_u", "i64.rem_s", "i64.rem_u",
    "i32.trunc_f32_s", "i32.trunc_f32_u", "i32.trunc_f64_s", "i32.trunc_f64_u",
    "i64.trunc_f32_s", "i64.trunc_f32_u", "i64.trunc_f64_s", "i64.trunc_f64_u",
})

_RING_PYOP = {
    "i32.add": "+", "i32.sub": "-", "i32.mul": "*",
    "i32.and": "&", "i32.or": "|", "i32.xor": "^",
    "i64.add": "+", "i64.sub": "-", "i64.mul": "*",
    "i64.and": "&", "i64.or": "|", "i64.xor": "^",
}
_CMP_PYOP = {
    "eq": "==", "ne": "!=", "lt": "<", "gt": ">", "le": "<=", "ge": ">=",
    "lt_s": "<", "gt_s": ">", "le_s": "<=", "ge_s": ">=",
    "lt_u": "<", "gt_u": ">", "le_u": "<=", "ge_u": ">=",
}


class _Val:
    """One symbolic stack entry: a pure Python expression."""

    __slots__ = ("src", "raw", "ty", "const", "locals_read", "bool_src")

    def __init__(self, src, ty, raw=None, const=_NO_CONST,
                 locals_read=frozenset(), bool_src=None):
        self.src = src
        self.raw = raw if raw is not None else src
        self.ty = ty
        self.const = const
        self.locals_read = locals_read
        self.bool_src = bool_src

    @property
    def is_const(self) -> bool:
        return self.const is not _NO_CONST

    def as_bool(self) -> str:
        return self.bool_src if self.bool_src is not None else self.src


def _const_val(value, ty: str) -> _Val:
    if isinstance(value, float):
        if value != value:  # NaN has no literal syntax
            return _Val("float('nan')", ty, const=value)
        if value == float("inf"):
            return _Val("float('inf')", ty, const=value)
        if value == float("-inf"):
            return _Val("float('-inf')", ty, const=value)
    src = repr(value)
    if value is not None and isinstance(value, (int, float)) and value < 0:
        src = f"({src})"  # negative literals must bind tighter than ops
    return _Val(src, ty, const=value)


def _wrap_src(raw: str, bits: int) -> str:
    half = 1 << (bits - 1)
    mask = (1 << bits) - 1
    return f"(({raw} + {half} & {mask}) - {half})"


class _Scope:
    """One control frame during compilation."""

    __slots__ = ("kind", "result_temps", "assigned_locals")

    def __init__(self, kind: str, result_temps: list[str],
                 assigned_locals: frozenset):
        self.kind = kind  # "func" | "block" | "loop" | "if"
        self.result_temps = result_temps
        self.assigned_locals = assigned_locals


def _assigned_locals(body: list, acc: set | None = None) -> frozenset:
    """All locals written anywhere in ``body`` (recursively)."""
    if acc is None:
        acc = set()
    for instr in body:
        op = instr[0]
        if op == "local.set" or op == "local.tee":
            acc.add(instr[1])
        elif op == "block" or op == "loop":
            _assigned_locals(instr[2], acc)
        elif op == "if":
            _assigned_locals(instr[2], acc)
            _assigned_locals(instr[3], acc)
    return frozenset(acc)


class TurboFanCompiler:
    """Optimizing compiler for functions of one module."""

    tier_name = "turbofan"

    def __init__(self, module: Module, elide_bounds_checks: bool = True):
        self.module = module
        self.elide_bounds_checks = elide_bounds_checks

    def _analyze_bounds(self, func: Function):
        """Interval analysis of ``func``: instruction offset -> access fact.

        Returns ``(offsets, facts)``; both empty when elision is off, the
        module has no memory to bound against, or the analysis gives up
        (the elision is an optimization — failure must never fail the
        compile, the masked form is always correct).
        """
        if not self.elide_bounds_checks or not self.module.memories:
            return {}, {}
        if self.module.memories[0].minimum < 1:
            return {}, {}
        try:
            from repro.wasm.analysis.cfg import assign_offsets, build_cfg
            from repro.wasm.analysis.ranges import analyze_ranges

            offsets = assign_offsets(func.body)
            cfg = build_cfg(self.module, func, offsets=offsets)
            result = analyze_ranges(self.module, func, cfg=cfg)
        except Exception:
            return {}, {}
        return offsets, result.facts

    # ------------------------------------------------------------------ api --

    def compile(self, func: Function, func_index: int,
                instrumented: bool = False) -> CompiledFunction:
        func_type = self.module.types[func.type_index]
        name = func.name or f"f{func_index}"
        entry = f"wf{func_index}"
        self._em = _Emitter()
        self._instrumented = instrumented
        self._pending = 0
        self._site = 0
        self._fname = name
        self._nresults = len(func_type.results)
        self._pure_temps: set[str] = set()
        self._offsets, self._facts = self._analyze_bounds(func)
        self._cur_off: int | None = None
        self._elided = 0
        em = self._em

        params = ", ".join(f"L{i}" for i in range(len(func_type.params)))
        em.emit(f"def {entry}({params}):")
        em.indent += 1
        for i, ty in enumerate(func.locals_):
            index = len(func_type.params) + i
            em.emit(f"L{index} = {'0.0' if ty.startswith('f') else '0'}")
        em.emit("_br = -1")
        em.emit("try:")
        em.indent += 1
        body_start = len(em.lines)

        stack: list[_Val] = []
        scopes = [_Scope("func", [], _assigned_locals(func.body))]
        fell_through = self._compile_body(func.body, stack, scopes)
        if fell_through:
            self._flush()
            self._emit_return(stack)
        if len(em.lines) == body_start:
            em.emit("pass")
        em.indent -= 1
        em.emit("except (TypeError, IndexError, _StructError) as _e:")
        em.indent += 1
        em.emit("raise _Trap('out of bounds memory access', repr(_e))")
        em.indent -= 1
        em.emit("except RecursionError:")
        em.indent += 1
        em.emit("raise _Trap('call stack exhausted')")
        em.indent -= 1

        lines = self._common_subexpressions(em.lines)
        lines = self._eliminate_dead_code(lines)
        source = (
            "import struct as _struct\n_StructError = _struct.error\n"
            + "\n".join(lines) + "\n"
        )
        self._verify(source, name)
        try:
            code = compile(source, f"<turbofan:{name}>", "exec")
        except SyntaxError as exc:  # pragma: no cover - compiler bug guard
            raise CompilationError(
                f"turbofan generated bad code for {name}: {exc}\n{source}"
            )
        registry = get_registry()
        registry.counter(
            "wasm_functions_compiled_total",
            "Wasm functions compiled, by tier",
        ).inc(tier=self.tier_name)
        if self._elided:
            registry.counter(
                "wasm_bounds_checks_elided_total",
                "Per-access bounds checks proved away by TurboFan",
            ).inc(self._elided)
        return CompiledFunction(name, self.tier_name, source, entry, code,
                                bounds_checks_elided=self._elided)

    # -------------------------------------------------------- emission helpers --

    def _emit(self, text: str) -> None:
        self._em.emit(text)

    def _fresh(self, prefix: str = "t") -> str:
        return self._em.fresh(prefix)

    def _count(self, n: int = 1) -> None:
        if self._instrumented:
            self._pending += n

    def _flush(self) -> None:
        if self._instrumented and self._pending:
            self._emit(f"_P.instructions += {self._pending}")
            self._pending = 0

    def _new_site(self, kind: str) -> str:
        self._site += 1
        return f"{self._fname}:{kind}{self._site}"

    def _materialize(self, val: _Val) -> _Val:
        """Assign a pure value to a temp; returns the temp as a value."""
        if val.is_const or re.fullmatch(r"[Lt]\d+", val.src):
            return val  # already trivially cheap
        temp = self._fresh()
        self._emit(f"{temp} = {val.src}")
        self._pure_temps.add(temp)
        return _Val(temp, val.ty, const=val.const)

    def _materialize_effect(self, val: _Val) -> _Val:
        """Evaluate a possibly-trapping value now; the temp is protected
        from dead code elimination."""
        temp = self._fresh()
        self._emit(f"{temp} = {val.src}")
        return _Val(temp, val.ty)

    def _spill(self, stack: list[_Val], predicate) -> None:
        for i, val in enumerate(stack):
            if predicate(val):
                stack[i] = self._materialize(val)

    def _spill_all(self, stack: list[_Val]) -> None:
        self._spill(stack, lambda v: True)

    def _push(self, stack: list[_Val], val: _Val) -> None:
        if len(val.src) > _MAX_EXPR_LEN and not val.is_const:
            val = self._materialize(val)
        stack.append(val)

    def _emit_return(self, stack: list[_Val]) -> None:
        if self._nresults:
            self._emit(f"return {stack[-1].src}")
        else:
            self._emit("return None")

    # --------------------------------------------------------------- operators --

    def _binop(self, op: str, a: _Val, b: _Val) -> _Val:
        ty = op.split(".", 1)[0]
        result_ty = "i32" if "." in op and op.split(".")[1] in (
            "eq", "ne", "lt", "gt", "le", "ge", "lt_s", "lt_u", "gt_s", "gt_u",
            "le_s", "le_u", "ge_s", "ge_u",
        ) else ty

        # constant folding (using the interpreter's exact semantics)
        if a.is_const and b.is_const:
            try:
                return _const_val(_FOLD_BIN[op](a.const, b.const), result_ty)
            except Trap:
                pass  # fold would trap: keep the runtime expression

        reads = a.locals_read | b.locals_read

        # algebraic identities on pure values — integers only: on floats
        # x+0.0 loses -0.0, and x*0.0 loses NaN/inf/sign (IEEE 754), so
        # like TurboFan we never fold them away
        kind = op.split(".", 1)[1] if "." in op else op
        if ty in ("i32", "i64"):
            if kind == "add" and b.is_const and b.const == 0:
                return a
            if kind == "add" and a.is_const and a.const == 0:
                return b
            if kind == "sub" and b.is_const and b.const == 0:
                return a
            if kind == "mul" and b.is_const and b.const == 1:
                return a
            if kind == "mul" and a.is_const and a.const == 1:
                return b
            if kind == "mul" and (
                (a.is_const and a.const == 0) or (b.is_const and b.const == 0)
            ):
                return _const_val(0, result_ty)

        # mod-ring ops: build the raw (unwrapped) form, wrap lazily
        if op in RING_OPS_32 or op in RING_OPS_64:
            bits = 32 if op in RING_OPS_32 else 64
            if kind == "shl":
                shift = (
                    str(b.const & (bits - 1)) if b.is_const
                    else f"({b.src} & {bits - 1})"
                )
                raw = f"({a.raw} << {shift})"
            else:
                raw = f"({a.raw} {_RING_PYOP[op]} {b.raw})"
            if kind in ("and", "or", "xor") and a.raw == a.src and b.raw == b.src:
                # bitwise ops on already-signed operands stay in range
                return _Val(raw, ty, raw=raw, locals_read=reads)
            return _Val(_wrap_src(raw, bits), ty, raw=raw, locals_read=reads)

        # comparisons get a bool variant for direct use in conditions
        if kind in _CMP_PYOP:
            py = _CMP_PYOP[kind]
            if kind.endswith("_u"):
                mask = 0xFFFFFFFF if ty == "i32" else 0xFFFFFFFFFFFFFFFF
                lhs, rhs = f"({a.raw} & {mask})", f"({b.raw} & {mask})"
            else:
                lhs, rhs = a.src, b.src
            cond = f"{lhs} {py} {rhs}"
            return _Val(f"({cond}) * 1", "i32", locals_read=reads,
                        bool_src=cond)

        src = "(" + SIMPLE_BINOPS[op].format(a=a.src, b=b.src) + ")"
        return _Val(src, result_ty, locals_read=reads)

    def _unop(self, op: str, a: _Val) -> _Val:
        result_ty = (
            "i32" if op in ("i32.eqz", "i64.eqz") or op.startswith("i32.")
            else op.split(".", 1)[0]
        )
        if a.is_const:
            try:
                return _const_val(_FOLD_UN[op](a.const), result_ty)
            except Trap:
                pass
        if op == "i32.eqz" or op == "i64.eqz":
            cond = f"{a.src} == 0"
            return _Val(f"({cond}) * 1", "i32", locals_read=a.locals_read,
                        bool_src=cond)
        if op == "i64.extend_i32_u":
            return _Val(f"({a.raw} & 4294967295)", "i64",
                        raw=f"({a.raw} & 4294967295)",
                        locals_read=a.locals_read)
        src = "(" + SIMPLE_UNOPS[op].format(a=a.src) + ")"
        return _Val(src, result_ty, locals_read=a.locals_read)

    # ------------------------------------------------------------ control flow --

    def _compile_br(self, depth: int, stack: list[_Val],
                    scopes: list[_Scope]) -> None:
        """Emit an unconditional branch.  Caller handles dead code after."""
        self._flush()
        target = scopes[-1 - depth]
        if target.kind == "func":
            self._emit_return(stack)
            return
        if target.kind != "loop":
            for temp, val in zip(target.result_temps,
                                 stack[-len(target.result_temps):]
                                 if target.result_temps else []):
                self._emit(f"{temp} = {val.src}")
        if depth == 0:
            self._emit("continue" if target.kind == "loop" else "break")
        else:
            self._emit(f"_br = {depth}")
            self._emit("break")

    def _compile_body(self, body: list, stack: list[_Val],
                      scopes: list[_Scope]) -> bool:
        """Compile instructions; returns False if the body ended dead."""
        for pos, instr in enumerate(body):
            op = instr[0]
            self._cur_off = self._offsets.get((id(body), pos))
            self._count()

            if op == "local.get":
                index = instr[1]
                self._push(stack, _Val(f"L{index}", "?",
                                       locals_read=frozenset((index,))))
            elif op == "local.set" or op == "local.tee":
                index = instr[1]
                # values pushed before this write must keep the old local
                if op == "local.tee":
                    for i, val in enumerate(stack[:-1]):
                        if index in val.locals_read:
                            stack[i] = self._materialize(val)
                    top = stack[-1]
                    self._emit(f"L{index} = {top.src}")
                    stack[-1] = _Val(f"L{index}", top.ty,
                                     locals_read=frozenset((index,)))
                else:
                    top = stack.pop()
                    for i, val in enumerate(stack):
                        if index in val.locals_read:
                            stack[i] = self._materialize(val)
                    self._emit(f"L{index} = {top.src}")
            elif op == "global.get":
                temp = self._fresh()
                self._emit(f"{temp} = _G[{instr[1]}]")
                self._push(stack, _Val(temp, "?"))
            elif op == "global.set":
                top = stack.pop()
                self._emit(f"_G[{instr[1]}] = {top.src}")
            elif op == "i32.const" or op == "i64.const":
                self._push(stack, _const_val(int(instr[1]),
                                             op.split(".")[0]))
            elif op == "f32.const":
                self._push(stack, _const_val(V.f32round(float(instr[1])), "f32"))
            elif op == "f64.const":
                self._push(stack, _const_val(float(instr[1]), "f64"))
            elif op in SIMPLE_BINOPS:
                b = stack.pop()
                a = stack.pop()
                result = self._binop(op, a, b)
                if op in _TRAPPING_OPS and not result.is_const:
                    # traps must fire at the instruction's position, even
                    # if the value is later discarded — evaluate eagerly
                    # into a temp that DCE will not touch
                    result = self._materialize_effect(result)
                self._push(stack, result)
            elif op in SIMPLE_UNOPS or op == "i32.eqz" or op == "i64.eqz":
                a = stack.pop()
                result = self._unop(op, a)
                if op in _TRAPPING_OPS and not result.is_const:
                    result = self._materialize_effect(result)
                self._push(stack, result)
            elif op in LOAD_FMT:
                self._compile_load(op, instr[2], stack)
            elif op in STORE_FMT:
                self._compile_store(op, instr[2], stack)
            elif op == "call":
                self._compile_call(
                    f"_funcs[{instr[1]}]",
                    self.module.func_type_of(instr[1]), stack)
            elif op == "call_indirect":
                elem = stack.pop()
                temp = self._fresh("fi")
                self._flush()
                self._emit(f"{temp} = _tbl({elem.src}, {instr[1]})")
                self._compile_call(f"_funcs[{temp}]",
                                   self.module.types[instr[1]], stack,
                                   indirect=True)
            elif op == "drop":
                stack.pop()
            elif op == "select":
                cond = stack.pop()
                b = stack.pop()
                a = stack.pop()
                if cond.is_const:
                    self._push(stack, a if cond.const else b)
                else:
                    reads = a.locals_read | b.locals_read | cond.locals_read
                    self._push(stack, _Val(
                        f"({a.src} if {cond.as_bool()} else {b.src})",
                        a.ty, locals_read=reads))
            elif op == "nop":
                pass
            elif op == "unreachable":
                self._flush()
                self._emit("_trap('unreachable')")
                return False
            elif op == "memory.size":
                temp = self._fresh()
                self._emit(f"{temp} = _memsize()")
                self._push(stack, _Val(temp, "i32"))
            elif op == "memory.grow":
                top = stack.pop()
                temp = self._fresh()
                self._emit(f"{temp} = _memgrow({top.src})")
                self._push(stack, _Val(temp, "i32"))
            elif op == "br":
                self._compile_br(instr[1], stack, scopes)
                return False
            elif op == "br_if":
                self._compile_br_if(instr[1], stack, scopes)
            elif op == "br_table":
                self._compile_br_table(instr, stack, scopes)
                return False
            elif op == "return":
                self._flush()
                self._emit_return(stack)
                return False
            elif op == "block" or op == "loop" or op == "if":
                self._compile_structured(instr, stack, scopes)
            else:  # pragma: no cover - opcode table is exhaustive
                raise CompilationError(f"turbofan: unhandled op {op!r}")
        return True

    def _access_provably_in_bounds(self, op: str, offset: int) -> bool:
        """True when the interval analysis proved this access stays inside
        the module's declared memory minimum, so the i32 address mask is
        redundant.  Requires an *exact* non-negative range: exactness
        guarantees the raw (wrap-deferred) expression equals the semantic
        address, and ``lo >= 0`` rules out negative Python indexing
        aliasing the end of the page list."""
        fact = self._facts.get(self._cur_off)
        if fact is None or fact.op != op or fact.imm_offset != offset:
            return False
        addr = fact.addr
        if addr.bits != 32 or not addr.exact or addr.lo < 0:
            return False
        min_bytes = self.module.memories[0].minimum * 65536
        return addr.hi + offset + fact.access_size <= min_bytes

    def _compile_load(self, op: str, offset: int, stack: list[_Val]) -> None:
        fmt = LOAD_FMT[op]
        addr = stack.pop()
        addr_src = addr.raw if not offset else f"{addr.raw} + {offset}"
        a = self._fresh("a")
        t = self._fresh()
        if self._access_provably_in_bounds(op, offset):
            self._elided += 1
            self._emit(f"{a} = {addr_src}")
        else:
            self._emit(f"{a} = ({addr_src}) & 4294967295")
        self._emit(f"e = _pages[{a} >> 16]")
        self._emit(f"{t} = _unpack_from({fmt!r}, e[0], e[1] + ({a} & 65535))[0]")
        if self._instrumented:
            self._emit(f"_Pm({self._new_site('m')!r}, {a})")
        ty = op.split(".")[0]
        self._push(stack, _Val(t, ty))

    def _compile_store(self, op: str, offset: int, stack: list[_Val]) -> None:
        fmt, mask = STORE_FMT[op]
        value = stack.pop()
        addr = stack.pop()
        addr_src = addr.raw if not offset else f"{addr.raw} + {offset}"
        a = self._fresh("a")
        if self._access_provably_in_bounds(op, offset):
            self._elided += 1
            self._emit(f"{a} = {addr_src}")
        else:
            self._emit(f"{a} = ({addr_src}) & 4294967295")
        self._emit(f"e = _pages[{a} >> 16]")
        value_src = f"{value.raw} & {mask}" if mask is not None else value.src
        self._emit(f"_pack_into({fmt!r}, e[0], e[1] + ({a} & 65535), {value_src})")
        if self._instrumented:
            self._emit(f"_Pm({self._new_site('m')!r}, {a})")

    def _compile_call(self, target: str, func_type, stack: list[_Val],
                      indirect: bool = False) -> None:
        self._flush()
        n = len(func_type.params)
        args = [stack.pop() for _ in range(n)]
        args.reverse()
        arg_src = ", ".join(a.src for a in args)
        if self._instrumented:
            counter = "indirect_calls" if indirect else "calls"
            self._emit(f"_P.{counter} += 1")
        if func_type.results:
            temp = self._fresh()
            self._emit(f"{temp} = {target}({arg_src})")
            self._push(stack, _Val(temp, func_type.results[0]))
        else:
            self._emit(f"{target}({arg_src})")

    def _compile_br_if(self, depth: int, stack: list[_Val],
                       scopes: list[_Scope]) -> None:
        self._flush()
        cond = stack.pop()
        if cond.is_const:
            if cond.const:
                self._compile_br(depth, stack, scopes)
            return
        target = scopes[-1 - depth]
        # values consumed by the branch must be evaluated before the jump;
        # they also remain for the fallthrough path, so materialize them.
        if target.kind not in ("loop", "func") and target.result_temps:
            n = len(target.result_temps)
            for i in range(len(stack) - n, len(stack)):
                stack[i] = self._materialize(stack[i])
        site = self._new_site("b") if self._instrumented else None
        self._emit(f"if {cond.as_bool()}:")
        self._em.indent += 1
        if site:
            self._emit(f"_Pb({site!r}, True)")
        self._compile_br(depth, stack, scopes)
        self._em.indent -= 1
        if site:
            self._emit("else:")
            self._em.indent += 1
            self._emit(f"_Pb({site!r}, False)")
            self._em.indent -= 1

    def _compile_br_table(self, instr: tuple, stack: list[_Val],
                          scopes: list[_Scope]) -> None:
        self._flush()
        targets, default = instr[1], instr[2]
        index = self._materialize(stack.pop())
        if not targets:
            self._compile_br(default, stack, scopes)
            return
        for i, t in enumerate(targets):
            prefix = "if" if i == 0 else "elif"
            self._emit(f"{prefix} {index.src} == {i}:")
            self._em.indent += 1
            self._compile_br(t, stack, scopes)
            self._em.indent -= 1
        self._emit("else:")
        self._em.indent += 1
        self._compile_br(default, stack, scopes)
        self._em.indent -= 1

    def _compile_structured(self, instr: tuple, stack: list[_Val],
                            scopes: list[_Scope]) -> None:
        kind = instr[0]
        nresults = len(instr[1])
        result_temps = [self._fresh("r") for _ in range(nresults)]

        at_top = scopes[-1].kind == "func"
        if kind == "if":
            cond = stack.pop()
            assigned = _assigned_locals(instr[2]) | _assigned_locals(instr[3])
        else:
            cond = None
            assigned = _assigned_locals(instr[2])
        # values that survive the region must not see its local writes
        self._spill(stack, lambda v: bool(v.locals_read & assigned))
        self._flush()

        if kind == "if":
            scope = _Scope("if", result_temps, assigned)
            if cond is not None and cond.is_const:
                chosen = instr[2] if cond.const else instr[3]
                self._emit("while True:")
                self._em.indent += 1
                inner: list[_Val] = []
                alive = self._compile_body(chosen, inner, scopes + [scope])
                if alive:
                    self._flush()
                    for temp, val in zip(result_temps, inner[-nresults:] if nresults else []):
                        self._emit(f"{temp} = {val.src}")
                self._emit("break")
                self._em.indent -= 1
            else:
                self._emit("while True:")
                self._em.indent += 1
                if self._instrumented:
                    cond = self._materialize(cond)
                    self._emit(
                        f"_Pb({self._new_site('b')!r}, bool({cond.as_bool()}))"
                    )
                self._emit(f"if {cond.as_bool()}:")
                self._em.indent += 1
                self._compile_suite(instr[2], nresults, result_temps,
                                    scopes + [scope])
                self._em.indent -= 1
                self._emit("else:")
                self._em.indent += 1
                self._compile_suite(instr[3], nresults, result_temps,
                                    scopes + [scope])
                self._em.indent -= 1
                self._emit("break")
                self._em.indent -= 1
            self._emit_after_check(at_top)
        elif kind == "block":
            scope = _Scope("block", result_temps, assigned)
            self._emit("while True:")
            self._em.indent += 1
            inner = []
            alive = self._compile_body(instr[2], inner, scopes + [scope])
            if alive:
                self._flush()
                for temp, val in zip(result_temps, inner[-nresults:] if nresults else []):
                    self._emit(f"{temp} = {val.src}")
            self._emit("break")
            self._em.indent -= 1
            self._emit_after_check(at_top)
        else:  # loop
            scope = _Scope("loop", result_temps, assigned)
            self._emit("while True:")  # outer frame (not a label)
            self._em.indent += 1
            self._emit("while True:")  # the loop label: continue restarts
            self._em.indent += 1
            inner = []
            alive = self._compile_body(instr[2], inner, scopes + [scope])
            if alive:
                self._flush()
                for temp, val in zip(result_temps, inner[-nresults:] if nresults else []):
                    self._emit(f"{temp} = {val.src}")
            self._emit("break")
            self._em.indent -= 1
            # inner check: convert a pending depth-0 branch into a restart
            self._emit("if _br >= 0:")
            self._em.indent += 1
            self._emit("if _br == 0:")
            self._em.indent += 1
            self._emit("_br = -1")
            self._emit("continue")
            self._em.indent -= 1
            self._emit("_br -= 1")
            self._em.indent -= 1
            self._emit("break")
            self._em.indent -= 1
            if not at_top:
                # a pending branch keeps unwinding past this loop
                self._emit("if _br >= 0:")
                self._em.indent += 1
                self._emit("break")
                self._em.indent -= 1

        for temp in result_temps:
            stack.append(_Val(temp, "?"))

    def _compile_suite(self, body: list, nresults: int,
                       result_temps: list[str], scopes: list[_Scope]) -> None:
        """Compile one if-branch; guarantees a non-empty Python suite."""
        mark = len(self._em.lines)
        inner: list[_Val] = []
        alive = self._compile_body(body, inner, scopes)
        if alive:
            self._flush()
            for temp, val in zip(result_temps,
                                 inner[-nresults:] if nresults else []):
                self._emit(f"{temp} = {val.src}")
        if len(self._em.lines) == mark:
            self._emit("pass")

    def _emit_after_check(self, at_top: bool = False) -> None:
        """Consume a depth-0 pending branch; propagate deeper ones.

        At function top level a pending branch can never unwind further
        (branches that escape to the function frame were emitted as
        ``return``), so only the consume case is emitted there.
        """
        self._emit("if _br >= 0:")
        self._em.indent += 1
        if at_top:
            self._emit("_br = -1")
        else:
            self._emit("if _br:")
            self._em.indent += 1
            self._emit("_br -= 1")
            self._emit("break")
            self._em.indent -= 1
            self._emit("_br = -1")
        self._em.indent -= 1

    # ----------------------------------------------------------------- passes --

    _ASSIGN_RE = re.compile(r"^\s*(t\d+) = (.+)$")
    _ANY_ASSIGN_RE = re.compile(r"^(\s*)([A-Za-z_]\w*) = (.+)$")
    _CONTROL_RE = re.compile(
        r"^\s*(while |if |elif |else|break|continue|return|try|except|def )"
    )
    _NAME_RE = re.compile(r"\b[A-Za-z_]\w*\b")

    def _common_subexpressions(self, lines: list[str]) -> list[str]:
        """Local CSE: within one straight-line segment, a pure temp whose
        right-hand side was already computed reuses the earlier temp.

        Segments are delimited by control-flow lines (loops, branches,
        returns); an assignment invalidates every cached expression that
        reads the assigned name.  Sound because pure temps have no side
        effects and segments execute linearly.
        """
        available: dict[str, str] = {}   # rhs -> temp holding it
        out: list[str] = []
        for line in lines:
            if self._CONTROL_RE.match(line):
                available.clear()
                out.append(line)
                continue
            match = self._ANY_ASSIGN_RE.match(line)
            if not match:
                out.append(line)
                continue
            indent, name, rhs = match.groups()
            if name in self._pure_temps:
                known = available.get(rhs)
                if known is not None and known != name:
                    out.append(f"{indent}{name} = {known}")
                    continue
                available[rhs] = name
            # the assignment kills every cached expression reading `name`
            for cached_rhs in [
                r for r in available
                if name in self._NAME_RE.findall(r)
            ]:
                del available[cached_rhs]
            out.append(line)
        return out

    def _verify(self, source: str, name: str) -> None:
        """Re-parse the emitted code: an IR sanity check between passes,
        as optimizing compilers run after each transformation."""
        from repro.pyast import checked_parse

        try:
            checked_parse(source)
        except SyntaxError as exc:  # pragma: no cover - compiler bug guard
            raise CompilationError(
                f"turbofan pass broke function {name}: {exc}"
            )

    def _eliminate_dead_code(self, lines: list[str]) -> list[str]:
        """Remove assignments to pure temps that are never read (fixpoint)."""
        lines = list(lines)
        while True:
            uses: dict[str, int] = {}
            for line in lines:
                for name in re.findall(r"\bt\d+\b", line):
                    uses[name] = uses.get(name, 0) + 1
            removed = False
            kept: list[str] = []
            for line in lines:
                match = self._ASSIGN_RE.match(line)
                if match:
                    name = match.group(1)
                    if name in self._pure_temps and uses.get(name, 0) <= 1:
                        removed = True
                        continue
                kept.append(line)
            lines = kept
            if not removed:
                return lines
