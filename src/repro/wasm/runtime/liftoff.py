"""The Liftoff tier: fast single-pass baseline compilation.

Mirrors V8's Liftoff in role and design: one pass over the function body,
no analysis, no optimization.  The operand stack is emulated with a real
Python list; every operator becomes a pop/compute/push sequence calling
out-of-line helpers.  Compilation is as fast as it gets; the produced
code runs, but slower than the TurboFan tier's output — exactly the
trade-off the adaptive engine exploits.

Control flow is compiled with the *branch cascade*: every structured
instruction becomes a ``while True:`` frame, and a ``br d`` sets a
pending-depth counter and breaks outward one frame at a time.  Loops use
a two-frame form whose inner check converts a depth-0 branch into a
``continue``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CompilationError
from repro.observability.metrics import get_registry
from repro.wasm.module import Function, Module
from repro.wasm.runtime import values as V
from repro.wasm.runtime.pycodegen import (
    LOAD_FMT,
    SIMPLE_BINOPS,
    SIMPLE_UNOPS,
    STORE_FMT,
    make_namespace,
)

__all__ = ["LiftoffCompiler", "CompiledFunction"]


def _float_src(value: float) -> str:
    """Python source for a float constant; ``repr`` of non-finite
    values (``inf``, ``nan``) is not valid source."""
    if value != value:
        return "float('nan')"
    if value in (float("inf"), float("-inf")):
        return f"float('{value}')"
    return repr(value)


@dataclass
class CompiledFunction:
    """The output of a tier compiler for one function."""

    name: str
    tier: str
    source: str
    entry: str
    code: object = field(repr=False, default=None)  # compiled code object
    #: Memory accesses whose bounds check the compiler proved away
    #: (always 0 for Liftoff, which never runs the range analysis).
    bounds_checks_elided: int = 0

    def bind(self, instance, profile=None):
        """Instantiate the code against one instance; returns a callable."""
        namespace = make_namespace(instance, profile)
        exec(self.code, namespace)
        fn = namespace[self.entry]
        fn.tier = self.tier
        fn.compiled = self
        return fn


class _Emitter:
    """Indented line emission with unique-name counters."""

    def __init__(self):
        self.lines: list[str] = []
        self.indent = 0
        self._counter = 0

    def emit(self, text: str) -> None:
        self.lines.append("    " * self.indent + text)

    def fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def source(self) -> str:
        return "\n".join(self.lines) + "\n"


class LiftoffCompiler:
    """Compiles functions of one module, one at a time."""

    tier_name = "liftoff"

    def __init__(self, module: Module):
        self.module = module

    def compile(self, func: Function, func_index: int,
                instrumented: bool = False) -> CompiledFunction:
        func_type = self.module.types[func.type_index]
        name = func.name or f"f{func_index}"
        entry = f"wf{func_index}"
        em = _Emitter()
        self._instrumented = instrumented
        self._pending = 0
        self._site = 0
        self._fname = name

        params = ", ".join(f"L{i}" for i in range(len(func_type.params)))
        em.emit(f"def {entry}({params}):")
        em.indent += 1
        for i, ty in enumerate(func.locals_):
            index = len(func_type.params) + i
            em.emit(f"L{index} = {'0.0' if ty.startswith('f') else '0'}")
        em.emit("st = []")
        em.emit("_br = -1")
        em.emit("try:")
        em.indent += 1
        em.emit("while True:")
        em.indent += 1
        self._compile_body(em, func.body, frames=[("func", None, len(func_type.results))])
        self._flush(em)
        em.emit("break")
        em.indent -= 1
        if func_type.results:
            em.emit("return st[-1]")
        else:
            em.emit("return None")
        em.indent -= 1
        em.emit("except (TypeError, IndexError, _StructError) as _e:")
        em.indent += 1
        em.emit("raise _Trap('out of bounds memory access', repr(_e))")
        em.indent -= 1
        em.emit("except RecursionError:")
        em.indent += 1
        em.emit("raise _Trap('call stack exhausted')")
        em.indent -= 1

        source = "import struct as _struct\n_StructError = _struct.error\n" + em.source()
        try:
            code = compile(source, f"<liftoff:{name}>", "exec")
        except SyntaxError as exc:  # pragma: no cover - compiler bug guard
            raise CompilationError(f"liftoff generated bad code for {name}: {exc}\n{source}")
        get_registry().counter(
            "wasm_functions_compiled_total",
            "Wasm functions compiled, by tier",
        ).inc(tier=self.tier_name)
        return CompiledFunction(name, self.tier_name, source, entry, code)

    # -- instrumentation ------------------------------------------------------

    def _count(self, n: int = 1) -> None:
        if self._instrumented:
            self._pending += n

    def _flush(self, em: _Emitter) -> None:
        if self._instrumented and self._pending:
            em.emit(f"_P.instructions += {self._pending}")
            self._pending = 0

    def _new_site(self, kind: str) -> str:
        self._site += 1
        return f"{self._fname}:{kind}{self._site}"

    # -- body compilation --------------------------------------------------------

    def _compile_body(self, em: _Emitter, body: list, frames: list) -> None:
        """frames: innermost-last list of (kind, height_var, nresults)."""
        for instr in body:
            op = instr[0]
            self._count()

            if op == "local.get":
                em.emit(f"st.append(L{instr[1]})")
            elif op == "local.set":
                em.emit(f"L{instr[1]} = st.pop()")
            elif op == "local.tee":
                em.emit(f"L{instr[1]} = st[-1]")
            elif op == "global.get":
                em.emit(f"st.append(_G[{instr[1]}])")
            elif op == "global.set":
                em.emit(f"_G[{instr[1]}] = st.pop()")
            elif op == "i32.const" or op == "i64.const":
                em.emit(f"st.append({int(instr[1])})")
            elif op == "f32.const":
                em.emit(f"st.append({_float_src(V.f32round(float(instr[1])))})")
            elif op == "f64.const":
                em.emit(f"st.append({_float_src(float(instr[1]))})")
            elif op in SIMPLE_BINOPS:
                em.emit("b = st.pop(); a = st.pop()")
                expr = SIMPLE_BINOPS[op].format(a="a", b="b")
                em.emit(f"st.append({expr})")
            elif op in SIMPLE_UNOPS:
                expr = SIMPLE_UNOPS[op].format(a="st.pop()")
                em.emit(f"st.append({expr})")
            elif op in LOAD_FMT:
                self._compile_load(em, op, instr[2])
            elif op in STORE_FMT:
                self._compile_store(em, op, instr[2])
            elif op == "block" or op == "loop":
                self._flush(em)
                self._compile_block(em, instr, frames)
            elif op == "if":
                self._flush(em)
                self._compile_if(em, instr, frames)
            elif op == "br":
                self._compile_br(em, instr[1], frames)
            elif op == "br_if":
                self._flush(em)
                em.emit("if st.pop():")
                em.indent += 1
                if self._instrumented:
                    site = self._new_site("b")
                    em.emit(f"_Pb({site!r}, True)")
                self._compile_br(em, instr[1], frames)
                em.indent -= 1
                if self._instrumented:
                    em.emit("else:")
                    em.indent += 1
                    em.emit(f"_Pb({site!r}, False)")
                    em.indent -= 1
            elif op == "br_table":
                self._flush(em)
                targets, default = instr[1], instr[2]
                em.emit("a = st.pop()")
                if targets:
                    tup = ", ".join(str(t) for t in targets)
                    em.emit(
                        f"_br = ({tup},)[a] if 0 <= a < {len(targets)} "
                        f"else {default}"
                    )
                else:
                    em.emit(f"_br = {default}")
                em.emit("break")
            elif op == "return":
                self._flush(em)
                nresults = frames[0][2]  # the function frame's result count
                em.emit("return st[-1]" if nresults else "return None")
            elif op == "call":
                self._flush(em)
                self._compile_call(em, f"_funcs[{instr[1]}]",
                                   self.module.func_type_of(instr[1]))
            elif op == "call_indirect":
                self._flush(em)
                em.emit(f"a = _tbl(st.pop(), {instr[1]})")
                self._compile_call(em, "_funcs[a]",
                                   self.module.types[instr[1]],
                                   indirect=True)
            elif op == "drop":
                em.emit("st.pop()")
            elif op == "select":
                em.emit("c = st.pop(); b = st.pop(); a = st.pop()")
                em.emit("st.append(a if c else b)")
            elif op == "unreachable":
                self._flush(em)
                em.emit("_trap('unreachable')")
            elif op == "nop":
                em.emit("pass")
            elif op == "memory.size":
                em.emit("st.append(_memsize())")
            elif op == "memory.grow":
                em.emit("st.append(_memgrow(st.pop()))")
            else:  # pragma: no cover - opcode table is exhaustive
                raise CompilationError(f"liftoff: unhandled op {op!r}")

    def _compile_load(self, em: _Emitter, op: str, offset: int) -> None:
        fmt = LOAD_FMT[op]
        base = "st.pop()" if not offset else f"st.pop() + {offset}"
        em.emit(f"a = ({base}) & 4294967295")
        em.emit("e = _pages[a >> 16]")
        em.emit(f"st.append(_unpack_from({fmt!r}, e[0], e[1] + (a & 65535))[0])")
        if self._instrumented:
            em.emit(f"_Pm({self._new_site('m')!r}, a)")

    def _compile_store(self, em: _Emitter, op: str, offset: int) -> None:
        fmt, mask = STORE_FMT[op]
        em.emit("v = st.pop()")
        base = "st.pop()" if not offset else f"st.pop() + {offset}"
        em.emit(f"a = ({base}) & 4294967295")
        em.emit("e = _pages[a >> 16]")
        value = f"v & {mask}" if mask is not None else "v"
        em.emit(f"_pack_into({fmt!r}, e[0], e[1] + (a & 65535), {value})")
        if self._instrumented:
            em.emit(f"_Pm({self._new_site('m')!r}, a)")

    def _compile_call(self, em: _Emitter, target: str, func_type,
                      indirect: bool = False) -> None:
        n = len(func_type.params)
        if n:
            names = [f"a{i}" for i in range(n)]
            # pop in reverse: last argument is on top
            em.emit("; ".join(f"{nm} = st.pop()" for nm in reversed(names)))
            args = ", ".join(names)
        else:
            args = ""
        if self._instrumented:
            counter = "indirect_calls" if indirect else "calls"
            em.emit(f"_P.{counter} += 1")
        if func_type.results:
            em.emit(f"st.append({target}({args}))")
        else:
            em.emit(f"{target}({args})")

    def _compile_br(self, em: _Emitter, depth: int, frames: list) -> None:
        self._flush(em)
        em.emit(f"_br = {depth}")
        em.emit("break")

    def _compile_block(self, em: _Emitter, instr: tuple, frames: list) -> None:
        kind = instr[0]
        nresults = len(instr[1])
        height = em.fresh("h")
        em.emit(f"{height} = len(st)")
        if kind == "loop":
            em.emit("while True:")  # outer frame (not a label)
            em.indent += 1
            em.emit("while True:")  # the loop label
            em.indent += 1
            self._compile_body(em, instr[2],
                               frames + [("loop", height, nresults)])
            self._flush(em)
            em.emit("break")
            em.indent -= 1
            # inner check: a depth-0 branch restarts the loop
            em.emit("if _br >= 0:")
            em.indent += 1
            em.emit("if _br == 0:")
            em.indent += 1
            em.emit("_br = -1")
            em.emit(f"del st[{height}:]")
            em.emit("continue")
            em.indent -= 1
            em.emit("_br -= 1")
            em.indent -= 1
            em.emit("break")
            em.indent -= 1
            # after-loop: propagate without consuming
            em.emit("if _br >= 0:")
            em.indent += 1
            em.emit("break")
            em.indent -= 1
        else:  # block
            em.emit("while True:")
            em.indent += 1
            self._compile_body(em, instr[2],
                               frames + [("block", height, nresults)])
            self._flush(em)
            em.emit("break")
            em.indent -= 1
            self._emit_block_check(em, height, nresults)

    def _compile_if(self, em: _Emitter, instr: tuple, frames: list) -> None:
        nresults = len(instr[1])
        height = em.fresh("h")
        em.emit("c = st.pop()")
        if self._instrumented:
            em.emit(f"_Pb({self._new_site('b')!r}, bool(c))")
        em.emit(f"{height} = len(st)")
        em.emit("while True:")
        em.indent += 1
        em.emit("if c:")
        em.indent += 1
        self._compile_body(em, instr[2], frames + [("block", height, nresults)])
        self._flush(em)
        if not instr[2]:
            em.emit("pass")
        em.indent -= 1
        em.emit("else:")
        em.indent += 1
        self._compile_body(em, instr[3], frames + [("block", height, nresults)])
        self._flush(em)
        if not instr[3]:
            em.emit("pass")
        em.indent -= 1
        em.emit("break")
        em.indent -= 1
        self._emit_block_check(em, height, nresults)

    def _emit_block_check(self, em: _Emitter, height: str, nresults: int) -> None:
        """After a block/if frame: consume a depth-0 branch, trim the stack."""
        em.emit("if _br >= 0:")
        em.indent += 1
        em.emit("if _br:")
        em.indent += 1
        em.emit("_br -= 1")
        em.emit("break")
        em.indent -= 1
        em.emit("_br = -1")
        if nresults:
            em.emit(f"if len(st) > {height} + {nresults}:")
            em.indent += 1
            em.emit(f"st[{height}:] = st[-{nresults}:]")
            em.indent -= 1
        else:
            em.emit(f"del st[{height}:]")
        em.indent -= 1
