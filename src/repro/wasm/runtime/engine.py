"""Instantiation and adaptive execution — the V8 role.

The :class:`Engine` owns the tiering policy:

* ``mode="liftoff"`` — everything runs as Liftoff-compiled code,
* ``mode="turbofan"`` — everything is optimized up front (the paper's
  "enforce compilation with TurboFan" configuration of Section 8.2),
* ``mode="adaptive"`` (default) — functions start as Liftoff code; a
  per-function call counter triggers recompilation with TurboFan, and the
  function-table entry is swapped so every later call — including calls
  already in flight at morsel boundaries — runs optimized code.  This is
  V8's dynamic tier-up [Liftoff paper], which the paper gets "for free",
* ``mode="interpreter"`` — the reference interpreter (for testing).

Compile times per tier are recorded in :class:`TierStats`; the paper's
Figure 10 stacks exactly these phases.  In real V8 the TurboFan compile
runs on a background thread; here it runs synchronously at the tier-up
call boundary but is accounted separately, so benches can report it
either overlapped or serialized.
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass

from repro.errors import (
    CompilationError,
    ConfigError,
    LintError,
    Trap,
    ValidationError,
)
from repro.observability.metrics import get_registry
from repro.observability.trace import trace_event, trace_span
from repro.wasm.module import Module
from repro.wasm.runtime.interpreter import Interpreter
from repro.wasm.runtime.liftoff import LiftoffCompiler
from repro.wasm.runtime.memory import LinearMemory
from repro.wasm.runtime.turbofan import TurboFanCompiler
from repro.wasm.stencil.cache import get_stencil_cache
from repro.wasm.validator import validate_module

__all__ = ["ENGINE_MODES", "TIER_LADDERS", "Engine", "EngineConfig",
           "Instance", "TierStats"]

_GLOBAL_DEFAULTS = {"i32": 0, "i64": 0, "f32": 0.0, "f64": 0.0}


#: The valid tiering modes, in decreasing order of sophistication.
ENGINE_MODES = ("adaptive_stencil", "adaptive", "turbofan", "liftoff",
                "stencil", "interpreter")

#: The tier-up ladder per adaptive mode: functions start on the first
#: tier and are promoted one rung at a time at call-count thresholds.
#: Non-adaptive modes pin every function to their single tier.
TIER_LADDERS = {
    "adaptive": ("liftoff", "turbofan"),
    "adaptive_stencil": ("stencil", "liftoff", "turbofan"),
    "turbofan": ("turbofan",),
    "liftoff": ("liftoff",),
    "stencil": ("stencil",),
    "interpreter": ("interp",),
}

#: The valid linter modes of :attr:`EngineConfig.lint`.
LINT_MODES = ("off", "warn", "strict")

#: The ladders :attr:`EngineConfig.tier_plan` may assign per function.
#: Restricting to these keeps the existing tier-up triggers exact: a
#: stencil entry promotes through Liftoff toward TurboFan, a Liftoff
#: entry promotes to TurboFan, and an interpreter entry is pinned.
_ROUTABLE_LADDERS = {
    ("interp",),
    ("liftoff", "turbofan"),
    ("stencil", "liftoff", "turbofan"),
}


@dataclass
class EngineConfig:
    """Tiering policy knobs (V8's ``--liftoff``/``--no-wasm-tier-up`` etc.).

    Invalid configurations are rejected at construction so that a typo'd
    mode fails before any compilation work happens, with a
    :class:`~repro.errors.ConfigError` instead of a late bare
    ``ValueError`` deep in ``_compile_all``.
    """

    mode: str = "adaptive"          # one of ENGINE_MODES
    tier_up_threshold: int = 16     # calls of one function before tier-up
    validate: bool = True
    #: Static-analysis linter over every instantiated module:
    #: "off" (default), "warn" (Python warnings), or "strict"
    #: (:class:`~repro.errors.LintError` on any diagnostic).
    lint: str = "off"
    #: Let TurboFan drop the per-access address mask when the interval
    #: analysis proves the access in bounds of the declared memory minimum.
    elide_bounds_checks: bool = True
    fault_injector: object = None   # a repro.robustness.FaultInjector
    #: Optional :class:`~repro.observability.QueryTrace`; when set, the
    #: engine records validate/lint/compile spans and tier-up events.
    trace: object = None
    #: Per-function tier routing (the feedback subsystem's hybrid
    #: router): export name -> the ladder that function climbs instead
    #: of the mode's default.  ``("interp",)`` pins a function to the
    #: interpretive tier (short scans where codegen never pays off);
    #: ``("liftoff", "turbofan")`` enters at Liftoff (known-hot
    #: pipelines skip the stencil warmup); ``("stencil", "liftoff",
    #: "turbofan")`` is the full stencil ladder.  Unnamed functions
    #: (helpers, ``init``, other pipelines) keep the mode's ladder.
    #: Only meaningful for the adaptive modes.
    tier_plan: dict = None

    def __post_init__(self):
        if self.mode not in ENGINE_MODES:
            raise ConfigError(
                f"unknown engine mode {self.mode!r}; have {ENGINE_MODES}"
            )
        if not isinstance(self.tier_up_threshold, int) \
                or self.tier_up_threshold < 1:
            raise ConfigError(
                f"tier_up_threshold must be an int >= 1, "
                f"got {self.tier_up_threshold!r}"
            )
        if self.lint not in LINT_MODES:
            raise ConfigError(
                f"unknown lint mode {self.lint!r}; have {LINT_MODES}"
            )
        if not isinstance(self.elide_bounds_checks, bool):
            raise ConfigError(
                f"elide_bounds_checks must be a bool, "
                f"got {self.elide_bounds_checks!r}"
            )
        if self.tier_plan:
            if self.mode not in ("adaptive", "adaptive_stencil"):
                raise ConfigError(
                    f"tier_plan requires an adaptive mode, "
                    f"got mode={self.mode!r}"
                )
            for name, ladder in self.tier_plan.items():
                if tuple(ladder) not in _ROUTABLE_LADDERS:
                    raise ConfigError(
                        f"tier_plan[{name!r}] must be one of "
                        f"{sorted(_ROUTABLE_LADDERS)}, got {ladder!r}"
                    )

    @property
    def tier_ladder(self) -> tuple[str, ...]:
        """The tiers this mode runs through, lowest first."""
        return TIER_LADDERS[self.mode]


@dataclass
class TierStats:
    """Per-instance compilation accounting (the phases of Figure 10)."""

    liftoff_seconds: float = 0.0
    turbofan_seconds: float = 0.0
    liftoff_functions: int = 0
    turbofan_functions: int = 0
    tier_ups: int = 0
    #: TurboFan compilations that failed; each pins its function to the
    #: Liftoff tier for the rest of the instance's life (V8's bailout).
    tier_up_failures: int = 0
    #: Per-access bounds checks TurboFan statically proved away using the
    #: interval analysis (summed over its compiled functions).
    bounds_checks_elided: int = 0
    #: Tier-0 accounting: time spent assembling (or fetching) stencil
    #: code, functions bound to it, and whether this instance's module
    #: shape was served from the process-wide stencil cache.
    stencil_seconds: float = 0.0
    stencil_functions: int = 0
    stencil_cache_hits: int = 0
    stencil_cache_misses: int = 0
    #: Whole-module stencil assemblies that declined (unsupported op,
    #: instrumented run, injected fault); the instance fell back to the
    #: Liftoff path — queries never fail because tier-0 declined.
    stencil_fallbacks: int = 0

    @property
    def total_compile_seconds(self) -> float:
        return (self.stencil_seconds + self.liftoff_seconds
                + self.turbofan_seconds)


class Instance:
    """One instantiated module.

    ``funcs`` is the live function table: index -> current callable.
    Tier-up replaces entries in place, so every call site — compiled code
    uses ``_funcs[i]`` — immediately dispatches to the new code, which is
    how the engine swaps code *during* query execution (morsel-wise).
    """

    def __init__(self, module: Module, memory: LinearMemory | None):
        self.module = module
        self.memory = memory
        self.globals: list = [
            g.init if g.init is not None else _GLOBAL_DEFAULTS[g.valtype]
            for g in module.globals
        ]
        self.funcs: list = [None] * (len(module.imports) + len(module.functions))
        self.table: list[int | None] = []
        self.profile = None  # a costmodel Profile during instrumented runs
        self.lint_diagnostics: list = []
        self.stats = TierStats()
        self._exports = {e.name: e for e in module.exports}

    # -- calls -----------------------------------------------------------------

    def invoke(self, name: str, *args):
        """Call an exported function by name."""
        export = self._exports.get(name)
        if export is None or export.kind != "func":
            raise Trap("unknown export", name)
        return self.funcs[export.index](*args)

    def table_lookup(self, elem_index: int, type_index: int) -> int:
        """Resolve a ``call_indirect``: element index -> function index."""
        if not (0 <= elem_index < len(self.table)):
            raise Trap("undefined element", str(elem_index))
        func_index = self.table[elem_index]
        if func_index is None:
            raise Trap("uninitialized element", str(elem_index))
        actual = self.module.func_type_of(func_index)
        expected = self.module.types[type_index]
        if actual != expected:
            raise Trap("indirect call type mismatch",
                       f"{actual} vs {expected}")
        return func_index

    def tier_of(self, name: str) -> str:
        """The current tier of an exported function (for tests/benches)."""
        export = self._exports[name]
        return getattr(self.funcs[export.index], "tier", "?")

    def reset_mutable_state(self) -> None:
        """Restore every global to its module initializer (module reuse).

        Tier state — the live function table, call counters, compiled
        code — is deliberately preserved: resetting it would forfeit the
        adaptive engine's optimization investment, which is the point of
        caching an instantiated module.  The host is responsible for any
        globals it wants pinned past the reset (e.g. a grown heap bound)
        and for replaying data segments into linear memory.
        """
        for i, g in enumerate(self.module.globals):
            self.globals[i] = (
                g.init if g.init is not None else _GLOBAL_DEFAULTS[g.valtype]
            )


class Engine:
    """Instantiates modules and drives adaptive tier-up."""

    def __init__(self, config: EngineConfig | None = None):
        self.config = config or EngineConfig()

    def instantiate(
        self,
        module: Module,
        imports: dict[tuple[str, str], object] | None = None,
        memory: LinearMemory | None = None,
        profile=None,
    ) -> Instance:
        """Build an instance: resolve imports, set up memory, compile.

        ``memory`` plays the role of the paper's ``SetModuleMemory()``
        patch: the host passes a linear memory whose pages alias its own
        rewired buffers.  If omitted, a private memory is created from the
        module's memory section.
        """
        if self.config.validate:
            with trace_span(self.config.trace, "validate"):
                validate_module(module)

        lint_diagnostics: list = []
        if self.config.lint != "off":
            from repro.wasm.analysis import ModuleLinter

            with trace_span(self.config.trace, "lint",
                            mode=self.config.lint):
                lint_diagnostics = ModuleLinter(module).lint()
            if lint_diagnostics:
                if self.config.lint == "strict":
                    # advisory ("info") diagnostics never fail strict
                    # mode — they describe intentional specialization,
                    # not defects
                    rejected = [d for d in lint_diagnostics
                                if d.severity != "info"]
                    if rejected:
                        raise LintError(rejected)
                else:
                    for diag in lint_diagnostics:
                        warnings.warn(str(diag), stacklevel=2)

        if memory is not None and module.memories:
            # The host-provided memory plays the paper's SetModuleMemory()
            # role; it must satisfy the module's declared minimum or the
            # analyses (and elision proofs) built on that minimum are lies.
            declared_min = module.memories[0].minimum
            if memory.size_pages < declared_min:
                raise ValidationError(
                    f"provided memory has {memory.size_pages} page(s) but "
                    f"the module declares a minimum of {declared_min}"
                )
        if memory is None and module.memories:
            spec = module.memories[0]
            memory = LinearMemory(min_pages=spec.minimum,
                                  max_pages=spec.maximum)
        instance = Instance(module, memory)
        instance.profile = profile
        instance.lint_diagnostics = lint_diagnostics

        # imports
        imports = imports or {}
        for i, imp in enumerate(module.imports):
            try:
                host_fn = imports[(imp.module, imp.name)]
            except KeyError:
                raise ValidationError(
                    f"missing import {imp.module}.{imp.name}"
                ) from None
            instance.funcs[i] = host_fn

        # table + element segments
        table_size = module.tables[0].minimum if module.tables else 0
        instance.table = [None] * table_size
        for elem in module.elements:
            for k, func_index in enumerate(elem.func_indices):
                instance.table[elem.offset + k] = func_index

        # data segments
        for seg in module.data:
            if memory is None:
                raise ValidationError("data segment without memory")
            memory.write_bytes(seg.offset, seg.payload)

        self._compile_all(instance)

        if module.start is not None:
            instance.funcs[module.start]()
        return instance

    # -- compilation -------------------------------------------------------------

    def _compile_all(self, instance: Instance) -> None:
        mode = self.config.mode
        module = instance.module
        n_imports = len(module.imports)

        trace = self.config.trace
        if mode == "interpreter":
            with trace_span(trace, "compile.interpreter",
                            functions=len(module.functions)):
                interp = Interpreter(instance)
                for i, func in enumerate(module.functions):
                    instance.funcs[n_imports + i] = interp.make_callable(func)
            return

        instrumented = instance.profile is not None
        injector = self.config.fault_injector
        if self.config.tier_plan and mode in ("adaptive",
                                              "adaptive_stencil"):
            self._compile_routed(instance)
            return

        if mode == "turbofan":
            compiler = TurboFanCompiler(
                module, elide_bounds_checks=self.config.elide_bounds_checks
            )
            fallback = None
            start = time.perf_counter()
            with trace_span(trace, "compile.turbofan",
                            functions=len(module.functions)):
                for i, func in enumerate(module.functions):
                    try:
                        if injector is not None:
                            injector.check("turbofan.compile")
                        compiled = compiler.compile(
                            func, n_imports + i, instrumented
                        )
                        instance.stats.turbofan_functions += 1
                        instance.stats.bounds_checks_elided += \
                            compiled.bounds_checks_elided
                    except CompilationError:
                        # V8-style bailout: even under enforced optimization a
                        # function TurboFan rejects stays on the baseline tier
                        # instead of failing the whole instantiation.
                        if fallback is None:
                            fallback = LiftoffCompiler(module)
                        compiled = fallback.compile(
                            func, n_imports + i, instrumented
                        )
                        instance.stats.tier_up_failures += 1
                        instance.stats.liftoff_functions += 1
                        trace_event(trace, "turbofan.bailout",
                                    function=n_imports + i)
                        get_registry().counter(
                            "engine_tier_up_failures_total",
                            "TurboFan compilations that bailed out",
                        ).inc()
                    instance.funcs[n_imports + i] = compiled.bind(
                        instance, instance.profile
                    )
            instance.stats.turbofan_seconds += time.perf_counter() - start
            return

        if mode in ("stencil", "adaptive_stencil"):
            if self._compile_stencil(instance):
                if mode == "adaptive_stencil":
                    for i in range(len(module.functions)):
                        self._install_stencil_tier_up_trigger(
                            instance, n_imports + i
                        )
                return
            # assembly declined (unsupported op, instrumented run,
            # injected fault): fall through to the Liftoff path below —
            # the retryable StencilError never escapes the engine

        # liftoff and the adaptive ladders start (or land) on Liftoff code
        compiler = LiftoffCompiler(module)
        start = time.perf_counter()
        with trace_span(trace, "compile.liftoff",
                        functions=len(module.functions)):
            for i, func in enumerate(module.functions):
                if injector is not None:
                    # there is no lower compiled tier: a baseline failure
                    # aborts instantiation and is handled by the fallback
                    # chain (wasm[interpreter], then volcano)
                    injector.check("liftoff.compile")
                compiled = compiler.compile(func, n_imports + i, instrumented)
                instance.funcs[n_imports + i] = compiled.bind(
                    instance, instance.profile
                )
        instance.stats.liftoff_seconds += time.perf_counter() - start
        instance.stats.liftoff_functions += len(module.functions)

        if mode == "adaptive" or mode == "adaptive_stencil":
            for i in range(len(module.functions)):
                self._install_tier_up_trigger(instance, n_imports + i)

    def _stencil_artifacts(self, instance: Instance):
        """Assemble (or fetch) the module's stencil artifacts.

        Served from the process-wide shape-keyed cache
        (:mod:`repro.wasm.stencil.cache`), so a structurally familiar
        module skips even the (cheap) assembly pass.  Any failure — an
        op without a stencil, an injected ``stencil.assemble`` fault —
        declines the whole module with ``None`` and the caller lands on
        the Liftoff path: tier-0 is an optimization, never a failure
        mode.  Updates the instance's stencil timing/cache stats; the
        caller accounts the functions it actually binds.
        """
        module = instance.module
        trace = self.config.trace
        stats = instance.stats
        injector = self.config.fault_injector
        start = time.perf_counter()
        hit = False
        try:
            with trace_span(trace, "compile.stencil",
                            functions=len(module.functions)) as span:
                if injector is not None:
                    injector.check("stencil.assemble")
                artifacts, hit = get_stencil_cache().get(module)
                if span is not None:
                    span.attrs["cache"] = "hit" if hit else "miss"
        except CompilationError as exc:
            stats.stencil_seconds += time.perf_counter() - start
            stats.stencil_fallbacks += 1
            trace_event(trace, "stencil.fallback", reason=str(exc))
            get_registry().counter(
                "engine_stencil_fallbacks_total",
                "Stencil assemblies that fell back to Liftoff",
            ).inc()
            return None
        stats.stencil_seconds += time.perf_counter() - start
        if hit:
            stats.stencil_cache_hits += 1
        else:
            stats.stencil_cache_misses += 1
        return artifacts

    def _compile_stencil(self, instance: Instance) -> bool:
        """Bind tier-0 stencil code to every function; False to decline.

        Instrumented (profiling) runs assemble stencils too: the bound
        dispatch loop counts its executed stencils into the profile
        (see :meth:`~repro.wasm.stencil.assemble.StencilFunction.bind`),
        so the cost model sees tier-0 work instead of tier-0 silently
        declining to Liftoff.
        """
        artifacts = self._stencil_artifacts(instance)
        if artifacts is None:
            return False
        n_imports = len(instance.module.imports)
        for i, artifact in enumerate(artifacts):
            instance.funcs[n_imports + i] = artifact.bind(
                instance, instance.profile
            )
        instance.stats.stencil_functions += len(artifacts)
        return True

    def _compile_routed(self, instance: Instance) -> None:
        """Compile with per-function ladders from ``config.tier_plan``.

        The feedback subsystem's hybrid router names pipeline functions
        and the ladder each should climb; everything it doesn't name
        (``init``, helpers, unrouted pipelines) keeps the mode's
        default ladder.  A function whose ladder enters at:

        * ``interp`` — is pinned to the reference interpreter (short
          scans where any codegen costs more than it saves),
        * ``stencil`` — binds tier-0 code with the usual promotion
          trigger (stencil -> Liftoff -> TurboFan),
        * ``liftoff`` — compiles Liftoff up front with the TurboFan
          trigger (known-hot pipelines skip the stencil warmup).

        Stencil assembly declining (unsupported op, injected fault)
        degrades stencil-entry functions to the Liftoff entry, exactly
        like the unrouted path.
        """
        module = instance.module
        n_imports = len(module.imports)
        trace = self.config.trace
        default = TIER_LADDERS[self.config.mode]
        ladders = [default] * len(module.functions)
        for export in module.exports:
            if export.kind == "func" \
                    and export.name in self.config.tier_plan:
                ladders[export.index - n_imports] = tuple(
                    self.config.tier_plan[export.name]
                )
        artifacts = None
        if any(ladder[0] == "stencil" for ladder in ladders):
            artifacts = self._stencil_artifacts(instance)
        instrumented = instance.profile is not None
        injector = self.config.fault_injector
        interp = None
        liftoff = LiftoffCompiler(module)
        for i, func in enumerate(module.functions):
            index = n_imports + i
            ladder = ladders[i]
            if ladder[0] == "stencil" and artifacts is not None:
                instance.funcs[index] = artifacts[i].bind(
                    instance, instance.profile
                )
                instance.stats.stencil_functions += 1
                self._install_stencil_tier_up_trigger(instance, index)
                continue
            if ladder[0] == "interp":
                if interp is None:
                    interp = Interpreter(instance)
                instance.funcs[index] = interp.make_callable(func)
                continue
            # Liftoff entry — also where stencil-entry functions land
            # when assembly declined
            start = time.perf_counter()
            if injector is not None:
                injector.check("liftoff.compile")
            with trace_span(trace, "compile.liftoff", function=index):
                compiled = liftoff.compile(func, index, instrumented)
            instance.funcs[index] = compiled.bind(
                instance, instance.profile
            )
            instance.stats.liftoff_seconds += time.perf_counter() - start
            instance.stats.liftoff_functions += 1
            if "turbofan" in ladder:
                self._install_tier_up_trigger(instance, index)

    def _install_stencil_tier_up_trigger(self, instance: Instance,
                                         func_index: int) -> None:
        """Wrap a stencil function with a call counter that promotes it
        to Liftoff once hot — the first rung of the stencil ladder.

        Same shape as :meth:`_install_tier_up_trigger`; the promoted
        Liftoff function then gets its own trigger toward TurboFan, so
        one hot function climbs stencil -> Liftoff -> TurboFan.
        """
        stencil_fn = instance.funcs[func_index]
        threshold = self.config.tier_up_threshold
        engine = self

        count = 0

        def tiering(*args):
            nonlocal count
            count += 1
            if count >= threshold:
                engine.tier_up_stencil(instance, func_index)
                return instance.funcs[func_index](*args)
            return stencil_fn(*args)

        tiering.tier = "stencil"
        tiering.stencil = stencil_fn  # kept for pinning on tier-up failure
        instance.funcs[func_index] = tiering

    def tier_up_stencil(self, instance: Instance, func_index: int) -> None:
        """Promote one function from stencil code to Liftoff code.

        Mirrors :meth:`tier_up` one rung down the ladder: a failed
        Liftoff compile pins the function to its stencil code (the
        query keeps running tier-0), otherwise the function-table entry
        is swapped for the Liftoff callable wrapped with the TurboFan
        trigger, continuing the climb.
        """
        module = instance.module
        func = module.functions[func_index - len(module.imports)]
        trace = self.config.trace
        start = time.perf_counter()
        try:
            injector = self.config.fault_injector
            if injector is not None:
                injector.check("liftoff.compile")
            with trace_span(trace, "compile.liftoff", function=func_index):
                compiled = LiftoffCompiler(module).compile(
                    func, func_index, instrumented=False
                )
            baseline = compiled.bind(instance, instance.profile)
        except CompilationError:
            instance.stats.liftoff_seconds += time.perf_counter() - start
            instance.stats.tier_up_failures += 1
            current = instance.funcs[func_index]
            instance.funcs[func_index] = getattr(
                current, "stencil", current
            )
            trace_event(trace, "tier_up.failure", function=func_index)
            get_registry().counter(
                "engine_tier_up_failures_total",
                "TurboFan compilations that bailed out",
            ).inc()
            return
        instance.stats.liftoff_seconds += time.perf_counter() - start
        instance.stats.liftoff_functions += 1
        instance.stats.tier_ups += 1
        instance.funcs[func_index] = baseline
        self._install_tier_up_trigger(instance, func_index)
        trace_event(trace, "tier_up", function=func_index,
                    from_tier="stencil", to_tier="liftoff")
        get_registry().counter(
            "engine_tier_ups_total",
            "Functions promoted from Liftoff to TurboFan",
        ).inc()

    def _install_tier_up_trigger(self, instance: Instance,
                                 func_index: int) -> None:
        """Wrap a Liftoff function with a call counter that triggers
        TurboFan recompilation once the function is hot.

        The wrapper replaces ``instance.funcs[func_index]`` with the raw
        optimized callable on tier-up, so the counting overhead also
        disappears — mirroring V8's code patching.
        """
        liftoff_fn = instance.funcs[func_index]
        threshold = self.config.tier_up_threshold
        engine = self

        count = 0

        def tiering(*args):
            nonlocal count
            count += 1
            if count >= threshold:
                engine.tier_up(instance, func_index)
                return instance.funcs[func_index](*args)
            return liftoff_fn(*args)

        tiering.tier = "liftoff"
        tiering.liftoff = liftoff_fn  # kept for pinning on tier-up failure
        instance.funcs[func_index] = tiering

    def tier_up(self, instance: Instance, func_index: int) -> None:
        """Recompile one function with TurboFan and patch it in.

        A failed TurboFan compilation must never abort a half-executed
        query (real V8 silently keeps running Liftoff code when an
        optimization job bails out): the :class:`CompilationError` is
        swallowed, recorded in ``TierStats.tier_up_failures``, and the
        function is *pinned* — the counting wrapper is replaced by the
        raw Liftoff callable, so no further tier-up is attempted and the
        counter overhead disappears too.
        """
        module = instance.module
        func = module.functions[func_index - len(module.imports)]
        instrumented = instance.profile is not None
        trace = self.config.trace
        start = time.perf_counter()
        try:
            injector = self.config.fault_injector
            if injector is not None:
                injector.check("turbofan.compile")
            with trace_span(trace, "compile.turbofan", function=func_index):
                compiled = TurboFanCompiler(
                    module,
                    elide_bounds_checks=self.config.elide_bounds_checks,
                ).compile(func, func_index, instrumented)
            optimized = compiled.bind(instance, instance.profile)
        except CompilationError:
            instance.stats.turbofan_seconds += time.perf_counter() - start
            instance.stats.tier_up_failures += 1
            current = instance.funcs[func_index]
            instance.funcs[func_index] = getattr(
                current, "liftoff", current
            )
            trace_event(trace, "tier_up.failure", function=func_index)
            get_registry().counter(
                "engine_tier_up_failures_total",
                "TurboFan compilations that bailed out",
            ).inc()
            return
        instance.stats.turbofan_seconds += time.perf_counter() - start
        instance.stats.turbofan_functions += 1
        instance.stats.tier_ups += 1
        instance.stats.bounds_checks_elided += compiled.bounds_checks_elided
        instance.funcs[func_index] = optimized
        trace_event(trace, "tier_up", function=func_index,
                    elided=compiled.bounds_checks_elided)
        get_registry().counter(
            "engine_tier_ups_total",
            "Functions promoted from Liftoff to TurboFan",
        ).inc()
