"""Linear memory over a rewired address space.

A module's memory is a facade over a
:class:`repro.storage.rewiring.AddressSpace`: the page table translates
32-bit addresses to host buffers, so table columns mapped by the host are
readable zero-copy — the paper's ``SetModuleMemory()`` patch plus rewiring
(Section 6).

Two access paths exist:

* the method API here (used by the reference interpreter and the host),
* the raw ``pages`` list, inlined by the tier compilers for speed.
"""

from __future__ import annotations

import struct

from repro.errors import ResourceExhausted, Trap
from repro.storage.rewiring import WASM_PAGE_SIZE, AddressSpace

__all__ = ["LinearMemory"]

_PAGE_MASK = WASM_PAGE_SIZE - 1

_LOAD_FMT = {
    "i32.load": ("<i", 4), "i64.load": ("<q", 8),
    "f32.load": ("<f", 4), "f64.load": ("<d", 8),
    "i32.load8_s": ("<b", 1), "i32.load8_u": ("<B", 1),
    "i32.load16_s": ("<h", 2), "i32.load16_u": ("<H", 2),
    "i64.load8_s": ("<b", 1), "i64.load8_u": ("<B", 1),
    "i64.load16_s": ("<h", 2), "i64.load16_u": ("<H", 2),
    "i64.load32_s": ("<i", 4), "i64.load32_u": ("<I", 4),
}
_STORE_FMT = {
    "i32.store": ("<i", 4), "i64.store": ("<q", 8),
    "f32.store": ("<f", 4), "f64.store": ("<d", 8),
    "i32.store8": ("<B", 1), "i32.store16": ("<H", 2),
    "i64.store8": ("<B", 1), "i64.store16": ("<H", 2),
    "i64.store32": ("<I", 4),
}
_STORE_MASK = {
    "i32.store8": 0xFF, "i32.store16": 0xFFFF,
    "i64.store8": 0xFF, "i64.store16": 0xFFFF, "i64.store32": 0xFFFFFFFF,
}


class LinearMemory:
    """A module's linear memory, backed by an :class:`AddressSpace`."""

    #: Optional :class:`repro.robustness.FaultInjector`; when set, the
    #: ``memory.grow`` site is consulted before pages are handed out.
    fault_injector = None

    def __init__(self, space: AddressSpace | None = None, min_pages: int = 1,
                 max_pages: int | None = None):
        if space is None:
            # A private, spec-conformant memory: valid from address 0.
            space = AddressSpace(max_pages=max_pages or 1 << 16, first_page=0)
            if min_pages:
                space.alloc("__initial__", min_pages * WASM_PAGE_SIZE)
        self.space = space
        self.pages = space.pages  # the fast path for generated code

    @property
    def size_pages(self) -> int:
        """Current memory size in 64 KiB pages (``memory.size``)."""
        return self.space._next_page

    def grow(self, delta_pages: int) -> int:
        """``memory.grow``: returns the old size or -1 on failure.

        A failure *inside the Wasm semantics* (address space full) keeps
        the spec behavior and returns -1.  A failure of the *host policy*
        — the query's page budget (:class:`ResourceExhausted`, raised by
        the governor attached to the address space, or injected at the
        ``memory.grow`` fault site) — escapes to the host so the fallback
        chain can degrade the query instead of letting generated code
        limp on with a failed allocation.
        """
        old = self.size_pages
        if delta_pages == 0:
            return old
        if self.fault_injector is not None:
            self.fault_injector.check("memory.grow")
        try:
            self.space.alloc(f"__grow_{old}__", delta_pages * WASM_PAGE_SIZE)
        except ResourceExhausted:
            raise
        except Exception:
            return -1
        return old

    # -- typed access (interpreter / host path) -----------------------------

    def load(self, op: str, addr: int) -> int | float:
        fmt, size = _LOAD_FMT[op]
        addr &= 0xFFFFFFFF
        try:
            buf, base = self.pages[addr >> 16]
            return struct.unpack_from(fmt, buf, base + (addr & _PAGE_MASK))[0]
        except (TypeError, struct.error, IndexError):
            pass
        # slow path: crosses a page boundary or is genuinely out of bounds
        try:
            raw = self.space.read(addr, size)
        except Exception:
            raise Trap("out of bounds memory access", f"load at {addr:#x}") from None
        return struct.unpack(fmt, raw)[0]

    def store(self, op: str, addr: int, value) -> None:
        fmt, size = _STORE_FMT[op]
        addr &= 0xFFFFFFFF
        mask = _STORE_MASK.get(op)
        if mask is not None:
            value = value & mask
        try:
            buf, base = self.pages[addr >> 16]
            struct.pack_into(fmt, buf, base + (addr & _PAGE_MASK), value)
            return
        except (TypeError, struct.error, IndexError):
            pass
        try:
            self.space.write(addr, struct.pack(fmt, value))
        except Exception:
            raise Trap("out of bounds memory access", f"store at {addr:#x}") from None

    # -- bulk access (host convenience) -----------------------------------------

    def read_bytes(self, addr: int, size: int) -> bytes:
        try:
            return self.space.read(addr & 0xFFFFFFFF, size)
        except Exception:
            raise Trap("out of bounds memory access", f"read at {addr:#x}") from None

    def write_bytes(self, addr: int, data: bytes) -> None:
        try:
            self.space.write(addr & 0xFFFFFFFF, data)
        except Exception:
            raise Trap("out of bounds memory access", f"write at {addr:#x}") from None
