"""The Wasm execution engine: interpreter, two compiler tiers, tiering.

This package plays the role V8 plays in the paper:

* :mod:`repro.wasm.runtime.interpreter` — a reference interpreter used for
  testing and as the semantic oracle for the compilers,
* :mod:`repro.wasm.runtime.liftoff` — the fast baseline tier: a single
  pass over the code, naive stack emulation, minimal compile time,
* :mod:`repro.wasm.runtime.turbofan` — the optimizing tier: recovers
  expression trees from the stack machine, folds constants, eliminates
  dead code, and emits idiomatic Python that runs several times faster,
* :mod:`repro.wasm.runtime.engine` — instantiation and the **adaptive
  tier-up controller** that transparently replaces Liftoff code with
  TurboFan code while a query is running (at call boundaries, which
  morsel-wise execution turns into frequent switch points).
"""

from repro.wasm.runtime.memory import LinearMemory
from repro.wasm.runtime.engine import Engine, EngineConfig, Instance, TierStats

__all__ = ["Engine", "EngineConfig", "Instance", "LinearMemory", "TierStats"]
