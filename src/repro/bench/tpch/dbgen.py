"""A deterministic TPC-H data generator (dbgen).

Follows the TPC-H specification's cardinalities and value distributions
(section 4.2 of the spec) vectorized with NumPy:

* cardinalities: 150k customers, 1.5M orders, ~6M lineitems, 200k parts,
  10k suppliers per scale factor,
* ``o_orderdate`` uniform in [1992-01-01, 1998-08-02]; ``l_shipdate`` =
  orderdate + [1, 121] days, receipt = ship + [1, 30],
* ``l_returnflag`` R/A for receipts before the current date (1995-06-17),
  N after; ``l_linestatus`` O/F around ``l_shipdate``,
* prices from the part's retail price formula; discounts in [0.00,
  0.10]; taxes in [0.00, 0.08],
* ``p_type`` from the spec's syllable grammar (including the ``PROMO``
  prefix Q14 needs); ``c_mktsegment`` from the five segments Q3 needs.

Comment-style filler columns are omitted or shortened — they never
appear in the reproduced queries and only inflate memory.
"""

from __future__ import annotations

import datetime as dt

import numpy as np

from repro.bench.tpch.schema import TPCH_SCHEMAS
from repro.db.database import Database
from repro.sql.types import date_to_days
from repro.storage.table import Table

__all__ = ["generate_tpch", "tpch_database"]

_TYPE_SYLLABLE_1 = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                    "PROMO"]
_TYPE_SYLLABLE_2 = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                    "BRUSHED"]
_TYPE_SYLLABLE_3 = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"]
_SEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY",
             "HOUSEHOLD"]
_PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI",
               "5-LOW"]
_SHIPMODES = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"]
_INSTRUCTIONS = ["DELIVER IN PERSON", "COLLECT COD", "NONE",
                 "TAKE BACK RETURN"]
_CONTAINERS = ["SM CASE", "SM BOX", "MED BAG", "MED BOX", "LG CASE",
               "LG BOX", "WRAP CASE", "JUMBO BOX"]
_NAME_WORDS = ["almond", "antique", "aquamarine", "azure", "beige",
               "bisque", "black", "blanched", "blue", "blush"]
_NATIONS = ["ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT",
            "ETHIOPIA", "FRANCE", "GERMANY", "INDIA", "INDONESIA",
            "IRAN", "IRAQ", "JAPAN", "JORDAN", "KENYA", "MOROCCO",
            "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA", "SAUDI ARABIA",
            "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"]
_REGIONS = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]

START_DATE = date_to_days(dt.date(1992, 1, 1))
END_DATE = date_to_days(dt.date(1998, 8, 2))
CURRENT_DATE = date_to_days(dt.date(1995, 6, 17))


def _pick(rng, choices: list[str], size: int, dtype: str) -> np.ndarray:
    values = np.array([c.encode() for c in choices], dtype=dtype)
    return values[rng.integers(0, len(choices), size=size)]


def generate_tpch(scale_factor: float = 0.01,
                  seed: int = 7) -> dict[str, Table]:
    """Generate all eight tables at the given scale factor."""
    rng = np.random.default_rng(seed)
    n_part = max(int(200_000 * scale_factor), 20)
    n_supp = max(int(10_000 * scale_factor), 5)
    n_cust = max(int(150_000 * scale_factor), 15)
    n_orders = max(int(1_500_000 * scale_factor), 50)

    tables: dict[str, Table] = {}

    tables["region"] = Table.from_arrays(TPCH_SCHEMAS["region"], {
        "r_regionkey": np.arange(5, dtype=np.int32),
        "r_name": np.array([r.encode() for r in _REGIONS], dtype="S12"),
        "r_comment": np.array([b"spec region"] * 5, dtype="S40"),
    })
    tables["nation"] = Table.from_arrays(TPCH_SCHEMAS["nation"], {
        "n_nationkey": np.arange(25, dtype=np.int32),
        "n_name": np.array([n.encode() for n in _NATIONS], dtype="S16"),
        "n_regionkey": np.array(
            [i % 5 for i in range(25)], dtype=np.int32
        ),
        "n_comment": np.array([b"spec nation"] * 25, dtype="S40"),
    })

    tables["supplier"] = Table.from_arrays(TPCH_SCHEMAS["supplier"], {
        "s_suppkey": np.arange(n_supp, dtype=np.int32),
        "s_name": np.array(
            [f"Supplier#{i:09d}".encode() for i in range(n_supp)],
            dtype="S18",
        ),
        "s_nationkey": rng.integers(0, 25, size=n_supp, dtype=np.int32),
        "s_acctbal": rng.integers(-99999, 999999, size=n_supp,
                                  dtype=np.int64),
    })

    # part: retail price formula from the spec:
    # (90000 + (partkey/10 % 20001) + 100*(partkey % 1000)) / 100
    partkeys = np.arange(n_part, dtype=np.int64)
    retail = (90000 + (partkeys // 10) % 20001 + 100 * (partkeys % 1000))
    name_a = rng.integers(0, len(_NAME_WORDS), size=n_part)
    name_b = rng.integers(0, len(_NAME_WORDS), size=n_part)
    t1 = rng.integers(0, len(_TYPE_SYLLABLE_1), size=n_part)
    t2 = rng.integers(0, len(_TYPE_SYLLABLE_2), size=n_part)
    t3 = rng.integers(0, len(_TYPE_SYLLABLE_3), size=n_part)
    tables["part"] = Table.from_arrays(TPCH_SCHEMAS["part"], {
        "p_partkey": partkeys.astype(np.int32),
        "p_name": np.array([
            f"{_NAME_WORDS[a]} {_NAME_WORDS[b]}".encode()
            for a, b in zip(name_a, name_b)
        ], dtype="S32"),
        "p_mfgr": np.array([
            f"Manufacturer#{1 + int(k) % 5}".encode() for k in partkeys
        ], dtype="S16"),
        "p_brand": np.array([
            f"Brand#{1 + int(k) % 5}{1 + int(k) % 5}".encode()
            for k in partkeys
        ], dtype="S10"),
        "p_type": np.array([
            f"{_TYPE_SYLLABLE_1[a]} {_TYPE_SYLLABLE_2[b]} "
            f"{_TYPE_SYLLABLE_3[c]}".encode()
            for a, b, c in zip(t1, t2, t3)
        ], dtype="S25"),
        "p_size": rng.integers(1, 51, size=n_part, dtype=np.int32),
        "p_container": _pick(rng, _CONTAINERS, n_part, "S10"),
        "p_retailprice": retail,
    })

    tables["customer"] = Table.from_arrays(TPCH_SCHEMAS["customer"], {
        "c_custkey": np.arange(n_cust, dtype=np.int32),
        "c_name": np.array(
            [f"Customer#{i:09d}".encode() for i in range(n_cust)],
            dtype="S18",
        ),
        "c_nationkey": rng.integers(0, 25, size=n_cust, dtype=np.int32),
        "c_acctbal": rng.integers(-99999, 999999, size=n_cust,
                                  dtype=np.int64),
        "c_mktsegment": _pick(rng, _SEGMENTS, n_cust, "S10"),
    })

    # orders
    orderdate = rng.integers(START_DATE, END_DATE - 151, size=n_orders,
                             dtype=np.int32)
    tables["orders"] = Table.from_arrays(TPCH_SCHEMAS["orders"], {
        "o_orderkey": np.arange(n_orders, dtype=np.int32),
        "o_custkey": rng.integers(0, max(n_cust, 1), size=n_orders,
                                  dtype=np.int32),
        "o_orderstatus": _pick(rng, ["O", "F", "P"], n_orders, "S1"),
        "o_totalprice": rng.integers(90000, 50000000, size=n_orders,
                                     dtype=np.int64),
        "o_orderdate": orderdate,
        "o_orderpriority": _pick(rng, _PRIORITIES, n_orders, "S15"),
        "o_shippriority": np.zeros(n_orders, dtype=np.int32),
    })

    # lineitem: 1..7 lines per order (avg 4 -> ~6M per SF=1)
    lines_per_order = rng.integers(1, 8, size=n_orders)
    n_line = int(lines_per_order.sum())
    l_orderkey = np.repeat(
        np.arange(n_orders, dtype=np.int32), lines_per_order
    )
    l_orderdate = np.repeat(orderdate, lines_per_order)
    l_linenumber = (
        np.arange(n_line, dtype=np.int64)
        - np.repeat(np.cumsum(lines_per_order) - lines_per_order,
                    lines_per_order)
        + 1
    ).astype(np.int32)
    l_partkey = rng.integers(0, n_part, size=n_line, dtype=np.int32)
    quantity = rng.integers(1, 51, size=n_line, dtype=np.int64)
    extended = quantity * retail[l_partkey]  # scaled cents * qty
    shipdate = l_orderdate + rng.integers(1, 122, size=n_line).astype(
        np.int32
    )
    commitdate = l_orderdate + rng.integers(30, 91, size=n_line).astype(
        np.int32
    )
    receiptdate = shipdate + rng.integers(1, 31, size=n_line).astype(
        np.int32
    )
    returnflag = np.where(
        receiptdate <= CURRENT_DATE,
        _pick(rng, ["R", "A"], n_line, "S1"),
        np.array(b"N", dtype="S1"),
    )
    linestatus = np.where(
        shipdate > CURRENT_DATE,
        np.array(b"O", dtype="S1"),
        np.array(b"F", dtype="S1"),
    )
    tables["lineitem"] = Table.from_arrays(TPCH_SCHEMAS["lineitem"], {
        "l_orderkey": l_orderkey,
        "l_partkey": l_partkey,
        "l_suppkey": rng.integers(0, max(n_supp, 1), size=n_line,
                                  dtype=np.int32),
        "l_linenumber": l_linenumber,
        "l_quantity": quantity * 100,  # DECIMAL(12,2): scaled by 100
        "l_extendedprice": extended,
        "l_discount": rng.integers(0, 11, size=n_line, dtype=np.int64),
        "l_tax": rng.integers(0, 9, size=n_line, dtype=np.int64),
        "l_returnflag": returnflag,
        "l_linestatus": linestatus,
        "l_shipdate": shipdate,
        "l_commitdate": commitdate,
        "l_receiptdate": receiptdate,
        "l_shipinstruct": _pick(rng, _INSTRUCTIONS, n_line, "S25"),
        "l_shipmode": _pick(rng, _SHIPMODES, n_line, "S10"),
    })
    return tables


def tpch_database(scale_factor: float = 0.01, seed: int = 7,
                  default_engine: str = "wasm") -> Database:
    """A ready-to-query database with all TPC-H tables loaded."""
    db = Database(default_engine=default_engine)
    for table in generate_tpch(scale_factor, seed).values():
        db.register_table(table)
    return db
