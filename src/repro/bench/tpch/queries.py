"""The TPC-H queries of the paper's Figure 10: Q1, Q3, Q6, Q12, Q14.

Texts follow the TPC-H specification with the validation-run parameter
substitutions, restricted to the SQL subset all four engines support
(inner joins, one query block).
"""

from __future__ import annotations

__all__ = ["QUERIES", "query_sql"]

QUERIES: dict[str, str] = {
    # Q1: pricing summary report
    "q1": """
        SELECT
            l_returnflag,
            l_linestatus,
            SUM(l_quantity) AS sum_qty,
            SUM(l_extendedprice) AS sum_base_price,
            SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
            SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax)) AS sum_charge,
            AVG(l_quantity) AS avg_qty,
            AVG(l_extendedprice) AS avg_price,
            AVG(l_discount) AS avg_disc,
            COUNT(*) AS count_order
        FROM lineitem
        WHERE l_shipdate <= DATE '1998-12-01' - INTERVAL '90' DAY
        GROUP BY l_returnflag, l_linestatus
        ORDER BY l_returnflag, l_linestatus
    """,
    # Q3: shipping priority
    "q3": """
        SELECT
            l_orderkey,
            SUM(l_extendedprice * (1 - l_discount)) AS revenue,
            o_orderdate,
            o_shippriority
        FROM customer, orders, lineitem
        WHERE c_mktsegment = 'BUILDING'
          AND c_custkey = o_custkey
          AND l_orderkey = o_orderkey
          AND o_orderdate < DATE '1995-03-15'
          AND l_shipdate > DATE '1995-03-15'
        GROUP BY l_orderkey, o_orderdate, o_shippriority
        ORDER BY revenue DESC, o_orderdate
        LIMIT 10
    """,
    # Q6: forecasting revenue change
    "q6": """
        SELECT SUM(l_extendedprice * l_discount) AS revenue
        FROM lineitem
        WHERE l_shipdate >= DATE '1994-01-01'
          AND l_shipdate < DATE '1994-01-01' + INTERVAL '1' YEAR
          AND l_discount BETWEEN 0.05 AND 0.07
          AND l_quantity < 24
    """,
    # Q12: shipping modes and order priority
    "q12": """
        SELECT
            l_shipmode,
            SUM(CASE WHEN o_orderpriority = '1-URGENT'
                       OR o_orderpriority = '2-HIGH'
                     THEN 1 ELSE 0 END) AS high_line_count,
            SUM(CASE WHEN o_orderpriority <> '1-URGENT'
                      AND o_orderpriority <> '2-HIGH'
                     THEN 1 ELSE 0 END) AS low_line_count
        FROM orders, lineitem
        WHERE o_orderkey = l_orderkey
          AND l_shipmode IN ('MAIL', 'SHIP')
          AND l_commitdate < l_receiptdate
          AND l_shipdate < l_commitdate
          AND l_receiptdate >= DATE '1994-01-01'
          AND l_receiptdate < DATE '1994-01-01' + INTERVAL '1' YEAR
        GROUP BY l_shipmode
        ORDER BY l_shipmode
    """,
    # Q14: promotion effect
    "q14": """
        SELECT 100.00 *
               SUM(CASE WHEN p_type LIKE 'PROMO%'
                        THEN l_extendedprice * (1 - l_discount)
                        ELSE 0 END)
               / SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
        FROM lineitem, part
        WHERE l_partkey = p_partkey
          AND l_shipdate >= DATE '1995-09-01'
          AND l_shipdate < DATE '1995-09-01' + INTERVAL '1' MONTH
    """,
}


def query_sql(name: str) -> str:
    """Query text by name (``"q1"``, ``"q3"``, ``"q6"``, ``"q12"``, ``"q14"``)."""
    return QUERIES[name.lower()]
