"""TPC-H: schema, deterministic data generator, benchmark queries."""

from repro.bench.tpch.dbgen import generate_tpch, tpch_database
from repro.bench.tpch.queries import QUERIES, query_sql

__all__ = ["QUERIES", "generate_tpch", "query_sql", "tpch_database"]
