"""The TPC-H schema (decimal prices, date columns, fixed-width strings)."""

from __future__ import annotations

from repro.catalog.schema import Column, TableSchema
from repro.sql import types as T

__all__ = ["TPCH_SCHEMAS"]

TPCH_SCHEMAS: dict[str, TableSchema] = {
    "region": TableSchema("region", [
        Column("r_regionkey", T.INT32, primary_key=True),
        Column("r_name", T.char(12)),
        Column("r_comment", T.varchar(40)),
    ]),
    "nation": TableSchema("nation", [
        Column("n_nationkey", T.INT32, primary_key=True),
        Column("n_name", T.char(16)),
        Column("n_regionkey", T.INT32),
        Column("n_comment", T.varchar(40)),
    ]),
    "supplier": TableSchema("supplier", [
        Column("s_suppkey", T.INT32, primary_key=True),
        Column("s_name", T.char(18)),
        Column("s_nationkey", T.INT32),
        Column("s_acctbal", T.decimal(12, 2)),
    ]),
    "part": TableSchema("part", [
        Column("p_partkey", T.INT32, primary_key=True),
        Column("p_name", T.varchar(32)),
        Column("p_mfgr", T.char(16)),
        Column("p_brand", T.char(10)),
        Column("p_type", T.varchar(25)),
        Column("p_size", T.INT32),
        Column("p_container", T.char(10)),
        Column("p_retailprice", T.decimal(12, 2)),
    ]),
    "customer": TableSchema("customer", [
        Column("c_custkey", T.INT32, primary_key=True),
        Column("c_name", T.char(18)),
        Column("c_nationkey", T.INT32),
        Column("c_acctbal", T.decimal(12, 2)),
        Column("c_mktsegment", T.char(10)),
    ]),
    "orders": TableSchema("orders", [
        Column("o_orderkey", T.INT32, primary_key=True),
        Column("o_custkey", T.INT32),
        Column("o_orderstatus", T.char(1)),
        Column("o_totalprice", T.decimal(12, 2)),
        Column("o_orderdate", T.DATE),
        Column("o_orderpriority", T.char(15)),
        Column("o_shippriority", T.INT32),
    ]),
    "lineitem": TableSchema("lineitem", [
        Column("l_orderkey", T.INT32),
        Column("l_partkey", T.INT32),
        Column("l_suppkey", T.INT32),
        Column("l_linenumber", T.INT32),
        Column("l_quantity", T.decimal(12, 2)),
        Column("l_extendedprice", T.decimal(12, 2)),
        Column("l_discount", T.decimal(12, 2)),
        Column("l_tax", T.decimal(12, 2)),
        Column("l_returnflag", T.char(1)),
        Column("l_linestatus", T.char(1)),
        Column("l_shipdate", T.DATE),
        Column("l_commitdate", T.DATE),
        Column("l_receiptdate", T.DATE),
        Column("l_shipinstruct", T.char(25)),
        Column("l_shipmode", T.char(10)),
    ]),
}
