"""Synthetic workloads of the paper's Section 8.2 microbenchmarks.

"We use a generated data set with multiple tables and 10 million rows
per table.  Tables contain only integer and floating-point columns,
where integer values are chosen uniformly at random from the entire
integer domain and floating-point values are chosen uniformly at random
from the range [0; 1].  All data is shuffled and all columns are
pairwise independent."

Row counts are parameters here (the reproduction runs scaled down); all
generators are deterministic per seed.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import Column, TableSchema
from repro.sql import types as T
from repro.storage.table import Table

__all__ = [
    "selection_table",
    "grouping_table",
    "join_tables",
    "sorting_table",
    "selectivity_threshold",
]

INT_MIN = -(2**31)
INT_MAX = 2**31 - 1


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def selection_table(rows: int, seed: int = 42) -> Table:
    """Table T(x INT32, x2 INT32, y DOUBLE, y2 DOUBLE) — uniform, shuffled,
    pairwise independent (Fig. 6 workload)."""
    rng = _rng(seed)
    schema = TableSchema("t", [
        Column("x", T.INT32),
        Column("x2", T.INT32),
        Column("y", T.DOUBLE),
        Column("y2", T.DOUBLE),
    ])
    return Table.from_arrays(schema, {
        "x": rng.integers(INT_MIN, INT_MAX, size=rows, dtype=np.int32,
                          endpoint=True),
        "x2": rng.integers(INT_MIN, INT_MAX, size=rows, dtype=np.int32,
                           endpoint=True),
        "y": rng.random(rows),
        "y2": rng.random(rows),
    })


def selectivity_threshold(selectivity: float) -> int:
    """The INT32 constant c with P(x < c) == selectivity under the
    uniform full-domain distribution of :func:`selection_table`."""
    span = float(INT_MAX) - float(INT_MIN)
    return int(INT_MIN + selectivity * span)


def grouping_table(rows: int, distinct: int, attributes: int = 4,
                   seed: int = 43) -> Table:
    """Table G(g1..gN INT32, x1..x4 INT32) for the Fig. 7 grouping and
    aggregation experiments: each gi has ``distinct`` distinct values."""
    rng = _rng(seed)
    columns = [Column(f"g{i + 1}", T.INT32) for i in range(attributes)]
    columns += [Column(f"x{i + 1}", T.INT32) for i in range(4)]
    arrays = {}
    for i in range(attributes):
        arrays[f"g{i + 1}"] = rng.integers(
            0, max(distinct, 1), size=rows, dtype=np.int32
        )
    for i in range(4):
        arrays[f"x{i + 1}"] = rng.integers(
            INT_MIN, INT_MAX, size=rows, dtype=np.int32, endpoint=True
        )
    return Table.from_arrays(TableSchema("g", columns), arrays)


def join_tables(build_rows: int, probe_rows: int,
                foreign_key: bool = True, n_to_m_matches: float = 1e-6,
                seed: int = 44) -> tuple[Table, Table]:
    """Tables (build, probe) for the Fig. 8 equi-join experiments.

    ``foreign_key=True``: probe.fk references build.id (every probe row
    has exactly one partner).  Otherwise both join columns are non-key
    integers drawn so that the join selectivity is approximately
    ``n_to_m_matches`` (the paper fixes 1e-6).
    """
    rng = _rng(seed)
    if foreign_key:
        build = Table.from_arrays(
            TableSchema("build", [Column("id", T.INT32, primary_key=True),
                                  Column("bx", T.INT32)]),
            {
                "id": np.arange(build_rows, dtype=np.int32),
                "bx": rng.integers(INT_MIN, INT_MAX, size=build_rows,
                                   dtype=np.int32, endpoint=True),
            },
        )
        probe = Table.from_arrays(
            TableSchema("probe", [Column("fk", T.INT32),
                                  Column("px", T.INT32)]),
            {
                "fk": rng.integers(0, max(build_rows, 1), size=probe_rows,
                                   dtype=np.int32),
                "px": rng.integers(INT_MIN, INT_MAX, size=probe_rows,
                                   dtype=np.int32, endpoint=True),
            },
        )
        return build, probe
    # n:m join on non-key columns with selectivity ~= n_to_m_matches:
    # P(a = b) = 1/domain  =>  domain = 1/selectivity
    domain = max(int(1.0 / n_to_m_matches), 1)
    build = Table.from_arrays(
        TableSchema("build", [Column("a", T.INT32), Column("bx", T.INT32)]),
        {
            "a": rng.integers(0, domain, size=build_rows, dtype=np.int32),
            "bx": rng.integers(INT_MIN, INT_MAX, size=build_rows,
                               dtype=np.int32, endpoint=True),
        },
    )
    probe = Table.from_arrays(
        TableSchema("probe", [Column("b", T.INT32), Column("px", T.INT32)]),
        {
            "b": rng.integers(0, domain, size=probe_rows, dtype=np.int32),
            "px": rng.integers(INT_MIN, INT_MAX, size=probe_rows,
                               dtype=np.int32, endpoint=True),
        },
    )
    return build, probe


def sorting_table(rows: int, distinct: int | None = None,
                  attributes: int = 4, seed: int = 45) -> Table:
    """Table S(s1..sN INT32) for the Fig. 9 sorting experiments; each
    column has ``distinct`` distinct values (full domain if None)."""
    rng = _rng(seed)
    columns = [Column(f"s{i + 1}", T.INT32) for i in range(attributes)]
    arrays = {}
    for i in range(attributes):
        if distinct is None:
            arrays[f"s{i + 1}"] = rng.integers(
                INT_MIN, INT_MAX, size=rows, dtype=np.int32, endpoint=True
            )
        else:
            arrays[f"s{i + 1}"] = rng.integers(
                0, max(distinct, 1), size=rows, dtype=np.int32
            )
    return Table.from_arrays(TableSchema("s", columns), arrays)
