"""Benchmark support: workload generators, TPC-H, and the sweep harness."""

from repro.bench.workloads import (
    grouping_table,
    join_tables,
    selection_table,
    sorting_table,
)
from repro.bench.harness import SweepResult, run_query, sweep

__all__ = [
    "SweepResult",
    "grouping_table",
    "join_tables",
    "run_query",
    "selection_table",
    "sorting_table",
    "sweep",
]
