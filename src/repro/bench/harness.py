"""The sweep harness: run one query across engines, collect timings and
modeled costs, and print paper-style series.

Benchmarks call :func:`sweep` with a parameter grid; each cell runs the
query on each engine with cost-model instrumentation and records:

* wall-clock phase timings (translation / per-tier compilation /
  execution),
* the modeled milliseconds from the microarchitectural cost model,
  optionally scaled from the instrumented row count to the paper's row
  count (valid for these scan-dominated workloads — event counts are
  linear in rows).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.costmodel import Profile, cost_report
from repro.db.database import Database

__all__ = ["CellResult", "SweepResult", "run_query", "sweep"]


@dataclass
class CellResult:
    """One (parameter, engine) measurement."""

    engine: str
    rows_returned: int
    wall_execution_ms: float
    wall_compilation_ms: float
    modeled_ms: float
    phases: dict[str, float] = field(default_factory=dict)
    breakdown: dict[str, float] = field(default_factory=dict)


def run_query(db: Database, sql: str, engine: str,
              scale_factor: float = 1.0) -> CellResult:
    """Execute ``sql`` instrumented on ``engine``; return the cell."""
    profile = Profile()
    result = db.execute(sql, engine=engine, profile=profile)
    report = cost_report(
        profile.scaled(scale_factor) if scale_factor != 1.0 else profile
    )
    return CellResult(
        engine=engine,
        rows_returned=len(result),
        wall_execution_ms=result.timings.execution * 1000,
        wall_compilation_ms=result.timings.total_compilation * 1000,
        modeled_ms=report.milliseconds,
        phases={k: v * 1000 for k, v in result.timings.phases.items()},
        breakdown=dict(report.breakdown),
    )


@dataclass
class SweepResult:
    """A parameter sweep: parameter values x engines."""

    title: str
    parameter: str
    values: list
    engines: list[str]
    cells: dict[tuple, CellResult] = field(default_factory=dict)

    def cell(self, value, engine: str) -> CellResult:
        return self.cells[(value, engine)]

    def series(self, engine: str, metric: str = "modeled_ms") -> list[float]:
        return [getattr(self.cells[(v, engine)], metric)
                for v in self.values]

    def format(self, metric: str = "modeled_ms") -> str:
        """A paper-style table: one row per parameter value."""
        header = [self.parameter] + list(self.engines)
        rows = []
        for value in self.values:
            row = [str(value)]
            for engine in self.engines:
                cell = self.cells.get((value, engine))
                row.append(f"{getattr(cell, metric):.2f}"
                           if cell else "-")
            rows.append(row)
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rows))
            for i in range(len(header))
        ]
        lines = [
            f"== {self.title} ({metric}) ==",
            "  ".join(h.rjust(w) for h, w in zip(header, widths)),
        ]
        for row in rows:
            lines.append("  ".join(v.rjust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)


def sweep(title: str, parameter: str, values: list, engines: list[str],
          make_db, make_sql, scale_factor: float = 1.0,
          verify: bool = True) -> SweepResult:
    """Run a full parameter sweep.

    Args:
        make_db: ``value -> Database`` (fresh data per parameter value).
        make_sql: ``value -> str`` (the query for that value).
        scale_factor: multiply modeled event counts (e.g. to extrapolate
            from 1M instrumented rows to the paper's 10M).
        verify: cross-check that all engines return identical results.
    """
    out = SweepResult(title, parameter, list(values), list(engines))
    for value in values:
        db = make_db(value)
        sql = make_sql(value)
        reference = None
        for engine in engines:
            cell = run_query(db, sql, engine, scale_factor)
            out.cells[(value, engine)] = cell
            if verify:
                rows = sorted(map(repr, db.execute(sql, engine=engine).rows))
                if reference is None:
                    reference = rows
                elif rows != reference:
                    raise AssertionError(
                        f"{title}: engine {engine} disagrees at "
                        f"{parameter}={value}"
                    )
    return out
