"""Serialized access to CPython's ``ast.parse``.

The ``_ast`` module tracks its constructor recursion depth in
per-interpreter state, not per-thread state.  If a garbage-collection
pause inside the C-to-Python AST conversion lets another thread enter
``ast.parse`` concurrently, the shared counter is corrupted and CPython
raises ``SystemError: AST constructor recursion depth mismatch``.

Both generated-code verification passes (the TurboFan tier and the
HyPer-style compiler) re-parse their emitted sources, and concurrent
sessions reach them from service threads — so every ``ast.parse`` in
the codebase must go through this choke point.
"""

from __future__ import annotations

import ast
import threading

__all__ = ["checked_parse"]

_PARSE_LOCK = threading.Lock()


def checked_parse(source: str) -> ast.Module:
    """``ast.parse(source)``, safe to call from concurrent threads."""
    with _PARSE_LOCK:
        return ast.parse(source)
